// Serving-tier tests (DESIGN.md §14): snapshot capture fidelity, epoch
// publication/pinning/reclamation, the hot-query cache, admission
// control and deadlines, and the headline property — K concurrent
// readers pinned to an epoch see BYTE-IDENTICAL results no matter how
// hard the writer churns underneath them, and those results equal what
// the serial engine answered at the same acked prefix.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "datagen/corpus.h"
#include "search/search_engine.h"
#include "serve/epoch_manager.h"
#include "serve/query_cache.h"
#include "serve/read_snapshot.h"
#include "serve/server.h"
#include "serve/serving_engine.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/sync.h"

namespace storypivot {
namespace {

using search::Field;
using search::ParsedQuery;
using search::SearchOptions;
using search::StoryHit;
using serve::EpochManager;
using serve::QueryCache;
using serve::QueryRequest;
using serve::QueryResponse;
using serve::ReadSnapshot;
using serve::Server;
using serve::ServerOptions;
using serve::ServingEngine;

::testing::AssertionResult IsOk(const Status& status) {
  if (status.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << status.ToString();
}
template <typename T>
::testing::AssertionResult IsOk(const Result<T>& result) {
  return IsOk(result.status());
}
#define ASSERT_OK(expr) ASSERT_TRUE(IsOk((expr)))

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/sp_serve_" + name;
  if (FileExists(dir)) {
    Result<std::vector<std::string>> names = ListDirectory(dir);
    SP_CHECK_OK(names);
    for (const std::string& entry : names.value()) {
      SP_CHECK_OK(RemoveFile(dir + "/" + entry));
    }
  }
  SP_CHECK_OK(CreateDirectories(dir));
  return dir;
}

Snippet MakeSnippet(SourceId source, Timestamp ts,
                    std::vector<text::TermVector::Entry> entities,
                    std::vector<text::TermVector::Entry> keywords,
                    std::string event_type = {}) {
  Snippet snippet;
  snippet.id = kInvalidSnippetId;
  snippet.source = source;
  snippet.timestamp = ts;
  snippet.entities = text::TermVector::FromEntries(std::move(entities));
  snippet.keywords = text::TermVector::FromEntries(std::move(keywords));
  snippet.event_type = std::move(event_type);
  return snippet;
}

/// A small deterministic engine with named text state, so free-text
/// queries exercise the gazetteer/stemming clone path too.
struct LiveStack {
  std::unique_ptr<StoryPivotEngine> engine;
  std::unique_ptr<search::SearchEngine> searcher;
};

LiveStack BuildStack() {
  LiveStack stack;
  stack.engine = std::make_unique<StoryPivotEngine>();
  StoryPivotEngine& engine = *stack.engine;
  SourceId wire = engine.RegisterSource("wire");
  SourceId blog = engine.RegisterSource("blog");
  text::TermId ukraine = engine.gazetteer()->AddEntity("Ukraine");
  engine.gazetteer()->AddAlias(ukraine, "Kiev government");
  text::TermId airline = engine.gazetteer()->AddEntity("Malaysia Airlines");
  text::TermId crash = engine.keyword_vocabulary()->Intern("crash");
  text::TermId probe = engine.keyword_vocabulary()->Intern("investig");
  const Timestamp t0 = MakeTimestamp(2014, 7, 17);
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(
      wire, t0, {{ukraine, 1.0}, {airline, 2.0}}, {{crash, 2.0}},
      "Accident")));
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(
      wire, t0 + kSecondsPerDay, {{ukraine, 2.0}}, {{probe, 1.0}},
      "Accident")));
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(
      blog, t0 + 2 * kSecondsPerDay, {{airline, 1.0}},
      {{crash, 1.0}, {probe, 1.0}}, "Protest")));
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(
      blog, t0 + 200 * kSecondsPerDay, {{ukraine, 1.0}}, {{crash, 1.0}},
      "Conflict")));
  stack.searcher = std::make_unique<search::SearchEngine>(&engine);
  return stack;
}

// ----------------------------- ReadSnapshot --------------------------------

TEST(ReadSnapshotTest, MatchesTheLiveEngineBitForBit) {
  LiveStack live = BuildStack();
  std::unique_ptr<ReadSnapshot> snapshot =
      ReadSnapshot::Capture(*live.engine, live.searcher->index());

  const char* queries[] = {"Ukraine crash", "kiev government investigated",
                           "Malaysia Airlines accident", "zzznope crash"};
  for (const char* text : queries) {
    SCOPED_TRACE(text);
    ParsedQuery live_parsed = live.searcher->Parse(text);
    ParsedQuery snap_parsed = snapshot->Parse(text);
    // Identical canonicalization (same gazetteer, vocabularies, index)…
    ASSERT_EQ(live_parsed.terms.size(), snap_parsed.terms.size());
    for (size_t i = 0; i < live_parsed.terms.size(); ++i) {
      EXPECT_EQ(live_parsed.terms[i].field, snap_parsed.terms[i].field);
      EXPECT_EQ(live_parsed.terms[i].term, snap_parsed.terms[i].term);
      EXPECT_EQ(live_parsed.terms[i].event_type,
                snap_parsed.terms[i].event_type);
    }
    EXPECT_EQ(live_parsed.unmatched, snap_parsed.unmatched);
    // …and identical ranking, including against the index-free scan.
    for (auto mode : {search::MatchMode::kAny, search::MatchMode::kAll}) {
      SearchOptions options;
      options.mode = mode;
      EXPECT_EQ(snapshot->Search(snap_parsed, options),
                live.searcher->Search(live_parsed, options));
      EXPECT_EQ(snapshot->Search(snap_parsed, options),
                live.searcher->SearchScan(live_parsed, options));
    }
  }

  // Boolean story lookups agree too.
  for (text::TermId term = 0; term < 2; ++term) {
    EXPECT_EQ(snapshot->StoriesWithEntity(term),
              live.searcher->StoriesWithEntity(term));
    EXPECT_EQ(snapshot->StoriesWithKeyword(term),
              live.searcher->StoriesWithKeyword(term));
  }
  EXPECT_EQ(snapshot->StoriesWithEventType("Accident"),
            live.searcher->StoriesWithEventType("Accident"));
  const Timestamp t0 = MakeTimestamp(2014, 7, 17);
  EXPECT_EQ(snapshot->StoriesInTimeRange(t0, t0 + 3 * kSecondsPerDay),
            live.searcher->StoriesInTimeRange(t0, t0 + 3 * kSecondsPerDay));
  EXPECT_EQ(snapshot->total_stories(), live.engine->TotalStories());
}

TEST(ReadSnapshotTest, IsImmuneToWritesAfterCapture) {
  LiveStack live = BuildStack();
  std::unique_ptr<ReadSnapshot> snapshot =
      ReadSnapshot::Capture(*live.engine, live.searcher->index());
  ParsedQuery parsed = snapshot->Parse("Ukraine crash");
  std::vector<StoryHit> before = snapshot->Search(parsed);
  ASSERT_FALSE(before.empty());

  // Pile new content onto the live engine; the frozen view must not
  // move (the whole point of epoch pinning).
  text::TermId ukraine = live.engine->entity_vocabulary()->Lookup("Ukraine");
  for (int i = 0; i < 10; ++i) {
    SP_CHECK_OK(live.engine->AddSnippet(MakeSnippet(
        0, MakeTimestamp(2014, 7, 17) + i * kSecondsPerHour,
        {{ukraine, 3.0}}, {}, "Accident")));
  }
  EXPECT_EQ(snapshot->Search(parsed), before);
  EXPECT_EQ(snapshot->index().num_documents(), 4u);

  // A fresh capture sees the new state — and matches the live ranker.
  std::unique_ptr<ReadSnapshot> fresh =
      ReadSnapshot::Capture(*live.engine, live.searcher->index());
  EXPECT_EQ(fresh->index().num_documents(), 14u);
  EXPECT_EQ(fresh->Search(fresh->Parse("Ukraine crash")),
            live.searcher->Search(live.searcher->Parse("Ukraine crash")));
}

// ----------------------------- EpochManager --------------------------------

TEST(EpochManagerTest, PublishPinAndReclaim) {
  LiveStack live = BuildStack();
  EpochManager epochs;
  EXPECT_EQ(epochs.current_epoch(), 0u);
  EXPECT_EQ(epochs.Pin(), nullptr);

  uint64_t first = epochs.Publish(
      ReadSnapshot::Capture(*live.engine, live.searcher->index()));
  EXPECT_EQ(first, 1u);
  std::shared_ptr<const ReadSnapshot> pinned = epochs.Pin();
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->epoch(), 1u);

  // Publishing retires epoch 1, but the pin keeps it alive and intact.
  std::vector<StoryHit> at_one = pinned->Search(pinned->Parse("crash"));
  uint64_t second = epochs.Publish(
      ReadSnapshot::Capture(*live.engine, live.searcher->index()));
  EXPECT_EQ(second, 2u);
  EXPECT_EQ(epochs.current_epoch(), 2u);
  EXPECT_EQ(pinned->epoch(), 1u);
  EXPECT_EQ(pinned->Search(pinned->Parse("crash")), at_one);

  EpochManager::Stats stats = epochs.GetStats();
  EXPECT_EQ(stats.published, 2u);
  EXPECT_EQ(stats.retired_live, 1u);  // Epoch 1, held by `pinned`.
  EXPECT_EQ(epochs.ReclaimExpired(), 0u);

  // Dropping the last pin drains epoch 1; the registry trims it.
  pinned.reset();
  EXPECT_EQ(epochs.ReclaimExpired(), 1u);
  stats = epochs.GetStats();
  EXPECT_EQ(stats.retired_live, 0u);
  EXPECT_EQ(stats.reclaimed, 1u);
  EXPECT_EQ(stats.current_epoch, 2u);
}

// ------------------------------ QueryCache ---------------------------------

TEST(QueryCacheTest, KeyCanonicalizesTermOrderAndSeparatesEpochs) {
  ParsedQuery ab;
  ab.terms.push_back({Field::kEntity, 3, {}, "a"});
  ab.terms.push_back({Field::kKeyword, 7, {}, "b"});
  ParsedQuery ba;
  ba.terms.push_back({Field::kKeyword, 7, {}, "b"});
  ba.terms.push_back({Field::kEntity, 3, {}, "a"});
  SearchOptions options;
  EXPECT_EQ(QueryCache::Key(5, ab, options), QueryCache::Key(5, ba, options));
  EXPECT_NE(QueryCache::Key(5, ab, options), QueryCache::Key(6, ab, options));

  // Every ranking-relevant option lands in the key.
  SearchOptions other = options;
  other.k = 3;
  EXPECT_NE(QueryCache::Key(5, ab, options), QueryCache::Key(5, ab, other));
  other = options;
  other.mode = search::MatchMode::kAll;
  EXPECT_NE(QueryCache::Key(5, ab, options), QueryCache::Key(5, ab, other));
  other = options;
  other.filter_time = true;
  other.from = 1;
  other.to = 2;
  EXPECT_NE(QueryCache::Key(5, ab, options), QueryCache::Key(5, ab, other));
  other = options;
  other.bm25.b = 0.5;
  EXPECT_NE(QueryCache::Key(5, ab, options), QueryCache::Key(5, ab, other));
}

TEST(QueryCacheTest, LruEvictsOldestAndCountsStats) {
  QueryCache cache(2);
  std::vector<StoryHit> one{{0, 1, 1.0, 1}};
  std::vector<StoryHit> two{{0, 2, 2.0, 1}};
  std::vector<StoryHit> three{{0, 3, 3.0, 1}};
  std::vector<StoryHit> out;

  cache.Insert("a", 1, one);
  cache.Insert("b", 1, two);
  ASSERT_TRUE(cache.Lookup("a", &out));  // "a" becomes most recent.
  EXPECT_EQ(out, one);
  cache.Insert("c", 1, three);           // Evicts "b", the LRU entry.
  EXPECT_FALSE(cache.Lookup("b", &out));
  ASSERT_TRUE(cache.Lookup("a", &out));
  ASSERT_TRUE(cache.Lookup("c", &out));
  EXPECT_EQ(out, three);

  QueryCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.evicted_by_capacity, 1u);
  EXPECT_EQ(stats.evicted_by_epoch, 0u);
  EXPECT_EQ(stats.size, 2u);

  // Capacity 0 disables caching entirely.
  QueryCache disabled(0);
  disabled.Insert("a", 1, one);
  EXPECT_FALSE(disabled.Lookup("a", &out));
}

// -------------------------------- Server -----------------------------------

TEST(ServerTest, RejectsInvalidOptionsAndMissingSnapshotAtAdmission) {
  EpochManager epochs;
  ServerOptions options;
  options.num_threads = 1;  // Inline: deterministic single-threaded path.
  Server server(&epochs, options);

  QueryRequest inverted;
  inverted.query = "crash";
  inverted.options.filter_time = true;
  inverted.options.from = 10;
  inverted.options.to = 5;
  Result<QueryResponse> response = server.Query(inverted);
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);

  QueryRequest plain;
  plain.query = "crash";
  response = server.Query(plain);
  EXPECT_EQ(response.status().code(), StatusCode::kFailedPrecondition);

  Server::Stats stats = server.GetStats();
  EXPECT_EQ(stats.rejected_invalid, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(ServerTest, ShedsLoadWithUnavailableWhenTheQueueIsFull) {
  LiveStack live = BuildStack();
  EpochManager epochs;
  epochs.Publish(
      ReadSnapshot::Capture(*live.engine, live.searcher->index()));

  ServerOptions options;
  options.num_threads = 2;
  options.max_queued = 1;
  Server server(&epochs, options);

  // Stall both workers on a latch; with the 1-slot queue then occupied,
  // the next admission MUST be shed with kUnavailable.
  // lockcheck: name=serve_test.Sheds.mu
  Mutex mu;
  CondVar cv;
  int stalled = 0;
  bool release = false;
  server.set_before_execute([&] {
    MutexLock lock(mu);
    ++stalled;
    cv.NotifyAll();
    while (!release) cv.Wait(mu);
  });

  QueryRequest request;
  request.query = "crash";
  std::vector<std::thread> callers;
  std::atomic<int> ok{0};
  // Stage the first two callers one at a time: each must be DEQUEUED
  // (stalling its worker, emptying the 1-slot queue) before the next
  // submits, or the next submission would race into a full queue.
  for (int i = 0; i < 2; ++i) {
    callers.emplace_back([&] {
      Result<QueryResponse> response = server.Query(request);
      if (response.ok()) ++ok;
    });
    MutexLock lock(mu);
    while (stalled < i + 1) cv.Wait(mu);
  }
  // Both workers are stalled. Fill the single queue slot…
  callers.emplace_back([&] {
    Result<QueryResponse> response = server.Query(request);
    if (response.ok()) ++ok;
  });
  while (server.GetStats().admitted < 3) std::this_thread::yield();
  // …and the fourth query is rejected at admission, without blocking.
  Result<QueryResponse> shed = server.Query(request);
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);

  {
    MutexLock lock(mu);
    release = true;
    cv.NotifyAll();
  }
  for (std::thread& caller : callers) caller.join();
  EXPECT_EQ(ok.load(), 3);
  Server::Stats stats = server.GetStats();
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.completed, 3u);
}

TEST(ServerTest, ExpiredDeadlineFailsFastWithDeadlineExceeded) {
  LiveStack live = BuildStack();
  EpochManager epochs;
  epochs.Publish(
      ReadSnapshot::Capture(*live.engine, live.searcher->index()));

  ServerOptions options;
  options.num_threads = 1;  // Inline, so the stall deterministically
                            // burns THIS query's deadline.
  Server server(&epochs, options);
  server.set_before_execute(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); });

  QueryRequest request;
  request.query = "crash";
  request.deadline_ms = 1;
  Result<QueryResponse> response = server.Query(request);
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server.GetStats().deadline_exceeded, 1u);

  // Without a deadline the same stall is merely slow, not fatal.
  request.deadline_ms = 0;
  ASSERT_OK(server.Query(request));
}

TEST(ServerTest, CachesWithinAnEpochAndMissesAcrossEpochs) {
  LiveStack live = BuildStack();
  EpochManager epochs;
  epochs.Publish(
      ReadSnapshot::Capture(*live.engine, live.searcher->index()));

  ServerOptions options;
  options.num_threads = 1;
  Server server(&epochs, options);
  QueryRequest request;
  request.query = "Ukraine crash zzznope";

  Result<QueryResponse> first = server.Query(request);
  ASSERT_OK(first);
  EXPECT_FALSE(first.value().from_cache);
  EXPECT_EQ(first.value().epoch, 1u);
  ASSERT_EQ(first.value().unmatched.size(), 1u);

  Result<QueryResponse> second = server.Query(request);
  ASSERT_OK(second);
  EXPECT_TRUE(second.value().from_cache);
  EXPECT_EQ(second.value().hits, first.value().hits);
  // Unmatched diagnostics come from the fresh parse even on a hit.
  EXPECT_EQ(second.value().unmatched, first.value().unmatched);

  // Surface variants that canonicalize identically share the entry.
  QueryRequest variant;
  variant.query = "crash Ukraine zzznope";
  Result<QueryResponse> third = server.Query(variant);
  ASSERT_OK(third);
  EXPECT_TRUE(third.value().from_cache);
  EXPECT_EQ(third.value().hits, first.value().hits);

  // A new epoch changes the key: the next lookup misses and recomputes
  // against the fresh snapshot.
  epochs.Publish(
      ReadSnapshot::Capture(*live.engine, live.searcher->index()));
  Result<QueryResponse> fourth = server.Query(request);
  ASSERT_OK(fourth);
  EXPECT_FALSE(fourth.value().from_cache);
  EXPECT_EQ(fourth.value().epoch, 2u);
}

// ------------------------- Full-stack determinism --------------------------

// The tentpole property (ISSUE satellite d): K reader threads pinned to
// epochs must see byte-identical results no matter how the writer
// churns, and every epoch's answer must equal what the serial engine
// answered at exactly that acked prefix. The writer records the serial
// answer right after each publish (it is the sole mutator, so nothing
// moves between the ack and the record); readers pin epochs at random
// times and replay the same query repeatedly.
TEST(ServingDeterminismTest, EpochPinnedReadsAreByteIdenticalUnderLoad) {
  const std::string dir = FreshDir("determinism");
  datagen::CorpusConfig config;
  config.seed = 99;
  config.num_sources = 3;
  config.num_stories = 8;
  config.target_num_snippets = 260;
  datagen::Corpus corpus = datagen::CorpusGenerator(config).Generate();

  Result<std::unique_ptr<ServingEngine>> opened =
      ServingEngine::Open(dir, ServerOptions{});
  ASSERT_OK(opened);
  ServingEngine& serving = *opened.value();
  ASSERT_OK(serving.durable().ImportVocabularies(
      *corpus.entity_vocabulary, *corpus.keyword_vocabulary));
  for (const SourceInfo& source : corpus.sources) {
    ASSERT_OK(serving.durable().RegisterSource(source.name));
  }
  // Seed half the corpus so epoch 1 already has content.
  const size_t half = corpus.snippets.size() / 2;
  std::vector<Snippet> warmup;
  for (size_t i = 0; i < half; ++i) {
    Snippet copy = corpus.snippets[i];
    copy.id = kInvalidSnippetId;
    warmup.push_back(std::move(copy));
  }
  ASSERT_OK(serving.durable().AddSnippets(std::move(warmup)));

  // TermIds are stable from here on (vocabularies fully imported), so
  // one ParsedQuery is valid at every epoch.
  ParsedQuery query;
  query.terms.push_back({Field::kEntity, 0, {}, "e0"});
  query.terms.push_back({Field::kEntity, 1, {}, "e1"});
  query.terms.push_back({Field::kKeyword, 0, {}, "k0"});
  SearchOptions options;
  options.k = 15;

  // expected[epoch] = the serial engine's answer at that acked prefix.
  std::map<uint64_t, std::vector<StoryHit>> expected;
  auto record = [&] {
    expected[serving.epochs().current_epoch()] =
        serving.search().Search(query, options);
  };
  record();

  std::atomic<bool> stop{false};
  constexpr int kReaders = 4;
  std::vector<std::map<uint64_t, std::vector<StoryHit>>> seen(kReaders);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<const ReadSnapshot> snapshot =
            serving.epochs().Pin();
        if (snapshot == nullptr) continue;
        std::vector<StoryHit> hits = snapshot->Search(query, options);
        // Re-running on the pinned snapshot must be byte-identical,
        // writer churn notwithstanding.
        if (snapshot->Search(query, options) != hits) ++mismatches;
        auto [it, inserted] =
            seen[r].emplace(snapshot->epoch(), std::move(hits));
        // Revisiting an epoch (pinned earlier) must agree with what
        // this reader saw there the first time.
        if (!inserted && it->second != snapshot->Search(query, options)) {
          ++mismatches;
        }
      }
    });
  }

  // The writer streams the second half in batches; each ack publishes
  // a new epoch and records the serial answer for it.
  for (size_t i = half; i < corpus.snippets.size();) {
    std::vector<Snippet> chunk;
    for (size_t j = 0; j < 20 && i < corpus.snippets.size(); ++j, ++i) {
      Snippet copy = corpus.snippets[i];
      copy.id = kInvalidSnippetId;
      chunk.push_back(std::move(copy));
    }
    ASSERT_OK(serving.durable().AddSnippets(std::move(chunk)));
    record();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(mismatches.load(), 0);
  // Every epoch any reader served equals the serial engine's answer at
  // that acked prefix, byte for byte.
  size_t checked = 0;
  for (const auto& reader_seen : seen) {
    for (const auto& [epoch, hits] : reader_seen) {
      auto it = expected.find(epoch);
      ASSERT_NE(it, expected.end()) << "unexpected epoch " << epoch;
      EXPECT_EQ(hits, it->second) << "epoch " << epoch;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
  EXPECT_EQ(serving.epochs().GetStats().current_epoch,
            expected.rbegin()->first);
}

// ServingEngine end-to-end: the commit hook publishes an epoch per
// acked op, Query serves epoch-consistent answers, and reopening the
// directory recovers into a servable state.
TEST(ServingEngineTest, PublishesPerOpAndRecoversIntoServableState) {
  const std::string dir = FreshDir("end_to_end");
  {
    ServerOptions options;
    options.num_threads = 1;
    Result<std::unique_ptr<ServingEngine>> opened =
        ServingEngine::Open(dir, options);
    ASSERT_OK(opened);
    ServingEngine& serving = *opened.value();
    EXPECT_EQ(serving.epochs().current_epoch(), 1u);  // Initial publish.

    ASSERT_OK(serving.durable().RegisterSource("wire"));
    EXPECT_EQ(serving.epochs().current_epoch(), 2u);
    Result<text::TermId> ukraine =
        serving.durable().AddGazetteerEntity("Ukraine");
    ASSERT_OK(ukraine);
    Snippet snippet = MakeSnippet(0, MakeTimestamp(2014, 7, 17),
                                  {{ukraine.value(), 2.0}}, {}, "Accident");
    ASSERT_OK(serving.durable().AddSnippet(std::move(snippet)));
    uint64_t epoch = serving.epochs().current_epoch();
    EXPECT_EQ(epoch, 4u);  // open + source + entity + snippet.

    QueryRequest request;
    request.query = "Ukraine";
    Result<QueryResponse> response = serving.Query(request);
    ASSERT_OK(response);
    EXPECT_EQ(response.value().epoch, epoch);
    ASSERT_EQ(response.value().hits.size(), 1u);
    ASSERT_OK(serving.durable().Close());
  }
  // Reopen the directory: recovery + initial publish must serve the
  // same answer without any re-ingest.
  Result<std::unique_ptr<ServingEngine>> reopened =
      ServingEngine::Open(dir, ServerOptions{});
  ASSERT_OK(reopened);
  QueryRequest request;
  request.query = "Ukraine";
  Result<QueryResponse> response = reopened.value()->Query(request);
  ASSERT_OK(response);
  ASSERT_EQ(response.value().hits.size(), 1u);
}

// --------------------- COW capture fidelity (PR 8) -------------------------

/// Byte-level equality of two snapshots: every posting list over the
/// whole term space, event-type enumeration, story lookups and corpus
/// totals. This is the "byte-identical to a from-scratch rebuild"
/// contract the COW capture must uphold (DESIGN.md §15).
void ExpectSnapshotsEqual(const ReadSnapshot& got, const ReadSnapshot& want,
                          size_t num_entities, size_t num_keywords) {
  ASSERT_EQ(got.index().num_documents(), want.index().num_documents());
  ASSERT_EQ(got.index().num_postings(), want.index().num_postings());
  ASSERT_EQ(got.index().num_terms(Field::kEntity),
            want.index().num_terms(Field::kEntity));
  ASSERT_EQ(got.index().num_terms(Field::kKeyword),
            want.index().num_terms(Field::kKeyword));
  EXPECT_EQ(got.total_stories(), want.total_stories());
  EXPECT_EQ(got.index().EventTypes(), want.index().EventTypes());

  auto expect_field = [&](Field field, size_t num_terms) {
    for (text::TermId term = 0; term < num_terms; ++term) {
      const std::vector<search::Posting>* a = got.index().Postings(field, term);
      const std::vector<search::Posting>* b =
          want.index().Postings(field, term);
      ASSERT_EQ(a == nullptr, b == nullptr)
          << "field " << static_cast<int>(field) << " term " << term;
      if (a == nullptr) continue;
      ASSERT_EQ(a->size(), b->size()) << "term " << term;
      for (size_t i = 0; i < a->size(); ++i) {
        ASSERT_EQ((*a)[i].snippet, (*b)[i].snippet);
        ASSERT_EQ((*a)[i].source, (*b)[i].source);
        ASSERT_EQ((*a)[i].timestamp, (*b)[i].timestamp);
        ASSERT_EQ((*a)[i].tf, (*b)[i].tf);
      }
    }
  };
  expect_field(Field::kEntity, num_entities);
  expect_field(Field::kKeyword, num_keywords);

  for (text::TermId term = 0; term < num_entities; ++term) {
    ASSERT_EQ(got.StoriesWithEntity(term), want.StoriesWithEntity(term));
  }
  for (text::TermId term = 0; term < num_keywords; ++term) {
    ASSERT_EQ(got.StoriesWithKeyword(term), want.StoriesWithKeyword(term));
  }
}

/// One recorded mutation against the engine, replayable verbatim.
struct TraceOp {
  enum Kind { kAdd, kRemoveSource, kRefine, kAlign } kind = kAdd;
  std::vector<size_t> snippet_indices;  // kAdd: into corpus.snippets.
  SourceId source = kInvalidSourceId;   // kRemoveSource.
};

void ApplyTraceOp(const TraceOp& op, const datagen::Corpus& corpus,
                  StoryPivotEngine* engine) {
  switch (op.kind) {
    case TraceOp::kAdd: {
      std::vector<Snippet> batch;
      batch.reserve(op.snippet_indices.size());
      for (size_t index : op.snippet_indices) {
        Snippet copy = corpus.snippets[index];
        copy.id = kInvalidSnippetId;
        batch.push_back(std::move(copy));
      }
      SP_CHECK_OK(engine->AddSnippets(std::move(batch)));
      break;
    }
    case TraceOp::kRemoveSource:
      SP_CHECK_OK(engine->RemoveSource(op.source));
      break;
    case TraceOp::kRefine:
      engine->Refine();
      break;
    case TraceOp::kAlign:
      engine->Align();
      break;
  }
}

// ISSUE satellite: randomized AddSnippets/RemoveSource/Refine/Align mix
// with a COW capture kept alive at EVERY step, across 40 seeds. After
// the full run — with every later mutation having path-copied over the
// shared structure — each retained snapshot must still be byte-identical
// to a from-scratch rebuild of the engine at exactly that prefix.
TEST(SnapshotRebuildEqualityTest, EveryCaptureMatchesFromScratchRebuild) {
  datagen::CorpusConfig config;
  config.num_sources = 4;
  config.num_entities = 60;
  config.num_stories = 6;
  config.target_num_snippets = 120;
  datagen::Corpus corpus = datagen::CorpusGenerator(config).Generate();
  const size_t num_entities = corpus.entity_vocabulary->size();
  const size_t num_keywords = corpus.keyword_vocabulary->size();

  for (uint64_t seed = 1; seed <= 40; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937_64 rng(seed);

    auto fresh_stack = [&corpus] {
      LiveStack stack;
      stack.engine = std::make_unique<StoryPivotEngine>();
      SP_CHECK_OK(stack.engine->ImportVocabularies(
          *corpus.entity_vocabulary, *corpus.keyword_vocabulary));
      for (const SourceInfo& source : corpus.sources) {
        stack.engine->RegisterSource(source.name);
      }
      stack.searcher =
          std::make_unique<search::SearchEngine>(stack.engine.get());
      return stack;
    };

    // Pass 1: random walk, recording the trace and freezing a snapshot
    // after every op. All snapshots stay alive to the end.
    LiveStack live = fresh_stack();
    std::vector<TraceOp> trace;
    std::vector<std::unique_ptr<ReadSnapshot>> kept;
    std::vector<bool> source_live(corpus.sources.size(), true);
    size_t next_snippet = 0;
    size_t sources_left = corpus.sources.size();
    for (int step = 0; step < 10; ++step) {
      TraceOp op;
      const uint64_t roll = rng() % 100;
      if (roll < 60 || next_snippet == 0) {
        op.kind = TraceOp::kAdd;
        for (int j = 0; j < 8 && next_snippet < corpus.snippets.size();
             ++next_snippet) {
          if (!source_live[corpus.snippets[next_snippet].source]) continue;
          op.snippet_indices.push_back(next_snippet);
          ++j;
        }
        if (op.snippet_indices.empty()) op.kind = TraceOp::kRefine;
      } else if (roll < 75 && sources_left > 1) {
        op.kind = TraceOp::kRemoveSource;
        SourceId victim = rng() % corpus.sources.size();
        while (!source_live[victim]) {
          victim = (victim + 1) % corpus.sources.size();
        }
        op.source = victim;
        source_live[victim] = false;
        --sources_left;
      } else if (roll < 90) {
        op.kind = TraceOp::kRefine;
      } else {
        op.kind = TraceOp::kAlign;
      }
      ApplyTraceOp(op, corpus, live.engine.get());
      trace.push_back(op);
      kept.push_back(
          ReadSnapshot::Capture(*live.engine, live.searcher->index()));
    }

    // Pass 2: replay the identical trace on a fresh engine; at each
    // prefix the retained COW snapshot from pass 1 must equal a capture
    // of the rebuilt state, byte for byte.
    LiveStack rebuild = fresh_stack();
    for (size_t i = 0; i < trace.size(); ++i) {
      ApplyTraceOp(trace[i], corpus, rebuild.engine.get());
      std::unique_ptr<ReadSnapshot> reference = ReadSnapshot::Capture(
          *rebuild.engine, rebuild.searcher->index());
      ExpectSnapshotsEqual(*kept[i], *reference, num_entities, num_keywords);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// A sharper write-immunity probe than IsImmuneToWritesAfterCapture: the
// post-capture mutations include the structurally violent ones —
// RemoveSource (drops a whole partition), Refine (moves snippets
// between stories), Align, and snippet removal — all of which path-copy
// through the nodes the frozen snapshot shares.
TEST(ReadSnapshotTest, SurvivesAggressiveMutationAfterCapture) {
  datagen::CorpusConfig config;
  config.num_sources = 3;
  config.num_entities = 40;
  config.num_stories = 5;
  config.target_num_snippets = 80;
  datagen::Corpus corpus = datagen::CorpusGenerator(config).Generate();

  LiveStack live;
  live.engine = std::make_unique<StoryPivotEngine>();
  SP_CHECK_OK(live.engine->ImportVocabularies(*corpus.entity_vocabulary,
                                              *corpus.keyword_vocabulary));
  for (const SourceInfo& source : corpus.sources) {
    live.engine->RegisterSource(source.name);
  }
  live.searcher = std::make_unique<search::SearchEngine>(live.engine.get());
  const size_t half = corpus.snippets.size() / 2;
  std::vector<Snippet> warmup;
  for (size_t i = 0; i < half; ++i) {
    Snippet copy = corpus.snippets[i];
    copy.id = kInvalidSnippetId;
    warmup.push_back(std::move(copy));
  }
  Result<std::vector<SnippetId>> added =
      live.engine->AddSnippets(std::move(warmup));
  ASSERT_OK(added);

  std::unique_ptr<ReadSnapshot> snapshot =
      ReadSnapshot::Capture(*live.engine, live.searcher->index());
  // Record the full answer surface before any mutation.
  const size_t num_entities = corpus.entity_vocabulary->size();
  const size_t num_keywords = corpus.keyword_vocabulary->size();
  const size_t docs_before = snapshot->index().num_documents();
  const size_t postings_before = snapshot->index().num_postings();
  const size_t stories_before = snapshot->total_stories();
  const auto events_before = snapshot->index().EventTypes();
  std::vector<std::vector<search::Posting>> entity_lists(num_entities);
  std::vector<std::vector<std::pair<SourceId, StoryId>>> entity_stories(
      num_entities);
  for (text::TermId term = 0; term < num_entities; ++term) {
    const std::vector<search::Posting>* list =
        snapshot->index().Postings(Field::kEntity, term);
    if (list != nullptr) entity_lists[term] = *list;
    entity_stories[term] = snapshot->StoriesWithEntity(term);
  }

  // Now mutate as hard as the engine allows.
  live.engine->Refine();
  live.engine->Align();
  SP_CHECK_OK(live.engine->RemoveSource(corpus.snippets[0].source));
  for (size_t i = 0; i < added.value().size(); i += 7) {
    // Snippets of the removed source are already gone; skip those.
    if (corpus.snippets[i].source == corpus.snippets[0].source) continue;
    ASSERT_OK(live.engine->RemoveSnippet(added.value()[i]));
  }
  for (size_t i = half; i < corpus.snippets.size(); ++i) {
    if (corpus.snippets[i].source == corpus.snippets[0].source) continue;
    Snippet copy = corpus.snippets[i];
    copy.id = kInvalidSnippetId;
    ASSERT_OK(live.engine->AddSnippet(std::move(copy)).status());
  }
  live.engine->Refine();
  live.engine->Align();

  // The frozen view must not have moved a byte.
  EXPECT_EQ(snapshot->index().num_documents(), docs_before);
  EXPECT_EQ(snapshot->index().num_postings(), postings_before);
  EXPECT_EQ(snapshot->total_stories(), stories_before);
  EXPECT_EQ(snapshot->index().EventTypes(), events_before);
  for (text::TermId term = 0; term < num_entities; ++term) {
    const std::vector<search::Posting>* list =
        snapshot->index().Postings(Field::kEntity, term);
    if (entity_lists[term].empty()) {
      ASSERT_TRUE(list == nullptr || list->empty()) << "term " << term;
    } else {
      ASSERT_NE(list, nullptr) << "term " << term;
      ASSERT_EQ(list->size(), entity_lists[term].size());
      for (size_t i = 0; i < list->size(); ++i) {
        ASSERT_EQ((*list)[i].snippet, entity_lists[term][i].snippet);
        ASSERT_EQ((*list)[i].tf, entity_lists[term][i].tf);
      }
    }
    ASSERT_EQ(snapshot->StoriesWithEntity(term), entity_stories[term]);
  }
  (void)num_keywords;
}

// Batched publication (ISSUE tentpole): every_ops = 3 coalesces acked
// ops into one epoch, Flush() publishes a partial batch, and recovery
// always publishes immediately whatever the policy.
TEST(ServingEngineTest, BatchedPolicyCoalescesFlushesAndRecovers) {
  const std::string dir = FreshDir("batched");
  serve::PublishPolicy policy;
  policy.every_ops = 3;
  {
    ServerOptions options;
    options.num_threads = 1;
    Result<std::unique_ptr<ServingEngine>> opened = ServingEngine::Open(
        dir, options, {}, {}, policy);
    ASSERT_OK(opened);
    ServingEngine& serving = *opened.value();
    EXPECT_EQ(serving.epochs().current_epoch(), 1u);
    EXPECT_EQ(serving.publish_policy().every_ops, 3u);

    ASSERT_OK(serving.durable().RegisterSource("wire"));
    EXPECT_EQ(serving.epochs().current_epoch(), 1u);  // 1 op pending.
    EXPECT_EQ(serving.unpublished_ops(), 1u);
    Result<text::TermId> ukraine =
        serving.durable().AddGazetteerEntity("Ukraine");
    ASSERT_OK(ukraine);
    EXPECT_EQ(serving.epochs().current_epoch(), 1u);  // 2 ops pending.
    Snippet first = MakeSnippet(0, MakeTimestamp(2014, 7, 17),
                                {{ukraine.value(), 2.0}}, {}, "Accident");
    ASSERT_OK(serving.durable().AddSnippet(std::move(first)));
    EXPECT_EQ(serving.epochs().current_epoch(), 2u);  // 3rd op publishes.
    EXPECT_EQ(serving.unpublished_ops(), 0u);

    // A 4th op stays unpublished: readers still see epoch 2's state.
    Snippet second = MakeSnippet(0, MakeTimestamp(2014, 7, 18),
                                 {{ukraine.value(), 1.0}}, {}, "Accident");
    ASSERT_OK(serving.durable().AddSnippet(std::move(second)));
    EXPECT_EQ(serving.epochs().current_epoch(), 2u);
    EXPECT_EQ(serving.unpublished_ops(), 1u);
    QueryRequest request;
    request.query = "Ukraine";
    Result<QueryResponse> stale = serving.Query(request);
    ASSERT_OK(stale);
    EXPECT_EQ(stale.value().epoch, 2u);
    ASSERT_EQ(stale.value().hits.size(), 1u);
    // The pinned epoch predates the 4th op: one document, not two.
    EXPECT_EQ(serving.epochs().Pin()->index().num_documents(), 1u);

    // Flush publishes the pending partial batch.
    EXPECT_EQ(serving.Flush(), 3u);
    EXPECT_EQ(serving.unpublished_ops(), 0u);
    EXPECT_EQ(serving.Flush(), 0u);  // Nothing pending: no-op.
    Result<QueryResponse> fresh = serving.Query(request);
    ASSERT_OK(fresh);
    EXPECT_EQ(fresh.value().epoch, 3u);
    // The two snippets are a day apart and cluster as two stories.
    ASSERT_EQ(fresh.value().hits.size(), 2u);
    EXPECT_EQ(serving.epochs().Pin()->index().num_documents(), 2u);
    ASSERT_OK(serving.durable().Close());
  }
  // Recovery publishes the rebuilt prefix immediately — batching must
  // never leave a reopened engine without a servable epoch.
  Result<std::unique_ptr<ServingEngine>> reopened =
      ServingEngine::Open(dir, ServerOptions{}, {}, {}, policy);
  ASSERT_OK(reopened);
  EXPECT_GE(reopened.value()->epochs().current_epoch(), 1u);
  EXPECT_EQ(reopened.value()->unpublished_ops(), 0u);
  QueryRequest request;
  request.query = "Ukraine";
  Result<QueryResponse> response = reopened.value()->Query(request);
  ASSERT_OK(response);
  ASSERT_EQ(response.value().hits.size(), 2u);
  EXPECT_EQ(reopened.value()->epochs().Pin()->index().num_documents(), 2u);
}

// ISSUE satellite: publishing an epoch prunes cache entries whose epoch
// can never hit again, and the stats tell capacity from epoch evictions.
TEST(QueryCacheTest, EvictBelowEpochPrunesOnlyDeadEntries) {
  QueryCache cache(8);
  std::vector<StoryHit> hits;
  cache.Insert("a", 1, hits);
  cache.Insert("b", 1, hits);
  cache.Insert("c", 2, hits);
  cache.EvictBelowEpoch(2);

  std::vector<StoryHit> out;
  EXPECT_FALSE(cache.Lookup("a", &out));
  EXPECT_FALSE(cache.Lookup("b", &out));
  EXPECT_TRUE(cache.Lookup("c", &out));

  QueryCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.evicted_by_epoch, 2u);
  EXPECT_EQ(stats.evicted_by_capacity, 0u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.size, 1u);

  cache.EvictBelowEpoch(2);  // Idempotent: nothing left below 2.
  EXPECT_EQ(cache.GetStats().evicted_by_epoch, 2u);
}

// End to end: the ServingEngine publish path drives the pruning hook.
TEST(ServingEngineTest, PublishPrunesDeadEpochCacheEntries) {
  const std::string dir = FreshDir("cache_prune");
  ServerOptions options;
  options.num_threads = 1;
  Result<std::unique_ptr<ServingEngine>> opened =
      ServingEngine::Open(dir, options);
  ASSERT_OK(opened);
  ServingEngine& serving = *opened.value();
  ASSERT_OK(serving.durable().RegisterSource("wire"));
  Result<text::TermId> ukraine =
      serving.durable().AddGazetteerEntity("Ukraine");
  ASSERT_OK(ukraine);

  QueryRequest request;
  request.query = "Ukraine";
  ASSERT_OK(serving.Query(request));  // Miss: caches at current epoch.
  EXPECT_EQ(serving.server().GetStats().cache.size, 1u);

  // Any acked op publishes (default policy) and sweeps the dead entry.
  Snippet snippet = MakeSnippet(0, MakeTimestamp(2014, 7, 17),
                                {{ukraine.value(), 2.0}}, {}, "Accident");
  ASSERT_OK(serving.durable().AddSnippet(std::move(snippet)));
  QueryCache::Stats stats = serving.server().GetStats().cache;
  EXPECT_EQ(stats.size, 0u);
  EXPECT_EQ(stats.evicted_by_epoch, 1u);
  EXPECT_EQ(stats.evicted_by_capacity, 0u);
}

// Capture observability (ISSUE satellite): every publish records wall
// time and the copied-vs-shared byte split in EpochManager::Stats.
TEST(ServingEngineTest, RecordsCaptureCostPerPublish) {
  const std::string dir = FreshDir("capture_cost");
  Result<std::unique_ptr<ServingEngine>> opened =
      ServingEngine::Open(dir, ServerOptions{});
  ASSERT_OK(opened);
  ServingEngine& serving = *opened.value();
  ASSERT_OK(serving.durable().RegisterSource("wire"));
  Result<text::TermId> ukraine =
      serving.durable().AddGazetteerEntity("Ukraine");
  ASSERT_OK(ukraine);
  for (int i = 0; i < 5; ++i) {
    Snippet snippet =
        MakeSnippet(0, MakeTimestamp(2014, 7, 17) + i * kSecondsPerHour,
                    {{ukraine.value(), 1.0}}, {}, "Accident");
    ASSERT_OK(serving.durable().AddSnippet(std::move(snippet)));
  }
  EpochManager::Stats stats = serving.epochs().GetStats();
  // Initial publish + source + entity + 5 snippets.
  EXPECT_EQ(stats.captures, 8u);
  EXPECT_GE(stats.total_capture_ms, stats.last_capture_ms);
  // Every publish accounts its bytes: at toy scale the writer's path
  // copies dominate (shared can legitimately clamp to zero), but the
  // copied side must be visible and accumulate.
  EXPECT_GT(stats.last_bytes_shared + stats.last_bytes_copied, 0u);
  EXPECT_GT(stats.total_bytes_copied, 0u);
  EXPECT_GE(stats.total_bytes_copied, stats.last_bytes_copied);
}

}  // namespace
}  // namespace storypivot
