// Scratch TU that deliberately ignores a [[nodiscard]] Status return. It
// must FAIL to compile under the project's -Werror=unused-result
// discipline; the lint.nodiscard_compile_fail CTest test invokes the
// compiler on it with WILL_FAIL set, so a successful compile (i.e. the
// discipline regressing) fails the suite. Not part of any build target.
#include "util/csv.h"
#include "util/status.h"

int main() {
  // Error: discards Result<std::string>.
  storypivot::ReadFileToString("/nonexistent");
  // Error: discards Status.
  storypivot::WriteStringToFile("/nonexistent", "contents");
  return 0;
}
