// Scratch TU proving the thread-safety analysis has teeth. Compiled twice
// by CTest, Clang only (the SP_* annotations are no-ops elsewhere):
//
//   lint.threadsafety_compile_fail   -DSP_TEST_UNGUARDED: reads and
//                                    writes an SP_GUARDED_BY field
//                                    without holding its mutex. Must
//                                    FAIL under -Werror=thread-safety
//                                    (WILL_FAIL inverts the outcome).
//   lint.threadsafety_compile_ok     same TU with the define absent:
//                                    every guarded access holds the
//                                    lock. Must COMPILE, proving the
//                                    failure above is the analysis
//                                    firing and not an unrelated error.
//
// Not part of any build target.
#include "util/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
#if defined(SP_TEST_UNGUARDED)
    // Error: writes `count_` without holding `mu_`.
    ++count_;
#else
    storypivot::MutexLock lock(mu_);
    ++count_;
#endif
  }

  int Get() {
#if defined(SP_TEST_UNGUARDED)
    // Error: reads `count_` without holding `mu_`.
    return count_;
#else
    storypivot::MutexLock lock(mu_);
    return count_;
#endif
  }

  void SerialTouch() {
#if defined(SP_TEST_UNGUARDED)
    // Error: touches role-guarded state without asserting the role.
    ++serial_state_;
#else
    serial_.AssertInSection();
    ++serial_state_;
#endif
  }

 private:
  storypivot::Mutex mu_;
  int count_ SP_GUARDED_BY(mu_) = 0;
  storypivot::SerialSection serial_;
  int serial_state_ SP_GUARDED_BY(serial_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  counter.SerialTouch();
  return counter.Get();
}
