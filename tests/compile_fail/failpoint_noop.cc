// Proof that failpoint macros compile to NOTHING when the
// STORYPIVOT_FAILPOINTS option is OFF (registered as the ctest target
// lint.failpoint_noop, always compiled without the define).
//
// Each macro is used inside a constexpr function evaluated by a
// static_assert: constant evaluation rejects any call into the runtime
// registry (a non-constexpr singleton behind a mutex), so this file
// compiles ONLY if the OFF expansions are pure no-ops.

#include "util/failpoint.h"

#ifdef STORYPIVOT_FAILPOINTS
#error "failpoint_noop.cc must be compiled without STORYPIVOT_FAILPOINTS"
#endif

namespace {

constexpr int NoOpFailpoint() {
  SP_FAILPOINT("lint.noop.site");
  return 1;
}
static_assert(NoOpFailpoint() == 1,
              "SP_FAILPOINT must vanish when the option is OFF");

constexpr int NoOpFired() {
  int sink = 0;
  if (SP_FAILPOINT_FIRED("lint.noop.fired", &sink)) return 0;
  return 2;
}
static_assert(NoOpFired() == 2,
              "SP_FAILPOINT_FIRED must be a constant false when OFF");

}  // namespace

int main() { return NoOpFailpoint() + NoOpFired() == 3 ? 0 : 1; }
