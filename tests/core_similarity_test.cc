#include <gtest/gtest.h>

#include "core/similarity.h"
#include "model/snippet.h"
#include "model/story.h"

namespace storypivot {
namespace {

Snippet MakeSnippet(SnippetId id, Timestamp ts,
                    std::vector<std::pair<text::TermId, double>> entities,
                    std::vector<std::pair<text::TermId, double>> keywords) {
  Snippet s;
  s.id = id;
  s.source = 0;
  s.timestamp = ts;
  s.entities = text::TermVector::FromEntries(std::move(entities));
  s.keywords = text::TermVector::FromEntries(std::move(keywords));
  return s;
}

TEST(SimilarityModelTest, IdenticalSnippetsScoreMaximally) {
  SimilarityModel model({}, nullptr);
  Snippet a = MakeSnippet(1, 0, {{0, 1.0}, {1, 1.0}}, {{5, 2.0}});
  double s = model.SnippetSimilarity(a, a);
  EXPECT_NEAR(s, model.config().entity_weight + model.config().keyword_weight,
              1e-9);
}

TEST(SimilarityModelTest, DisjointSnippetsScoreZero) {
  SimilarityModel model({}, nullptr);
  Snippet a = MakeSnippet(1, 0, {{0, 1.0}}, {{5, 1.0}});
  Snippet b = MakeSnippet(2, 0, {{1, 1.0}}, {{6, 1.0}});
  EXPECT_DOUBLE_EQ(model.SnippetSimilarity(a, b), 0.0);
}

TEST(SimilarityModelTest, SymmetricAndBounded) {
  SimilarityModel model({}, nullptr);
  Snippet a = MakeSnippet(1, 0, {{0, 2.0}, {1, 1.0}}, {{5, 1.0}, {6, 2.0}});
  Snippet b = MakeSnippet(2, 0, {{0, 1.0}, {2, 1.0}}, {{5, 2.0}, {9, 1.0}});
  double ab = model.SnippetSimilarity(a, b);
  double ba = model.SnippetSimilarity(b, a);
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
}

TEST(SimilarityModelTest, EntityWeightControlsContribution) {
  SimilarityConfig entity_only;
  entity_only.entity_weight = 1.0;
  entity_only.keyword_weight = 0.0;
  SimilarityConfig keyword_only;
  keyword_only.entity_weight = 0.0;
  keyword_only.keyword_weight = 1.0;
  SimilarityModel em(entity_only, nullptr);
  SimilarityModel km(keyword_only, nullptr);

  Snippet shared_entities = MakeSnippet(1, 0, {{0, 1.0}}, {{5, 1.0}});
  Snippet also_entities = MakeSnippet(2, 0, {{0, 1.0}}, {{6, 1.0}});
  EXPECT_GT(em.SnippetSimilarity(shared_entities, also_entities), 0.9);
  EXPECT_DOUBLE_EQ(km.SnippetSimilarity(shared_entities, also_entities), 0.0);
}

TEST(SimilarityModelTest, IdfDownweightsUbiquitousKeywords) {
  text::DocumentFrequency df;
  // Term 5 appears everywhere; term 6 is rare.
  for (int i = 0; i < 50; ++i) {
    df.AddDocument(text::TermVector::FromEntries({{5, 1.0}}));
  }
  df.AddDocument(text::TermVector::FromEntries({{6, 1.0}}));
  SimilarityConfig config;
  config.entity_weight = 0.0;
  config.keyword_weight = 1.0;
  SimilarityModel model(config, &df);

  Snippet common_a = MakeSnippet(1, 0, {}, {{5, 1.0}, {7, 1.0}});
  Snippet common_b = MakeSnippet(2, 0, {}, {{5, 1.0}, {8, 1.0}});
  Snippet rare_a = MakeSnippet(3, 0, {}, {{6, 1.0}, {7, 1.0}});
  Snippet rare_b = MakeSnippet(4, 0, {}, {{6, 1.0}, {8, 1.0}});
  // Sharing a rare keyword is worth more than sharing a stopword-like one.
  EXPECT_GT(model.SnippetSimilarity(rare_a, rare_b),
            model.SnippetSimilarity(common_a, common_b));
}

TEST(SimilarityModelTest, SnippetStorySimilarityScalesWithStorySize) {
  SimilarityModel model({}, nullptr);
  Snippet probe = MakeSnippet(9, 0, {{0, 1.0}}, {{5, 1.0}});
  Story story(1);
  story.AddSnippet(MakeSnippet(1, 0, {{0, 1.0}}, {{5, 1.0}}));
  double one = model.SnippetStorySimilarity(probe, story);
  // Add more snippets with the same content: similarity must not collapse.
  story.AddSnippet(MakeSnippet(2, 10, {{0, 1.0}}, {{5, 1.0}}));
  story.AddSnippet(MakeSnippet(3, 20, {{0, 1.0}}, {{5, 1.0}}));
  double three = model.SnippetStorySimilarity(probe, story);
  EXPECT_NEAR(one, three, 0.05);
  EXPECT_GT(three, 0.5);
}

TEST(SimilarityModelTest, StorySimilarityIdentityAndDisjoint) {
  SimilarityModel model({}, nullptr);
  Story a(1), b(2);
  a.AddSnippet(MakeSnippet(1, 0, {{0, 1.0}}, {{5, 1.0}}));
  b.AddSnippet(MakeSnippet(2, 0, {{9, 1.0}}, {{8, 1.0}}));
  EXPECT_GT(model.StorySimilarity(a, a), 0.9);
  EXPECT_DOUBLE_EQ(model.StorySimilarity(a, b), 0.0);
}

TEST(SimilarityModelTest, CountsComparisons) {
  SimilarityModel model({}, nullptr);
  Snippet a = MakeSnippet(1, 0, {{0, 1.0}}, {});
  EXPECT_EQ(model.num_comparisons(), 0u);
  model.SnippetSimilarity(a, a);
  model.SnippetSimilarity(a, a);
  EXPECT_EQ(model.num_comparisons(), 2u);
  model.ResetCounters();
  EXPECT_EQ(model.num_comparisons(), 0u);
}

// ---------------------------- TemporalAffinity -----------------------------

TEST(TemporalAffinityTest, OverlappingIntervalsScoreOne) {
  EXPECT_DOUBLE_EQ(
      SimilarityModel::TemporalAffinity(0, 100, 50, 150, 10), 1.0);
  // Touching intervals also count as overlapping.
  EXPECT_DOUBLE_EQ(
      SimilarityModel::TemporalAffinity(0, 100, 100, 150, 10), 1.0);
}

TEST(TemporalAffinityTest, GapDecaysLinearly) {
  EXPECT_NEAR(SimilarityModel::TemporalAffinity(0, 100, 105, 150, 10), 0.5,
              1e-12);
  EXPECT_DOUBLE_EQ(SimilarityModel::TemporalAffinity(0, 100, 110, 150, 10),
                   0.0);
  EXPECT_DOUBLE_EQ(SimilarityModel::TemporalAffinity(0, 100, 200, 300, 10),
                   0.0);
}

TEST(TemporalAffinityTest, SymmetricInArguments) {
  EXPECT_DOUBLE_EQ(SimilarityModel::TemporalAffinity(0, 10, 14, 20, 8),
                   SimilarityModel::TemporalAffinity(14, 20, 0, 10, 8));
}

TEST(TemporalAffinityTest, ZeroToleranceIsHardCutoff) {
  EXPECT_DOUBLE_EQ(SimilarityModel::TemporalAffinity(0, 10, 11, 20, 0), 0.0);
  EXPECT_DOUBLE_EQ(SimilarityModel::TemporalAffinity(0, 10, 5, 20, 0), 1.0);
}

}  // namespace
}  // namespace storypivot
