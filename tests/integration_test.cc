#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/engine.h"
#include "core/query.h"
#include "datagen/corpus.h"
#include "datagen/mh17.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "util/logging.h"

namespace storypivot {
namespace {

// ------------------------- MH17 raw-text pipeline --------------------------
//
// The paper's running example, end to end through the full extraction
// pipeline: raw documents -> gazetteer/stemmer annotation -> story
// identification per source -> alignment across NYT and WSJ.

class Mh17Pipeline : public ::testing::Test {
 protected:
  Mh17Pipeline() : corpus_(datagen::MakeMh17Corpus()) {
    engine_ = std::make_unique<StoryPivotEngine>(NewsProseEngineConfig());
    for (const SourceInfo& source : corpus_.sources) {
      engine_->RegisterSource(source.name);
    }
    datagen::PopulateMh17Gazetteer(corpus_, engine_->gazetteer());
    for (const Document& doc : corpus_.documents) {
      SP_CHECK(engine_->AddDocument(doc).ok());
    }
    engine_->Align();
  }

  // Ground-truth label of each ingested snippet, with predicted integrated
  // story, for scoring.
  eval::PrfScores AlignedScores() const {
    std::vector<int64_t> truth, predicted;
    const AlignmentResult& alignment = engine_->alignment();
    engine_->store().ForEach([&](const Snippet& snippet) {
      truth.push_back(snippet.truth_story);
      predicted.push_back(
          static_cast<int64_t>(alignment.integrated_of.at(snippet.id)));
    });
    return eval::PairwiseF(truth, predicted);
  }

  datagen::Mh17Corpus corpus_;
  std::unique_ptr<StoryPivotEngine> engine_;
};

TEST_F(Mh17Pipeline, ExtractsSnippetsFromEveryParagraph) {
  size_t expected = 0;
  for (const Document& doc : corpus_.documents) {
    expected += doc.paragraphs.size();
  }
  EXPECT_EQ(engine_->store().size(), expected);
}

TEST_F(Mh17Pipeline, CrashStoryAlignsAcrossBothSources) {
  // Find the integrated story containing the first crash snippet.
  const AlignmentResult& alignment = engine_->alignment();
  std::vector<SnippetId> crash_snippets =
      engine_->store().FindByDocument("online.wsj.com/doc3.html");
  ASSERT_FALSE(crash_snippets.empty());
  size_t crash_cluster = alignment.integrated_of.at(crash_snippets[0]);
  const IntegratedStory& story = alignment.stories[crash_cluster];
  EXPECT_EQ(story.merged.sources().size(), 2u)
      << "both NYT and WSJ report the downing";
  // The NYT initial report must be in the same integrated story.
  std::vector<SnippetId> nyt_crash =
      engine_->store().FindByDocument("nytimes.com/doc1.html");
  ASSERT_FALSE(nyt_crash.empty());
  EXPECT_EQ(alignment.integrated_of.at(nyt_crash[0]), crash_cluster);
}

TEST_F(Mh17Pipeline, SingleSourceStoriesSurvive) {
  // The Google/Yelp antitrust story is WSJ-only and must still exist.
  const AlignmentResult& alignment = engine_->alignment();
  std::vector<SnippetId> yelp =
      engine_->store().FindByDocument("online.wsj.com/doc4.html");
  ASSERT_FALSE(yelp.empty());
  size_t yelp_cluster = alignment.integrated_of.at(yelp[0]);
  EXPECT_EQ(alignment.stories[yelp_cluster].merged.sources().size(), 1u);
  // And it must be a different story from the crash.
  std::vector<SnippetId> crash =
      engine_->store().FindByDocument("online.wsj.com/doc3.html");
  EXPECT_NE(alignment.integrated_of.at(crash[0]), yelp_cluster);
}

TEST_F(Mh17Pipeline, WarCrimesInquirySeparatedFromCrash) {
  // Both stories involve the UN and "investigation" vocabulary (the Fig. 5
  // v4 confusion); they must still end up in different integrated stories.
  const AlignmentResult& alignment = engine_->alignment();
  std::vector<SnippetId> inquiry =
      engine_->store().FindByDocument("nytimes.com/doc4.html");
  std::vector<SnippetId> crash =
      engine_->store().FindByDocument("nytimes.com/doc1.html");
  ASSERT_FALSE(inquiry.empty());
  ASSERT_FALSE(crash.empty());
  EXPECT_NE(alignment.integrated_of.at(inquiry[0]),
            alignment.integrated_of.at(crash[0]));
}

TEST_F(Mh17Pipeline, AlignedClustersArePure) {
  // The MH17 macro-story resolves into pure cross-source substories
  // (initial crash + investigation, Dutch report, sanctions, victims) —
  // the story-evolution phenomenon of §2.2. Purity must be perfect:
  // unrelated stories (war crimes, antitrust, doctors) never contaminate
  // a crash cluster.
  eval::PrfScores scores = AlignedScores();
  EXPECT_GT(scores.precision, 0.95) << "r=" << scores.recall;
  // Element-weighted recall over substories still lands a solid B-cubed.
  std::vector<int64_t> truth, predicted;
  const AlignmentResult& alignment = engine_->alignment();
  engine_->store().ForEach([&](const Snippet& snippet) {
    truth.push_back(snippet.truth_story);
    predicted.push_back(
        static_cast<int64_t>(alignment.integrated_of.at(snippet.id)));
  });
  EXPECT_GT(eval::BCubed(truth, predicted).f1, 0.7);
}

TEST_F(Mh17Pipeline, DutchReportAlignsAcrossSources) {
  // The September preliminary report was covered by both outlets on the
  // same day; those documents must land in one integrated story even
  // though they are ~8 weeks after the crash.
  const AlignmentResult& alignment = engine_->alignment();
  std::vector<SnippetId> nyt =
      engine_->store().FindByDocument("nytimes.com/doc7.html");
  std::vector<SnippetId> wsj =
      engine_->store().FindByDocument("online.wsj.com/doc8.html");
  ASSERT_FALSE(nyt.empty());
  ASSERT_FALSE(wsj.empty());
  EXPECT_EQ(alignment.integrated_of.at(nyt[0]),
            alignment.integrated_of.at(wsj[0]));
}

TEST_F(Mh17Pipeline, EntityQueryFindsTheCrashStory) {
  StoryQuery query(engine_.get());
  auto stories = query.FindByEntity("Malaysia Airlines");
  ASSERT_FALSE(stories.empty());
  bool crash_keyword = false;
  for (const auto& [term, count] : stories[0].top_keywords) {
    crash_keyword |= term == "crash" || term == "plane" || term == "jet";
  }
  EXPECT_TRUE(crash_keyword);
}

TEST_F(Mh17Pipeline, RemovingDocumentsUpdatesStories) {
  size_t before = engine_->store().size();
  ASSERT_TRUE(engine_->RemoveDocument("nytimes.com/doc7.html").ok());
  EXPECT_LT(engine_->store().size(), before);
  engine_->Align();  // Must not crash, and crash story persists.
  StoryQuery query(engine_.get());
  EXPECT_FALSE(query.FindByEntity("Malaysia Airlines").empty());
}

// ------------------- Temporal vs complete (Fig. 2 / Fig. 7) ----------------

struct ModeRow {
  eval::ExperimentRow temporal;
  eval::ExperimentRow complete;
};

ModeRow RunBothModes(int target_snippets, uint64_t seed) {
  ModeRow out;
  for (auto mode :
       {IdentificationMode::kTemporal, IdentificationMode::kComplete}) {
    eval::ExperimentConfig config;
    config.corpus.seed = seed;
    config.corpus.num_sources = 8;
    config.corpus.num_stories = 30;
    config.corpus.target_num_snippets = target_snippets;
    config.engine.mode = mode;
    config.run_refinement = false;
    eval::ExperimentRow row = eval::RunExperiment(config);
    if (mode == IdentificationMode::kTemporal) {
      out.temporal = row;
    } else {
      out.complete = row;
    }
  }
  return out;
}

TEST(ModeComparison, TemporalDoesFarFewerComparisons) {
  ModeRow rows = RunBothModes(2000, 7);
  EXPECT_LT(rows.temporal.comparisons * 2, rows.complete.comparisons)
      << "the sliding window must cut the candidate space drastically";
  EXPECT_LT(rows.temporal.ingest_time_ms, rows.complete.ingest_time_ms);
}

TEST(ModeComparison, CompleteOverfitsEvolvingStories) {
  // "complete mechanisms overfit stories as they tend to add related
  // snippets to the same story independently of the evolution of the
  // story in between" (§2.2) — visible as lower identification
  // *precision* for the complete baseline.
  ModeRow rows = RunBothModes(4000, 7);
  EXPECT_GT(rows.temporal.si_pairwise.precision,
            rows.complete.si_pairwise.precision);
  // And at this scale the temporal mode wins end-to-end too.
  EXPECT_GE(rows.temporal.sa_pairwise.f1, rows.complete.sa_pairwise.f1);
}

// ----------------------------- Dynamics (§2.4) -----------------------------

TEST(StreamingIntegration, OutOfOrderArrivalCostsLittleQuality) {
  datagen::CorpusConfig corpus_config;
  corpus_config.seed = 21;
  corpus_config.num_sources = 5;
  corpus_config.num_stories = 15;
  corpus_config.target_num_snippets = 1200;
  corpus_config.mean_report_delay_hours = 48;  // Strong reordering.
  datagen::Corpus corpus =
      datagen::CorpusGenerator(corpus_config).Generate();

  auto run = [&](bool sort_by_event_time) {
    StoryPivotEngine engine;
    SP_CHECK(engine
                 .ImportVocabularies(*corpus.entity_vocabulary,
                                     *corpus.keyword_vocabulary)
                 .ok());
    for (const SourceInfo& s : corpus.sources) engine.RegisterSource(s.name);
    std::vector<Snippet> order = corpus.snippets;
    if (sort_by_event_time) {
      std::sort(order.begin(), order.end(),
                [](const Snippet& a, const Snippet& b) {
                  return a.timestamp < b.timestamp;
                });
    }
    for (Snippet& s : order) {
      Snippet copy = s;
      copy.id = kInvalidSnippetId;
      SP_CHECK_OK(engine.AddSnippet(std::move(copy)));
    }
    engine.Align();
    return eval::ScoreEngine(engine);
  };
  eval::QualityScores streamed = run(/*sort_by_event_time=*/false);
  eval::QualityScores batched = run(/*sort_by_event_time=*/true);
  EXPECT_GT(streamed.sa_pairwise.f1, batched.sa_pairwise.f1 - 0.1)
      << "out-of-order ingestion must not collapse quality";
}

TEST(StreamingIntegration, SketchCandidatesPreserveQuality) {
  eval::ExperimentConfig exact;
  exact.corpus.seed = 31;
  exact.corpus.num_sources = 6;
  exact.corpus.num_stories = 20;
  exact.corpus.target_num_snippets = 1500;
  exact.run_refinement = false;

  eval::ExperimentConfig sketched = exact;
  sketched.engine.identifier.use_sketch_candidates = true;
  sketched.engine.use_sketches = true;

  eval::ExperimentRow exact_row = eval::RunExperiment(exact);
  eval::ExperimentRow sketch_row = eval::RunExperiment(sketched);
  EXPECT_GT(sketch_row.sa_pairwise.f1, exact_row.sa_pairwise.f1 - 0.08)
      << "LSH candidate generation must not cost much quality";
  EXPECT_LT(sketch_row.comparisons, exact_row.comparisons)
      << "...while doing less similarity work";
}

TEST(RefinementIntegration, RefinementDoesNotHurtAlignmentQuality) {
  for (uint64_t seed : {41u, 42u}) {
    eval::ExperimentConfig base;
    base.corpus.seed = seed;
    base.corpus.num_sources = 6;
    base.corpus.num_stories = 20;
    base.corpus.target_num_snippets = 1500;
    base.run_refinement = false;
    eval::ExperimentConfig refined = base;
    refined.run_refinement = true;

    eval::ExperimentRow without = eval::RunExperiment(base);
    eval::ExperimentRow with = eval::RunExperiment(refined);
    EXPECT_GE(with.sa_pairwise.f1, without.sa_pairwise.f1 - 0.02)
        << "seed " << seed;
  }
}

// Sweep: end-to-end quality stays solid across corpus scales and seeds.
class ScaleSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(ScaleSweep, QualityHoldsAcrossScales) {
  auto [n, seed] = GetParam();
  eval::ExperimentConfig config;
  config.corpus.seed = seed;
  config.corpus.num_sources = 6;
  config.corpus.num_stories = 20;
  config.corpus.target_num_snippets = n;
  eval::ExperimentRow row = eval::RunExperiment(config);
  // The smallest corpora are genuinely sparse (a story contributes only a
  // couple of snippets per source inside any window), so the bar scales.
  double bar = n <= 500 ? 0.55 : 0.7;
  EXPECT_GT(row.sa_pairwise.f1, bar)
      << "n=" << n << " seed=" << seed << " p="
      << row.sa_pairwise.precision << " r=" << row.sa_pairwise.recall;
  EXPECT_GT(row.sa_nmi, 0.7);
}

INSTANTIATE_TEST_SUITE_P(
    Scales, ScaleSweep,
    ::testing::Combine(::testing::Values(500, 1500, 3000),
                       ::testing::Values(1u, 2u)));

}  // namespace
}  // namespace storypivot
