#include <gtest/gtest.h>

#include "model/document.h"
#include "model/snippet.h"
#include "model/story.h"
#include "model/time.h"
#include "util/rng.h"

namespace storypivot {
namespace {

// ---------------------------------- Time -----------------------------------

TEST(TimeTest, EpochIsZero) {
  EXPECT_EQ(MakeTimestamp(1970, 1, 1), 0);
  CivilDate c = CivilFromTimestamp(0);
  EXPECT_EQ(c, (CivilDate{1970, 1, 1}));
}

TEST(TimeTest, KnownDates) {
  // The MH17 crash date used throughout the paper.
  Timestamp mh17 = MakeTimestamp(2014, 7, 17);
  EXPECT_EQ(FormatDate(mh17), "2014-07-17");
  EXPECT_EQ(MakeTimestamp(2014, 7, 18) - mh17, kSecondsPerDay);
}

TEST(TimeTest, HourMinuteSecondOffsets) {
  Timestamp ts = MakeTimestamp(2014, 7, 17, 16, 20, 5);
  EXPECT_EQ(ts, MakeTimestamp(2014, 7, 17) + 16 * 3600 + 20 * 60 + 5);
  EXPECT_EQ(FormatDateTime(ts), "2014-07-17 16:20");
}

TEST(TimeTest, LeapYearHandling) {
  EXPECT_EQ(MakeTimestamp(2012, 3, 1) - MakeTimestamp(2012, 2, 28),
            2 * kSecondsPerDay);  // 2012 is a leap year.
  EXPECT_EQ(MakeTimestamp(2014, 3, 1) - MakeTimestamp(2014, 2, 28),
            kSecondsPerDay);      // 2014 is not.
  EXPECT_EQ(MakeTimestamp(2000, 3, 1) - MakeTimestamp(2000, 2, 29),
            kSecondsPerDay);      // 2000 was a leap year (div by 400).
}

TEST(TimeTest, NegativeTimestamps) {
  Timestamp ts = MakeTimestamp(1969, 12, 31);
  EXPECT_EQ(ts, -kSecondsPerDay);
  EXPECT_EQ(FormatDate(ts), "1969-12-31");
  EXPECT_EQ(FormatDate(ts + kSecondsPerDay - 1), "1969-12-31");
}

// Property: civil -> timestamp -> civil round-trips for random dates.
class TimeRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TimeRoundTrip, CivilRoundTrip) {
  Pcg32 rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    CivilDate date;
    date.year = static_cast<int>(rng.NextInRange(1900, 2100));
    date.month = static_cast<int>(rng.NextInRange(1, 12));
    // Stay within the days every month has.
    date.day = static_cast<int>(rng.NextInRange(1, 28));
    Timestamp ts = TimestampFromCivil(date);
    EXPECT_EQ(CivilFromTimestamp(ts), date);
    // Any second within the day maps back to the same civil date.
    EXPECT_EQ(CivilFromTimestamp(ts + rng.NextInRange(0, 86399)), date);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimeRoundTrip, ::testing::Values(1u, 2u, 3u));

TEST(TimeTest, ConsecutiveDaysAreContiguous) {
  // Walk across several month/year boundaries one day at a time.
  Timestamp ts = MakeTimestamp(2013, 12, 28);
  for (int i = 0; i < 400; ++i) {
    CivilDate a = CivilFromTimestamp(ts);
    CivilDate b = CivilFromTimestamp(ts + kSecondsPerDay);
    EXPECT_NE(a, b);
    EXPECT_EQ(TimestampFromCivil(b) - TimestampFromCivil(a), kSecondsPerDay);
    ts += kSecondsPerDay;
  }
}

// ---------------------------------- Story ----------------------------------

Snippet MakeSnippet(SnippetId id, SourceId source, Timestamp ts,
                    std::vector<std::pair<text::TermId, double>> entities,
                    std::vector<std::pair<text::TermId, double>> keywords) {
  Snippet s;
  s.id = id;
  s.source = source;
  s.timestamp = ts;
  s.entities = text::TermVector::FromEntries(std::move(entities));
  s.keywords = text::TermVector::FromEntries(std::move(keywords));
  return s;
}

TEST(StoryTest, AddSnippetUpdatesAggregates) {
  Story story(7);
  Snippet a = MakeSnippet(1, 0, 100, {{0, 1.0}}, {{5, 2.0}});
  Snippet b = MakeSnippet(2, 1, 50, {{0, 1.0}, {1, 1.0}}, {{5, 1.0}});
  story.AddSnippet(a);
  story.AddSnippet(b);
  EXPECT_EQ(story.size(), 2u);
  EXPECT_EQ(story.start_time(), 50);
  EXPECT_EQ(story.end_time(), 100);
  EXPECT_EQ(story.sources().size(), 2u);
  EXPECT_DOUBLE_EQ(story.entities().ValueOf(0), 2.0);
  EXPECT_DOUBLE_EQ(story.keywords().ValueOf(5), 3.0);
}

TEST(StoryTest, SnippetsKeptInTimeOrder) {
  Story story(1);
  story.AddSnippet(MakeSnippet(10, 0, 300, {}, {}));
  story.AddSnippet(MakeSnippet(11, 0, 100, {}, {}));
  story.AddSnippet(MakeSnippet(12, 0, 200, {}, {}));
  ASSERT_EQ(story.snippets().size(), 3u);
  EXPECT_EQ(story.snippets()[0], 11u);
  EXPECT_EQ(story.snippets()[1], 12u);
  EXPECT_EQ(story.snippets()[2], 10u);
}

TEST(StoryTest, RemoveSnippetRecomputesSpanAndSources) {
  Story story(1);
  Snippet a = MakeSnippet(1, 0, 100, {{0, 1.0}}, {{5, 1.0}});
  Snippet b = MakeSnippet(2, 1, 200, {{1, 1.0}}, {{6, 1.0}});
  story.AddSnippet(a);
  story.AddSnippet(b);
  story.RemoveSnippet(b, {&a});
  EXPECT_EQ(story.size(), 1u);
  EXPECT_EQ(story.start_time(), 100);
  EXPECT_EQ(story.end_time(), 100);
  EXPECT_EQ(story.sources().size(), 1u);
  EXPECT_DOUBLE_EQ(story.entities().ValueOf(1), 0.0);
  EXPECT_DOUBLE_EQ(story.keywords().ValueOf(6), 0.0);
}

TEST(StoryTest, RemoveLastSnippetEmptiesStory) {
  Story story(1);
  Snippet a = MakeSnippet(1, 0, 100, {{0, 1.0}}, {});
  story.AddSnippet(a);
  story.RemoveSnippet(a, {});
  EXPECT_TRUE(story.empty());
  EXPECT_TRUE(story.entities().empty());
}

TEST(StoryTest, Contains) {
  Story story(1);
  story.AddSnippet(MakeSnippet(42, 0, 10, {}, {}));
  EXPECT_TRUE(story.Contains(42));
  EXPECT_FALSE(story.Contains(43));
}

TEST(StoryTest, MergeFromCombinesEverything) {
  Story a(1), b(2);
  a.AddSnippet(MakeSnippet(1, 0, 100, {{0, 1.0}}, {{5, 1.0}}));
  b.AddSnippet(MakeSnippet(2, 1, 50, {{1, 2.0}}, {{5, 2.0}}));
  b.AddSnippet(MakeSnippet(3, 1, 300, {{0, 1.0}}, {}));
  a.MergeFrom(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.start_time(), 50);
  EXPECT_EQ(a.end_time(), 300);
  EXPECT_EQ(a.sources().size(), 2u);
  EXPECT_DOUBLE_EQ(a.entities().ValueOf(0), 2.0);
  EXPECT_DOUBLE_EQ(a.keywords().ValueOf(5), 3.0);
  // Members stay time-ordered after merge.
  EXPECT_EQ(a.snippets().front(), 2u);
  EXPECT_EQ(a.snippets().back(), 3u);
}

TEST(StoryTest, MergeIntoEmptyStory) {
  Story a(1), b(2);
  b.AddSnippet(MakeSnippet(2, 1, 50, {{1, 2.0}}, {}));
  a.MergeFrom(b);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a.start_time(), 50);
  EXPECT_EQ(a.end_time(), 50);
}

}  // namespace
}  // namespace storypivot
