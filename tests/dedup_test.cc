#include <gtest/gtest.h>

#include <set>

#include "core/dedup.h"
#include "datagen/corpus.h"
#include "util/logging.h"

namespace storypivot {
namespace {

class DedupFixture : public ::testing::Test {
 protected:
  DedupFixture() {
    a_ = engine_.RegisterSource("a");
    b_ = engine_.RegisterSource("b");
  }

  SnippetId Add(SourceId source, Timestamp ts,
                std::vector<std::pair<text::TermId, double>> entities,
                std::vector<std::pair<text::TermId, double>> keywords) {
    Snippet s;
    s.source = source;
    s.timestamp = ts;
    s.entities = text::TermVector::FromEntries(std::move(entities));
    s.keywords = text::TermVector::FromEntries(std::move(keywords));
    return engine_.AddSnippet(std::move(s)).value();
  }

  StoryPivotEngine engine_;
  SourceId a_ = 0, b_ = 0;
};

TEST_F(DedupFixture, ExactCopiesAcrossSourcesDetected) {
  std::vector<std::pair<text::TermId, double>> ents = {{1, 1.0}, {2, 1.0}};
  std::vector<std::pair<text::TermId, double>> kws = {
      {10, 1.0}, {11, 1.0}, {12, 1.0}, {13, 1.0}};
  SnippetId x = Add(a_, 1000, ents, kws);
  SnippetId y = Add(b_, 1000 + kSecondsPerHour, ents, kws);
  auto pairs = FindNearDuplicates(engine_);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, std::min(x, y));
  EXPECT_EQ(pairs[0].b, std::max(x, y));
  EXPECT_DOUBLE_EQ(pairs[0].similarity, 1.0);
}

TEST_F(DedupFixture, IndependentReportsNotFlagged) {
  // Same story, different wording: entity overlap but distinct keywords.
  Add(a_, 1000, {{1, 1.0}, {2, 1.0}}, {{10, 1.0}, {11, 1.0}});
  Add(b_, 2000, {{1, 1.0}, {2, 1.0}}, {{20, 1.0}, {21, 1.0}});
  EXPECT_TRUE(FindNearDuplicates(engine_).empty());
}

TEST_F(DedupFixture, SameSourceCopiesSkippedByDefault) {
  std::vector<std::pair<text::TermId, double>> ents = {{1, 1.0}};
  std::vector<std::pair<text::TermId, double>> kws = {{10, 1.0}, {11, 1.0}};
  Add(a_, 1000, ents, kws);
  Add(a_, 2000, ents, kws);
  EXPECT_TRUE(FindNearDuplicates(engine_).empty());
  DedupConfig config;
  config.cross_source_only = false;
  EXPECT_EQ(FindNearDuplicates(engine_, config).size(), 1u);
}

TEST_F(DedupFixture, TimeToleranceFilters) {
  std::vector<std::pair<text::TermId, double>> ents = {{1, 1.0}};
  std::vector<std::pair<text::TermId, double>> kws = {{10, 1.0}, {11, 1.0}};
  Add(a_, 0, ents, kws);
  Add(b_, 30 * kSecondsPerDay, ents, kws);  // A month apart: reprint, not
                                            // syndication.
  EXPECT_TRUE(FindNearDuplicates(engine_).empty());
  DedupConfig config;
  config.time_tolerance = 60 * kSecondsPerDay;
  EXPECT_EQ(FindNearDuplicates(engine_, config).size(), 1u);
}

TEST(DedupCorpusTest, FindsInjectedSyndication) {
  datagen::CorpusConfig config;
  config.seed = 61;
  config.num_sources = 6;
  config.num_stories = 12;
  config.target_num_snippets = 900;
  config.syndication_rate = 0.3;
  datagen::Corpus corpus = datagen::CorpusGenerator(config).Generate();

  // Count the injected wire copies (they carry wire URLs).
  size_t injected = 0;
  for (const Snippet& s : corpus.snippets) {
    if (s.document_url.find("wire.example.com") != std::string::npos) {
      ++injected;
    }
  }
  ASSERT_GT(injected, 50u) << "syndication generator must inject copies";

  StoryPivotEngine engine;
  SP_CHECK(engine
               .ImportVocabularies(*corpus.entity_vocabulary,
                                   *corpus.keyword_vocabulary)
               .ok());
  for (const SourceInfo& s : corpus.sources) engine.RegisterSource(s.name);
  std::set<SnippetId> wire_ids;
  for (const Snippet& snippet : corpus.snippets) {
    Snippet copy = snippet;
    copy.id = kInvalidSnippetId;
    SnippetId id = engine.AddSnippet(std::move(copy)).value();
    if (snippet.document_url.find("wire.example.com") !=
        std::string::npos) {
      wire_ids.insert(id);
    }
  }

  std::vector<DuplicatePair> pairs = FindNearDuplicates(engine);
  ASSERT_FALSE(pairs.empty());
  // Recall: most injected wire copies should appear in some pair.
  std::set<SnippetId> flagged;
  for (const DuplicatePair& pair : pairs) {
    flagged.insert(pair.a);
    flagged.insert(pair.b);
  }
  size_t hit = 0;
  for (SnippetId id : wire_ids) {
    if (flagged.contains(id)) ++hit;
  }
  EXPECT_GT(static_cast<double>(hit) / wire_ids.size(), 0.8)
      << hit << "/" << wire_ids.size() << " wire copies flagged";
}

TEST(DedupCorpusTest, CleanCorpusHasFewDuplicates) {
  datagen::CorpusConfig config;
  config.seed = 62;
  config.num_sources = 6;
  config.num_stories = 12;
  config.target_num_snippets = 900;
  config.syndication_rate = 0.0;
  datagen::Corpus corpus = datagen::CorpusGenerator(config).Generate();
  StoryPivotEngine engine;
  SP_CHECK(engine
               .ImportVocabularies(*corpus.entity_vocabulary,
                                   *corpus.keyword_vocabulary)
               .ok());
  for (const SourceInfo& s : corpus.sources) engine.RegisterSource(s.name);
  for (const Snippet& snippet : corpus.snippets) {
    Snippet copy = snippet;
    copy.id = kInvalidSnippetId;
    SP_CHECK_OK(engine.AddSnippet(std::move(copy)));
  }
  // Independent paraphrases should almost never look identical.
  std::vector<DuplicatePair> pairs = FindNearDuplicates(engine);
  EXPECT_LT(pairs.size(), corpus.snippets.size() / 50);
}

}  // namespace
}  // namespace storypivot
