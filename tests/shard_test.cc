// Sharded-engine suite (DESIGN.md §16). The load-bearing claims:
//
//  * DETERMINISM — an N-shard engine is indistinguishable from the
//    unsharded engine on the same op stream: identical state
//    fingerprints and bit-identical ranked search results, for every
//    shard count and thread count (the 40-seed random-walk sweep).
//  * RECOVERY — all shard WALs replay to the common durable prefix
//    C = min over shards of the highest durable lsn: a kill-point sweep
//    truncates one shard's WAL tail at arbitrary byte offsets and
//    checks the recovered fingerprint against the per-lsn expectation
//    recorded during the original run.
//  * ISOLATION — two engines can never share a WAL directory (the
//    process-global registry), and a mid-op shard failure poisons the
//    coordinator until Reopen() rewinds to the acked prefix (the
//    fault-injection cases, compiled under STORYPIVOT_FAILPOINTS).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/snapshot.h"
#include "datagen/corpus.h"
#include "persist/durable_engine.h"
#include "persist/wal.h"
#include "search/query_pipeline.h"
#include "search/ranker.h"
#include "search/search_engine.h"
#include "shard/composite_snapshot.h"
#include "shard/manifest.h"
#include "shard/sharded_engine.h"
#include "util/failpoint.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/rng.h"

namespace storypivot {
namespace {

using persist::DurableEngine;
using persist::FsyncPolicy;
using persist::WriteAheadLog;
using search::Field;
using search::MatchMode;
using search::ParsedQuery;
using search::SearchOptions;
using search::StoryHit;
using shard::CompositeSnapshot;
using shard::ShardedEngine;
using shard::ShardOptions;

::testing::AssertionResult IsOk(const Status& status) {
  if (status.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << status.ToString();
}
template <typename T>
::testing::AssertionResult IsOk(const Result<T>& result) {
  return IsOk(result.status());
}

#define ASSERT_OK(expr) ASSERT_TRUE(IsOk((expr)))
#define EXPECT_OK(expr) EXPECT_TRUE(IsOk((expr)))

void RemoveDirRecursive(const std::string& path) {
  if (!FileExists(path)) return;
  Result<std::vector<std::string>> names = ListDirectory(path);
  if (names.ok()) {
    for (const std::string& entry : names.value()) {
      RemoveDirRecursive(path + "/" + entry);
    }
    IgnoreError(RemoveDirectory(path));
    return;
  }
  IgnoreError(RemoveFile(path));
}

/// Returns an empty directory under the test temp root (recursive clean:
/// sharded roots nest shard-NNN subdirectories).
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/sp_shard_" + name;
  RemoveDirRecursive(dir);
  SP_CHECK_OK(CreateDirectories(dir));
  return dir;
}

void CopyDirRecursive(const std::string& from, const std::string& to) {
  Result<std::vector<std::string>> names = ListDirectory(from);
  if (names.ok()) {
    SP_CHECK_OK(CreateDirectories(to));
    for (const std::string& entry : names.value()) {
      CopyDirRecursive(from + "/" + entry, to + "/" + entry);
    }
    return;
  }
  Result<std::string> bytes = ReadFileToString(from);
  SP_CHECK_OK(bytes.status());
  SP_CHECK_OK(WriteStringToFile(to, bytes.value()));
}

/// Durability knobs for tests: no per-record fsync cost (every run ends
/// in a clean Close, which syncs), no autonomous checkpoints.
persist::DurabilityOptions FastDurability() {
  persist::DurabilityOptions options;
  options.wal.fsync = FsyncPolicy::kOnRotate;
  return options;
}

// --- Random op walks -------------------------------------------------------
//
// A seeded walk over the sharded mutation surface (ingest single/batch,
// RemoveSnippet, RemoveSource, RegisterSource, Refine, Align), in data
// form so one walk replays against a ShardedEngine at any (shard count,
// thread count) AND against a plain StoryPivotEngine — the reference
// every sharded run must fingerprint-match.

enum class OpKind {
  kImport,
  kRegisterSource,
  kAddSnippet,
  kAddSnippets,
  kRemoveSnippet,
  kRemoveSource,
  kRefine,
  kAlign,
};

struct PlanOp {
  OpKind kind = OpKind::kAddSnippet;
  std::string text;
  uint64_t id64 = 0;
  SourceId source = kInvalidSourceId;
  Snippet snippet;
  std::vector<Snippet> batch;
};

struct Plan {
  datagen::Corpus corpus;
  std::vector<PlanOp> ops;
};

Plan MakeWalk(uint64_t seed, size_t total_ops) {
  Plan plan;
  datagen::CorpusConfig config;
  config.seed = seed * 7919 + 11;
  config.num_sources = 4;
  config.num_stories = 8;
  config.target_num_snippets = static_cast<int>(total_ops * 4 + 60);
  plan.corpus = datagen::CorpusGenerator(config).Generate();

  plan.ops.push_back(PlanOp{.kind = OpKind::kImport});
  std::vector<SourceId> live_sources;
  SourceId next_source = 0;
  for (const SourceInfo& source : plan.corpus.sources) {
    plan.ops.push_back(
        PlanOp{.kind = OpKind::kRegisterSource, .text = source.name});
    live_sources.push_back(next_source++);
  }

  Pcg32 rng(seed * 0x9e3779b9ULL + 1, 54);
  size_t next_corpus = 0;
  SnippetId next_id = 0;
  // (id, source) of every live snippet, for removal choices.
  std::vector<std::pair<SnippetId, SourceId>> live;
  auto take = [&](SourceId source) {
    SP_CHECK(next_corpus < plan.corpus.snippets.size());
    Snippet snippet = plan.corpus.snippets[next_corpus++];
    snippet.id = kInvalidSnippetId;
    snippet.source = source;  // Route to a currently live source.
    live.emplace_back(next_id++, source);
    return snippet;
  };
  auto random_source = [&]() {
    return live_sources[rng.NextBounded(
        static_cast<uint32_t>(live_sources.size()))];
  };
  while (plan.ops.size() < total_ops) {
    const uint32_t roll = rng.NextBounded(100);
    PlanOp op;
    if (roll < 8) {
      op.kind = OpKind::kAlign;
    } else if (roll < 16) {
      op.kind = OpKind::kRefine;
    } else if (roll < 24 && !live.empty()) {
      op.kind = OpKind::kRemoveSnippet;
      const size_t pick = rng.NextBounded(static_cast<uint32_t>(live.size()));
      op.id64 = live[pick].first;
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    } else if (roll < 28 && live_sources.size() > 2) {
      op.kind = OpKind::kRemoveSource;
      const size_t pick =
          rng.NextBounded(static_cast<uint32_t>(live_sources.size()));
      op.source = live_sources[pick];
      live_sources.erase(live_sources.begin() +
                         static_cast<ptrdiff_t>(pick));
      live.erase(std::remove_if(live.begin(), live.end(),
                                [&](const auto& entry) {
                                  return entry.second == op.source;
                                }),
                 live.end());
    } else if (roll < 32 && live_sources.size() < 6) {
      op.kind = OpKind::kRegisterSource;
      op.text = "extra-" + std::to_string(next_source);
      live_sources.push_back(next_source++);
    } else if (roll < 46) {
      op.kind = OpKind::kAddSnippets;
      const size_t batch = 2 + rng.NextBounded(3);
      for (size_t j = 0; j < batch; ++j) {
        op.batch.push_back(take(random_source()));
      }
    } else {
      op.kind = OpKind::kAddSnippet;
      op.snippet = take(random_source());
    }
    plan.ops.push_back(std::move(op));
  }
  return plan;
}

Status Apply(const Plan& plan, const PlanOp& op, ShardedEngine* engine) {
  switch (op.kind) {
    case OpKind::kImport:
      return engine->ImportVocabularies(*plan.corpus.entity_vocabulary,
                                        *plan.corpus.keyword_vocabulary);
    case OpKind::kRegisterSource:
      return engine->RegisterSource(op.text).status();
    case OpKind::kAddSnippet:
      return engine->AddSnippet(op.snippet).status();
    case OpKind::kAddSnippets:
      return engine->AddSnippets(op.batch).status();
    case OpKind::kRemoveSnippet:
      return engine->RemoveSnippet(op.id64);
    case OpKind::kRemoveSource:
      return engine->RemoveSource(op.source);
    case OpKind::kRefine:
      return engine->Refine().status();
    case OpKind::kAlign:
      return engine->Align();
  }
  return Status::Internal("unhandled op");
}

Status Apply(const Plan& plan, const PlanOp& op, StoryPivotEngine* engine) {
  switch (op.kind) {
    case OpKind::kImport:
      return engine->ImportVocabularies(*plan.corpus.entity_vocabulary,
                                        *plan.corpus.keyword_vocabulary);
    case OpKind::kRegisterSource:
      engine->RegisterSource(op.text);
      return Status::OK();
    case OpKind::kAddSnippet:
      return engine->AddSnippet(op.snippet).status();
    case OpKind::kAddSnippets:
      return engine->AddSnippets(op.batch).status();
    case OpKind::kRemoveSnippet:
      return engine->RemoveSnippet(op.id64);
    case OpKind::kRemoveSource:
      return engine->RemoveSource(op.source);
    case OpKind::kRefine:
      engine->Refine();
      return Status::OK();
    case OpKind::kAlign:
      engine->Align();
      return Status::OK();
  }
  return Status::Internal("unhandled op");
}

/// Seeded random parsed queries over the walk's vocabularies (raw
/// term ids, so no surface-text round trip can mask a divergence).
std::vector<std::pair<ParsedQuery, SearchOptions>> MakeQueries(
    const Plan& plan, uint64_t seed) {
  std::vector<std::pair<ParsedQuery, SearchOptions>> queries;
  Pcg32 rng(seed * 31 + 7, 96);
  const auto entities =
      static_cast<uint32_t>(plan.corpus.entity_vocabulary->size());
  const auto keywords =
      static_cast<uint32_t>(plan.corpus.keyword_vocabulary->size());
  for (int q = 0; q < 6; ++q) {
    ParsedQuery query;
    const size_t num_terms = 1 + rng.NextBounded(3);
    for (size_t t = 0; t < num_terms; ++t) {
      if (rng.NextBounded(3) == 0 && entities > 0) {
        query.terms.push_back({Field::kEntity,
                               static_cast<text::TermId>(
                                   rng.NextBounded(entities)),
                               {},
                               "e"});
      } else if (keywords > 0) {
        query.terms.push_back({Field::kKeyword,
                               static_cast<text::TermId>(
                                   rng.NextBounded(keywords)),
                               {},
                               "k"});
      }
    }
    SearchOptions options;
    options.k = 1 + rng.NextBounded(10);
    options.mode = rng.NextBounded(2) == 0 ? MatchMode::kAny : MatchMode::kAll;
    queries.emplace_back(std::move(query), options);
  }
  return queries;
}

void ExpectSameHits(const std::vector<StoryHit>& expected,
                    const std::vector<StoryHit>& actual,
                    const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].source, actual[i].source) << label << " hit " << i;
    EXPECT_EQ(expected[i].story, actual[i].story) << label << " hit " << i;
    // Bit-identical, not approximately equal: the scatter-gather path
    // must feed the exact same operands through the one BM25 kernel.
    EXPECT_EQ(expected[i].score, actual[i].score) << label << " hit " << i;
    EXPECT_EQ(expected[i].matched_terms, actual[i].matched_terms)
        << label << " hit " << i;
  }
}

// --- Determinism: shard count × thread count ------------------------------

TEST(ShardDeterminismTest, FortySeedWalksMatchUnshardedEverywhere) {
  constexpr size_t kSeeds = 40;
  constexpr size_t kOpsPerWalk = 26;
  const size_t shard_counts[] = {1, 2, 4};
  const size_t thread_counts[] = {1, 4};

  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    const Plan plan = MakeWalk(seed, kOpsPerWalk);

    // The unsharded reference: same walk through a plain engine.
    StoryPivotEngine reference;
    for (const PlanOp& op : plan.ops) {
      ASSERT_OK(Apply(plan, op, &reference));
    }
    const uint64_t reference_fp = EngineStateFingerprint(reference);
    search::SearchEngine reference_search(&reference);
    const auto queries = MakeQueries(plan, seed);

    for (size_t num_shards : shard_counts) {
      for (size_t num_threads : thread_counts) {
        const std::string label = "seed " + std::to_string(seed) + " shards " +
                                  std::to_string(num_shards) + " threads " +
                                  std::to_string(num_threads);
        ShardOptions options;
        options.num_shards = num_shards;
        options.durability = FastDurability();
        options.engine_config.num_threads = num_threads;
        Result<std::unique_ptr<ShardedEngine>> opened = ShardedEngine::Open(
            FreshDir("determinism"), options);
        ASSERT_OK(opened);
        ShardedEngine& sharded = *opened.value();
        for (const PlanOp& op : plan.ops) {
          ASSERT_OK(Apply(plan, op, &sharded));
        }

        // LSN-as-GSN: every shard's log is at the same global height.
        for (size_t s = 0; s < sharded.num_shards(); ++s) {
          EXPECT_EQ(sharded.shard(s).next_lsn(), sharded.next_lsn())
              << label;
        }
        EXPECT_EQ(sharded.Fingerprint(), reference_fp) << label;
        for (size_t q = 0; q < queries.size(); ++q) {
          Result<std::vector<StoryHit>> hits =
              sharded.Search(queries[q].first, queries[q].second);
          ASSERT_OK(hits);
          ExpectSameHits(reference_search.Search(queries[q].first,
                                                 queries[q].second),
                         hits.value(),
                         label + " query " + std::to_string(q));
        }
        ASSERT_OK(sharded.Close());
      }
    }
  }
}

// --- Recovery: kill-point sweep --------------------------------------------

TEST(ShardRecoveryTest, KillPointSweepRecoversCommonPrefix) {
  const Plan plan = MakeWalk(/*seed=*/7, /*total_ops=*/30);
  const std::string master = FreshDir("kill_master");

  // Build the master 2-shard deployment, recording the expected
  // fingerprint AFTER EVERY LOG RECORD (not every coordinator call):
  // Refine decomposes into 2-3 records, and a kill point can land
  // between them. The intermediate records are counter-sync stubs,
  // which never change assignment triples — so the per-record
  // expectation is derivable from the call-level fingerprints:
  //   delta 3 (stale refine):  [pre-align sync -> pre_fp,
  //                             refine -> post_fp, re-align -> post_fp]
  //   delta 2 (fresh refine):  [refine -> post_fp, re-align -> post_fp]
  //   delta 1 (everything else): [post_fp]
  std::vector<uint64_t> expected_fp;  // expected_fp[l] = state after l records
  {
    ShardOptions options;
    options.num_shards = 2;
    options.durability = FastDurability();
    Result<std::unique_ptr<ShardedEngine>> opened =
        ShardedEngine::Open(master, options);
    ASSERT_OK(opened);
    ShardedEngine& sharded = *opened.value();
    expected_fp.push_back(sharded.Fingerprint());
    for (const PlanOp& op : plan.ops) {
      const uint64_t pre_fp = sharded.Fingerprint();
      const uint64_t pre_lsn = sharded.next_lsn();
      ASSERT_OK(Apply(plan, op, &sharded));
      const uint64_t post_fp = sharded.Fingerprint();
      const uint64_t delta = sharded.next_lsn() - pre_lsn;
      ASSERT_GE(delta, 1u);
      ASSERT_LE(delta, 3u);
      if (delta == 3) expected_fp.push_back(pre_fp);
      for (uint64_t i = delta == 3 ? 1 : 0; i < delta; ++i) {
        expected_fp.push_back(post_fp);
      }
    }
    ASSERT_EQ(expected_fp.size(), sharded.next_lsn() + 1);
    ASSERT_OK(sharded.Close());
  }
  const uint64_t total_records = expected_fp.size() - 1;
  ASSERT_GT(total_records, 10u);

  // Shard 0's WAL is one segment (no checkpoint ran, default segment
  // size far exceeds this walk).
  const std::string master_seg =
      master + "/" + shard::ShardDirName(0) + "/" +
      WriteAheadLog::SegmentName(0);
  Result<uint64_t> seg_size = FileSize(master_seg);
  ASSERT_OK(seg_size);

  // Kill points: byte offsets into shard 0's segment, from "almost
  // nothing survived" to "one byte short of everything". Every cut
  // must recover — torn tails are repaired, and shard 1 (which kept
  // ALL records) must be physically rewound to shard 0's prefix.
  const uint64_t size = seg_size.value();
  const uint64_t cuts[] = {size / 7,     size / 3,  size / 2,
                           2 * size / 3, size - 17, size - 1};
  for (const uint64_t cut : cuts) {
    const std::string trial = FreshDir("kill_trial");
    RemoveDirRecursive(trial);
    CopyDirRecursive(master, trial);
    const std::string trial_seg =
        trial + "/" + shard::ShardDirName(0) + "/" +
        WriteAheadLog::SegmentName(0);
    ASSERT_OK(TruncateFile(trial_seg, cut));

    // Independent expectation for C: the records still whole in shard
    // 0's truncated segment.
    Result<persist::SegmentScan> scan = WriteAheadLog::ScanSegmentFile(
        trial + "/" + shard::ShardDirName(0), 0);
    ASSERT_OK(scan);
    const uint64_t cutoff = scan.value().records.size();
    ASSERT_LT(cutoff, total_records);

    ShardOptions options;
    options.num_shards = 0;  // From the manifest.
    options.durability = FastDurability();
    options.recovery_threads = 2;
    Result<std::unique_ptr<ShardedEngine>> recovered =
        ShardedEngine::Open(trial, options);
    ASSERT_OK(recovered);
    ShardedEngine& sharded = *recovered.value();
    EXPECT_EQ(sharded.num_shards(), 2u);
    EXPECT_EQ(sharded.next_lsn(), cutoff) << "cut at byte " << cut;
    for (size_t s = 0; s < sharded.num_shards(); ++s) {
      EXPECT_EQ(sharded.shard(s).next_lsn(), cutoff)
          << "cut at byte " << cut << " shard " << s;
    }
    EXPECT_EQ(sharded.Fingerprint(), expected_fp[cutoff])
        << "cut at byte " << cut;
    // The recovered deployment is writable: the torn suffix is gone
    // physically, not just skipped.
    EXPECT_OK(sharded.RegisterSource("post-recovery").status());
    ASSERT_OK(sharded.Close());
  }
}

// --- WAL directory registry ------------------------------------------------

TEST(ShardWalRegistryTest, SecondOpenOfSameWalDirIsRejected) {
  const std::string dir = FreshDir("registry_durable");
  Result<std::unique_ptr<DurableEngine>> first = DurableEngine::Open(dir);
  ASSERT_OK(first);
  // Same directory, same process, first engine still live: refused —
  // two appenders would interleave frames and corrupt the log.
  Result<std::unique_ptr<DurableEngine>> second = DurableEngine::Open(dir);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  // Releasing the first engine releases the directory claim.
  first.value().reset();
  Result<std::unique_ptr<DurableEngine>> third = DurableEngine::Open(dir);
  ASSERT_OK(third);
}

TEST(ShardWalRegistryTest, TwoShardedEnginesCannotShareARoot) {
  const std::string dir = FreshDir("registry_sharded");
  ShardOptions options;
  options.num_shards = 2;
  options.durability = FastDurability();
  Result<std::unique_ptr<ShardedEngine>> first =
      ShardedEngine::Open(dir, options);
  ASSERT_OK(first);
  options.num_shards = 0;
  Result<std::unique_ptr<ShardedEngine>> second =
      ShardedEngine::Open(dir, options);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
}

// --- Manifest ---------------------------------------------------------------

TEST(ShardManifestTest, ShardCountIsFixedAtCreate) {
  const std::string dir = FreshDir("manifest");
  {
    ShardOptions options;
    options.num_shards = 2;
    options.durability = FastDurability();
    Result<std::unique_ptr<ShardedEngine>> created =
        ShardedEngine::Open(dir, options);
    ASSERT_OK(created);
    ASSERT_OK(created.value()->Close());
  }
  // num_shards = 0 defers to the manifest.
  {
    ShardOptions options;
    options.num_shards = 0;
    options.durability = FastDurability();
    Result<std::unique_ptr<ShardedEngine>> reopened =
        ShardedEngine::Open(dir, options);
    ASSERT_OK(reopened);
    EXPECT_EQ(reopened.value()->num_shards(), 2u);
    ASSERT_OK(reopened.value()->Close());
  }
  // A mismatching count is a hard error, never a migration.
  {
    ShardOptions options;
    options.num_shards = 3;
    options.durability = FastDurability();
    Result<std::unique_ptr<ShardedEngine>> mismatched =
        ShardedEngine::Open(dir, options);
    ASSERT_FALSE(mismatched.ok());
    EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ShardManifestTest, FreshDirRequiresExplicitCount) {
  ShardOptions options;
  options.num_shards = 0;
  Result<std::unique_ptr<ShardedEngine>> opened =
      ShardedEngine::Open(FreshDir("manifest_fresh"), options);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardManifestTest, GarbageManifestIsRejected) {
  const std::string dir = FreshDir("manifest_garbage");
  ASSERT_OK(WriteStringToFile(shard::ManifestPath(dir), "not json at all"));
  ShardOptions options;
  options.num_shards = 2;
  Result<std::unique_ptr<ShardedEngine>> opened =
      ShardedEngine::Open(dir, options);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardManifestTest, RoutingIsStable) {
  // The source -> shard map is a pure function of (source, count):
  // golden values pin it — changing the hash or seed would silently
  // re-home every existing deployment's sources.
  for (SourceId source = 0; source < 64; ++source) {
    EXPECT_EQ(shard::ShardOfSource(source, 1), 0u);
    const size_t at2 = shard::ShardOfSource(source, 2);
    EXPECT_LT(at2, 2u);
    EXPECT_EQ(at2, shard::ShardOfSource(source, 2));  // Deterministic.
  }
  // The hash spreads: 64 consecutive ids must not collapse onto one
  // shard of four.
  size_t counts[4] = {0, 0, 0, 0};
  for (SourceId source = 0; source < 64; ++source) {
    ++counts[shard::ShardOfSource(source, 4)];
  }
  for (size_t shard_count : counts) EXPECT_GT(shard_count, 4u);
}

// --- Composite snapshot -----------------------------------------------------

TEST(CompositeSnapshotTest, ConsistentCutMatchesLiveAndSurvivesWrites) {
  const Plan plan = MakeWalk(/*seed=*/3, /*total_ops=*/24);
  ShardOptions options;
  options.num_shards = 2;
  options.durability = FastDurability();
  Result<std::unique_ptr<ShardedEngine>> opened =
      ShardedEngine::Open(FreshDir("composite"), options);
  ASSERT_OK(opened);
  ShardedEngine& sharded = *opened.value();
  for (const PlanOp& op : plan.ops) {
    ASSERT_OK(Apply(plan, op, &sharded));
  }

  std::unique_ptr<CompositeSnapshot> snapshot =
      CompositeSnapshot::Capture(sharded);
  EXPECT_EQ(snapshot->num_shards(), 2u);
  EXPECT_EQ(snapshot->TotalStories(), sharded.TotalStories());

  const auto queries = MakeQueries(plan, 3);
  std::vector<std::vector<StoryHit>> at_capture;
  for (const auto& [query, search_options] : queries) {
    Result<std::vector<StoryHit>> live = sharded.Search(query, search_options);
    ASSERT_OK(live);
    Result<std::vector<StoryHit>> frozen =
        snapshot->Search(query, search_options);
    ASSERT_OK(frozen);
    ExpectSameHits(live.value(), frozen.value(), "snapshot vs live");
    at_capture.push_back(std::move(frozen).value());
  }

  // Later writes must not bleed into the frozen view. (A fresh source:
  // the walk may have removed any of the originals.)
  Result<SourceId> fresh = sharded.RegisterSource("post-capture");
  ASSERT_OK(fresh);
  Snippet extra = plan.corpus.snippets.back();
  extra.id = kInvalidSnippetId;
  extra.source = fresh.value();
  ASSERT_OK(sharded.AddSnippet(std::move(extra)).status());
  for (size_t q = 0; q < queries.size(); ++q) {
    Result<std::vector<StoryHit>> again =
        snapshot->Search(queries[q].first, queries[q].second);
    ASSERT_OK(again);
    ExpectSameHits(at_capture[q], again.value(), "snapshot after write");
  }
  ASSERT_OK(sharded.Close());
}

// --- Fault injection: mid-op shard failure ---------------------------------

#ifdef STORYPIVOT_FAILPOINTS

class ShardFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::Registry::Instance().DisarmAll(); }
  void TearDown() override { failpoint::Registry::Instance().DisarmAll(); }
};

TEST_F(ShardFaultTest, MidOpAppendFailurePoisonsUntilReopen) {
  const Plan plan = MakeWalk(/*seed=*/5, /*total_ops=*/20);
  // Kill the k-th WAL append of the poisoned op: k=1 fails the owner's
  // native record (nothing logged anywhere), k=2 fails the first stub
  // (owner already logged — the shards now disagree). Both must poison,
  // and Reopen must rewind every shard to the acked prefix.
  for (const uint64_t kill_at : {uint64_t{1}, uint64_t{2}}) {
    ShardOptions options;
    options.num_shards = 2;
    options.durability = FastDurability();
    // Quarantine off: this test pins down the legacy fail-stop path
    // (poison + Reopen). The quarantine/heal path has its own coverage
    // in shard_chaos_test.cc.
    options.quarantine = false;
    Result<std::unique_ptr<ShardedEngine>> opened = ShardedEngine::Open(
        FreshDir("fault_" + std::to_string(kill_at)), options);
    ASSERT_OK(opened);
    ShardedEngine& sharded = *opened.value();
    for (const PlanOp& op : plan.ops) {
      ASSERT_OK(Apply(plan, op, &sharded));
    }
    Result<SourceId> victim = sharded.RegisterSource("victim");
    ASSERT_OK(victim);
    const uint64_t acked_fp = sharded.Fingerprint();
    const uint64_t acked_lsn = sharded.next_lsn();
    ASSERT_OK(sharded.Sync());

    Snippet doomed = plan.corpus.snippets.back();
    doomed.id = kInvalidSnippetId;
    doomed.source = victim.value();
    failpoint::Registry::Instance().Arm(
        "wal.append", failpoint::OneShot(kill_at, /*transient=*/false));
    Result<SnippetId> failed = sharded.AddSnippet(doomed);
    failpoint::Registry::Instance().DisarmAll();
    ASSERT_FALSE(failed.ok()) << "kill_at " << kill_at;

    // Poisoned: every further mutation bounces with kDegraded.
    EXPECT_TRUE(sharded.degraded()) << "kill_at " << kill_at;
    Result<SourceId> bounced = sharded.RegisterSource("while-degraded");
    ASSERT_FALSE(bounced.ok());
    EXPECT_EQ(bounced.status().code(), StatusCode::kDegraded);

    // Reopen rewinds all shards to the common durable prefix — the
    // acked state; the torn op never happened.
    ASSERT_OK(sharded.Reopen());
    EXPECT_FALSE(sharded.degraded());
    EXPECT_EQ(sharded.next_lsn(), acked_lsn) << "kill_at " << kill_at;
    EXPECT_EQ(sharded.Fingerprint(), acked_fp) << "kill_at " << kill_at;

    // And the deployment is healthy again. (Re-register: the poisoned
    // window — and its "victim" registration, logged before the kill —
    // may or may not have survived as durable records; what matters is
    // that writes work.)
    Result<SourceId> after = sharded.RegisterSource("after-reopen");
    ASSERT_OK(after);
    Snippet retry = plan.corpus.snippets.back();
    retry.id = kInvalidSnippetId;
    retry.source = after.value();
    EXPECT_OK(sharded.AddSnippet(std::move(retry)).status());
    ASSERT_OK(sharded.Close());
  }
}

#else  // !STORYPIVOT_FAILPOINTS

TEST(ShardFaultTest, RequiresFailpointBuild) {
  GTEST_SKIP() << "built without STORYPIVOT_FAILPOINTS";
}

#endif  // STORYPIVOT_FAILPOINTS

}  // namespace
}  // namespace storypivot
