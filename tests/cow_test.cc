// Unit tests for the persistent data-structures subsystem (src/cow/):
// CowBox, PersistentMap (HAMT), PersistentVector. The properties pinned
// here — O(1) freeze, write immunity of frozen copies, content-
// deterministic iteration order — are what the serving tier's
// O(delta) snapshot capture is built on (DESIGN.md §15).

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cow/cow_box.h"
#include "cow/persistent_map.h"
#include "cow/persistent_vector.h"
#include "cow/stats.h"

namespace storypivot::cow {
namespace {

TEST(CowBoxTest, CopyIsSharedUntilMutate) {
  CowBox<std::vector<int>> original(std::vector<int>{1, 2, 3});
  CowBox<std::vector<int>> frozen = original;
  EXPECT_FALSE(original.unique());
  EXPECT_EQ(&original.read(), &frozen.read());

  original.Mutate()->push_back(4);
  EXPECT_TRUE(original.unique());
  EXPECT_TRUE(frozen.unique());
  EXPECT_EQ(original.read().size(), 4u);
  EXPECT_EQ(frozen.read().size(), 3u);  // Frozen copy is write-immune.
}

TEST(CowBoxTest, MutateInPlaceWhenUnique) {
  CowBox<std::vector<int>> box(std::vector<int>{7});
  const std::vector<int>* payload = &box.read();
  box.Mutate()->push_back(8);
  EXPECT_EQ(payload, &box.read());  // No clone happened.
}

TEST(CowBoxTest, DeepCopyIsIndependentEvenWhenUnique) {
  CowBox<std::vector<int>> box(std::vector<int>{1});
  CowBox<std::vector<int>> deep = box.DeepCopy();
  EXPECT_NE(&box.read(), &deep.read());
  EXPECT_EQ(box.read(), deep.read());
}

TEST(CowBoxTest, SharedMutationRecordsACopy) {
  CowBox<std::vector<int>> box(std::vector<int>(100, 1));
  CowBox<std::vector<int>> frozen = box;
  const CopyCounters before = ReadCopyCounters();
  (void)box.Mutate();
  const CopyCounters after = ReadCopyCounters();
  EXPECT_EQ(after.copies, before.copies + 1);
  EXPECT_GE(after.bytes - before.bytes, 100 * sizeof(int));
  // And now that it is unique again, further mutations are free.
  const CopyCounters again = ReadCopyCounters();
  (void)box.Mutate();
  EXPECT_EQ(ReadCopyCounters().copies, again.copies);
  (void)frozen;
}

TEST(PersistentMapTest, InsertFindErase) {
  PersistentMap<uint32_t, std::string> map;
  EXPECT_TRUE(map.empty());
  for (uint32_t i = 0; i < 500; ++i) {
    auto [value, inserted] = map.Emplace(i, "v" + std::to_string(i));
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*value, "v" + std::to_string(i));
  }
  EXPECT_EQ(map.size(), 500u);
  auto [existing, inserted] = map.Emplace(42, "other");
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*existing, "v42");  // Duplicate emplace leaves value alone.
  EXPECT_EQ(map.size(), 500u);

  for (uint32_t i = 0; i < 500; ++i) {
    const std::string* found = map.Find(i);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, "v" + std::to_string(i));
  }
  EXPECT_EQ(map.Find(1000u), nullptr);
  EXPECT_FALSE(map.Erase(1000u));

  for (uint32_t i = 0; i < 500; i += 2) EXPECT_TRUE(map.Erase(i));
  EXPECT_EQ(map.size(), 250u);
  for (uint32_t i = 0; i < 500; ++i) {
    EXPECT_EQ(map.contains(i), i % 2 == 1) << i;
  }
}

TEST(PersistentMapTest, GetOrInsertAndFindMutable) {
  PersistentMap<int, std::vector<int>> map;
  map.GetOrInsert(1).push_back(10);
  map.GetOrInsert(1).push_back(11);
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.Find(1), nullptr);
  EXPECT_EQ(*map.Find(1), (std::vector<int>{10, 11}));

  EXPECT_EQ(map.FindMutable(2), nullptr);
  std::vector<int>* value = map.FindMutable(1);
  ASSERT_NE(value, nullptr);
  value->push_back(12);
  EXPECT_EQ(map.Find(1)->size(), 3u);
}

TEST(PersistentMapTest, HeterogeneousStringLookup) {
  PersistentMap<std::string, int, std::hash<std::string_view>> map;
  map.Emplace("alpha", 1);
  map.Emplace("beta", 2);
  const std::string_view view = "alpha";
  ASSERT_NE(map.Find(view), nullptr);  // No std::string temporary needed.
  EXPECT_EQ(*map.Find(view), 1);
  EXPECT_TRUE(map.Erase(std::string_view("beta")));
  EXPECT_EQ(map.size(), 1u);
}

TEST(PersistentMapTest, FrozenCopyIsWriteImmune) {
  PersistentMap<uint32_t, int> map;
  for (uint32_t i = 0; i < 200; ++i) map.Emplace(i, static_cast<int>(i));
  const PersistentMap<uint32_t, int> frozen = map;  // O(1) freeze.

  for (uint32_t i = 0; i < 200; i += 3) map.Erase(i);
  for (uint32_t i = 200; i < 400; ++i) map.Emplace(i, -1);
  for (uint32_t i = 0; i < 200; i += 7) {
    if (int* v = map.FindMutable(i)) *v = 999;
  }

  // The frozen copy still sees exactly the pre-freeze state.
  EXPECT_EQ(frozen.size(), 200u);
  for (uint32_t i = 0; i < 200; ++i) {
    const int* v = frozen.Find(i);
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, static_cast<int>(i)) << i;
  }
  EXPECT_EQ(frozen.Find(300u), nullptr);
}

// Iteration order must be a pure function of the key set, independent
// of insertion/erase history — the engine's snapshot-equals-rebuild
// invariant leans on this.
TEST(PersistentMapTest, IterationOrderIsContentDeterministic) {
  std::vector<uint32_t> keys;
  for (uint32_t i = 0; i < 300; ++i) keys.push_back(i * 17 + 3);

  PersistentMap<uint32_t, int> forward;
  for (uint32_t k : keys) forward.Emplace(k, 0);

  PersistentMap<uint32_t, int> shuffled;
  std::mt19937 rng(7);
  std::vector<uint32_t> order = keys;
  std::shuffle(order.begin(), order.end(), rng);
  // Also insert (then erase) noise keys so the trie shape history
  // differs even more.
  for (uint32_t k : order) {
    shuffled.Emplace(k, 0);
    shuffled.Emplace(k + 1000000, 0);
  }
  for (uint32_t k : order) shuffled.Erase(k + 1000000);

  std::vector<uint32_t> a, b;
  forward.ForEach([&](uint32_t k, int) { a.push_back(k); });
  shuffled.ForEach([&](uint32_t k, int) { b.push_back(k); });
  EXPECT_EQ(a, b);

  // Iterator agrees with ForEach.
  std::vector<uint32_t> c;
  for (const auto& [k, v] : forward) c.push_back(k);
  EXPECT_EQ(a, c);
}

struct DegenerateHash {
  size_t operator()(int key) const {
    return static_cast<size_t>(key % 3);  // Everything collides.
  }
};

TEST(PersistentMapTest, SurvivesFullHashCollisions) {
  PersistentMap<int, int, DegenerateHash> map;
  for (int i = 0; i < 100; ++i) map.Emplace(i, i * 2);
  EXPECT_EQ(map.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(map.Find(i), nullptr) << i;
    EXPECT_EQ(*map.Find(i), i * 2);
  }
  // Collision buckets sort by key, so order is still content-determined.
  PersistentMap<int, int, DegenerateHash> other;
  for (int i = 99; i >= 0; --i) other.Emplace(i, i * 2);
  std::vector<int> a, b;
  map.ForEach([&](int k, int) { a.push_back(k); });
  other.ForEach([&](int k, int) { b.push_back(k); });
  EXPECT_EQ(a, b);

  const PersistentMap<int, int, DegenerateHash> frozen = map;
  for (int i = 0; i < 100; i += 2) map.Erase(i);
  EXPECT_EQ(frozen.size(), 100u);
  EXPECT_NE(frozen.Find(0), nullptr);
  EXPECT_EQ(map.size(), 50u);
}

TEST(PersistentMapTest, MaterializeIsDeep) {
  PersistentMap<int, CowBox<std::vector<int>>> map;
  map.GetOrInsert(1) = CowBox<std::vector<int>>(std::vector<int>{1, 2});
  PersistentMap<int, CowBox<std::vector<int>>> deep = map.Materialize(
      [](const CowBox<std::vector<int>>& box) { return box.DeepCopy(); });
  ASSERT_NE(deep.Find(1), nullptr);
  EXPECT_NE(&deep.Find(1)->read(), &map.Find(1)->read());
  EXPECT_EQ(deep.Find(1)->read(), map.Find(1)->read());
}

TEST(PersistentMapTest, MatchesReferenceUnderRandomizedChurn) {
  std::mt19937 rng(1234);
  PersistentMap<uint32_t, uint32_t> map;
  std::unordered_map<uint32_t, uint32_t> reference;
  std::vector<std::pair<PersistentMap<uint32_t, uint32_t>,
                        std::map<uint32_t, uint32_t>>>
      snapshots;
  for (int step = 0; step < 4000; ++step) {
    const uint32_t key = rng() % 700;
    switch (rng() % 4) {
      case 0:
      case 1: {
        const uint32_t value = rng();
        map.GetOrInsert(key) = value;
        reference[key] = value;
        break;
      }
      case 2:
        EXPECT_EQ(map.Erase(key), reference.erase(key) > 0);
        break;
      default:
        if (uint32_t* v = map.FindMutable(key)) {
          *v += 1;
          reference[key] += 1;
        }
        break;
    }
    if (step % 500 == 0) {
      snapshots.emplace_back(
          map, std::map<uint32_t, uint32_t>(reference.begin(),
                                            reference.end()));
    }
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [key, value] : reference) {
    ASSERT_NE(map.Find(key), nullptr) << key;
    EXPECT_EQ(*map.Find(key), value);
  }
  // Every frozen snapshot still matches the reference taken with it.
  for (const auto& [frozen, expected] : snapshots) {
    std::map<uint32_t, uint32_t> got;
    frozen.ForEach([&](uint32_t k, uint32_t v) { got[k] = v; });
    EXPECT_EQ(got, expected);
  }
}

TEST(PersistentVectorTest, PushGetSetPop) {
  PersistentVector<int> vec;
  EXPECT_TRUE(vec.empty());
  // Cross several levels: 32^2 = 1024 < 3000.
  for (int i = 0; i < 3000; ++i) vec.PushBack(i);
  EXPECT_EQ(vec.size(), 3000u);
  for (int i = 0; i < 3000; ++i) EXPECT_EQ(vec.At(i), i);
  EXPECT_EQ(vec.back(), 2999);

  vec.Set(1500, -1);
  *vec.Mutable(17) = -2;
  EXPECT_EQ(vec.At(1500), -1);
  EXPECT_EQ(vec.At(17), -2);

  for (int i = 0; i < 2990; ++i) vec.PopBack();
  EXPECT_EQ(vec.size(), 10u);
  EXPECT_EQ(vec.At(9), 9);
  vec.PushBack(77);
  EXPECT_EQ(vec.back(), 77);
  while (!vec.empty()) vec.PopBack();
  vec.PushBack(5);  // Usable again after draining.
  EXPECT_EQ(vec.At(0), 5);
}

TEST(PersistentVectorTest, FrozenCopyIsWriteImmune) {
  PersistentVector<int> vec;
  for (int i = 0; i < 1000; ++i) vec.PushBack(i);
  const PersistentVector<int> frozen = vec;  // O(1) freeze.

  for (int i = 0; i < 1000; i += 5) vec.Set(i, -i);
  for (int i = 0; i < 400; ++i) vec.PopBack();
  for (int i = 0; i < 100; ++i) vec.PushBack(7);

  EXPECT_EQ(frozen.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(frozen.At(i), i) << i;
}

TEST(PersistentVectorTest, FromVectorAndForEachPreserveOrder) {
  std::vector<int> flat;
  for (int i = 0; i < 2500; ++i) flat.push_back(i * 3);
  PersistentVector<int> vec = PersistentVector<int>::FromVector(flat);
  std::vector<int> seen;
  vec.ForEach([&](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, flat);
}

TEST(PersistentVectorTest, InPlaceMutationWhenUnshared) {
  PersistentVector<int> vec;
  for (int i = 0; i < 500; ++i) vec.PushBack(i);
  const CopyCounters before = ReadCopyCounters();
  for (int i = 0; i < 500; ++i) vec.Set(i, i + 1);
  EXPECT_EQ(ReadCopyCounters().copies, before.copies);  // No frozen copy.

  const PersistentVector<int> frozen = vec;
  vec.Set(0, 42);  // Now a path copy must happen.
  EXPECT_GT(ReadCopyCounters().copies, before.copies);
  EXPECT_EQ(frozen.At(0), 1);
  EXPECT_EQ(vec.At(0), 42);
}

}  // namespace
}  // namespace storypivot::cow
