#include <gtest/gtest.h>

#include <cstdio>

#include "core/snapshot.h"
#include "datagen/corpus.h"
#include "eval/experiment.h"
#include "util/logging.h"

namespace storypivot {
namespace {

std::unique_ptr<StoryPivotEngine> BuildPopulatedEngine() {
  datagen::CorpusConfig corpus_config;
  corpus_config.seed = 55;
  corpus_config.num_sources = 4;
  corpus_config.num_stories = 10;
  corpus_config.target_num_snippets = 500;
  datagen::Corpus corpus =
      datagen::CorpusGenerator(corpus_config).Generate();
  auto engine = std::make_unique<StoryPivotEngine>();
  SP_CHECK(engine
               ->ImportVocabularies(*corpus.entity_vocabulary,
                                    *corpus.keyword_vocabulary)
               .ok());
  for (const SourceInfo& s : corpus.sources) engine->RegisterSource(s.name);
  for (const Snippet& snippet : corpus.snippets) {
    Snippet copy = snippet;
    copy.id = kInvalidSnippetId;
    SP_CHECK_OK(engine->AddSnippet(std::move(copy)));
  }
  return engine;
}

// Canonical clustering fingerprint for state comparison.
std::vector<std::pair<SnippetId, StoryId>> Fingerprint(
    const StoryPivotEngine& engine) {
  std::vector<std::pair<SnippetId, StoryId>> out;
  for (const StorySet* partition : engine.partitions()) {
    for (const auto& [ts, sid] : partition->snippet_times().entries()) {
      out.push_back({sid, partition->StoryOf(sid)});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  std::unique_ptr<StoryPivotEngine> original = BuildPopulatedEngine();
  std::string snapshot = SaveSnapshot(*original);

  Result<std::unique_ptr<StoryPivotEngine>> loaded =
      LoadSnapshot(snapshot);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  StoryPivotEngine& restored = *loaded.value();

  EXPECT_EQ(restored.store().size(), original->store().size());
  EXPECT_EQ(restored.sources().size(), original->sources().size());
  EXPECT_EQ(restored.TotalStories(), original->TotalStories());
  EXPECT_EQ(Fingerprint(restored), Fingerprint(*original));
  const StoryPivotEngine& const_restored = restored;
  const StoryPivotEngine& const_original = *original;
  EXPECT_EQ(const_restored.entity_vocabulary().size(),
            const_original.entity_vocabulary().size());
  EXPECT_EQ(const_restored.keyword_vocabulary().size(),
            const_original.keyword_vocabulary().size());
  // Document-frequency state was rebuilt (needed for further ingestion).
  EXPECT_EQ(restored.document_frequency().num_documents(),
            original->document_frequency().num_documents());
}

TEST(SnapshotTest, SnippetContentSurvives) {
  std::unique_ptr<StoryPivotEngine> original = BuildPopulatedEngine();
  auto loaded = LoadSnapshot(SaveSnapshot(*original));
  ASSERT_TRUE(loaded.ok());
  original->store().ForEach([&](const Snippet& snippet) {
    const Snippet* restored = loaded.value()->store().Find(snippet.id);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->timestamp, snippet.timestamp);
    EXPECT_EQ(restored->description, snippet.description);
    EXPECT_EQ(restored->document_url, snippet.document_url);
    EXPECT_EQ(restored->truth_story, snippet.truth_story);
    EXPECT_EQ(restored->event_type, snippet.event_type);
    EXPECT_TRUE(restored->entities == snippet.entities);
    EXPECT_TRUE(restored->keywords == snippet.keywords);
  });
}

TEST(SnapshotTest, AlignmentAfterLoadMatchesOriginal) {
  std::unique_ptr<StoryPivotEngine> original = BuildPopulatedEngine();
  auto loaded = LoadSnapshot(SaveSnapshot(*original));
  ASSERT_TRUE(loaded.ok());
  original->Align();
  loaded.value()->Align();
  EXPECT_EQ(original->alignment().stories.size(),
            loaded.value()->alignment().stories.size());
  eval::QualityScores a = eval::ScoreEngine(*original);
  eval::QualityScores b = eval::ScoreEngine(*loaded.value());
  EXPECT_DOUBLE_EQ(a.sa_pairwise.f1, b.sa_pairwise.f1);
  EXPECT_DOUBLE_EQ(a.si_pairwise.f1, b.si_pairwise.f1);
}

TEST(SnapshotTest, LoadedEngineAcceptsNewSnippets) {
  std::unique_ptr<StoryPivotEngine> original = BuildPopulatedEngine();
  auto loaded = LoadSnapshot(SaveSnapshot(*original));
  ASSERT_TRUE(loaded.ok());
  StoryPivotEngine& engine = *loaded.value();
  // Continue ingesting: ids must not collide, identification must work.
  Snippet snippet;
  snippet.source = 0;
  snippet.timestamp = MakeTimestamp(2014, 12, 24);
  snippet.entities = text::TermVector::FromEntries({{0, 1.0}});
  snippet.keywords = text::TermVector::FromEntries({{0, 1.0}});
  Result<SnippetId> id = engine.AddSnippet(std::move(snippet));
  ASSERT_TRUE(id.ok());
  EXPECT_NE(engine.partition(0)->StoryOf(id.value()), kInvalidStoryId);
}

TEST(SnapshotTest, FileRoundTrip) {
  std::unique_ptr<StoryPivotEngine> original = BuildPopulatedEngine();
  std::string path = ::testing::TempDir() + "/sp_snapshot_test.tsv";
  ASSERT_TRUE(SaveSnapshotToFile(*original, path).ok());
  auto loaded = LoadSnapshotFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(Fingerprint(*loaded.value()), Fingerprint(*original));
  std::remove(path.c_str());
}

TEST(SnapshotTest, RoundTripIsByteIdentical) {
  std::unique_ptr<StoryPivotEngine> original = BuildPopulatedEngine();
  std::string first = SaveSnapshot(*original);
  auto loaded = LoadSnapshot(first);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Save(Load(Save(e))) must be byte-identical, so snapshots are
  // canonical: equal states produce equal bytes, diffable and hashable.
  std::string second = SaveSnapshot(*loaded.value());
  EXPECT_EQ(first, second);
  auto reloaded = LoadSnapshot(second);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(SaveSnapshot(*reloaded.value()), second);
}

TEST(SnapshotTest, ByteIdenticalAfterRemovalsAndParallelBatchIngest) {
  datagen::CorpusConfig corpus_config;
  corpus_config.seed = 77;
  corpus_config.num_sources = 4;
  corpus_config.num_stories = 10;
  corpus_config.target_num_snippets = 400;
  datagen::Corpus corpus =
      datagen::CorpusGenerator(corpus_config).Generate();
  EngineConfig config;
  config.num_threads = 4;  // Exercise the parallel batch-ingest path.
  auto engine = std::make_unique<StoryPivotEngine>(config);
  SP_CHECK_OK(engine->ImportVocabularies(*corpus.entity_vocabulary,
                                         *corpus.keyword_vocabulary));
  for (const SourceInfo& s : corpus.sources) engine->RegisterSource(s.name);
  engine->gazetteer()->AddEntity("acme corp");
  engine->gazetteer()->AddAlias(0, "the zeroth entity");
  std::vector<SnippetId> ids;
  for (size_t begin = 0; begin < corpus.snippets.size(); begin += 64) {
    std::vector<Snippet> batch;
    for (size_t i = begin;
         i < std::min(begin + 64, corpus.snippets.size()); ++i) {
      batch.push_back(corpus.snippets[i]);
      batch.back().id = kInvalidSnippetId;
    }
    Result<std::vector<SnippetId>> added =
        engine->AddSnippets(std::move(batch));
    SP_CHECK_OK(added.status());
    ids.insert(ids.end(), added.value().begin(), added.value().end());
  }
  // Removals that leave id gaps — including the HIGHEST id, which max+1
  // counter inference would hand out again.
  SP_CHECK_OK(engine->RemoveSnippet(ids[5]));
  SP_CHECK_OK(engine->RemoveSnippet(ids.back()));
  SP_CHECK_OK(engine->RemoveSource(3));

  std::string first = SaveSnapshot(*engine);
  auto loaded = LoadSnapshot(first);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(SaveSnapshot(*loaded.value()), first);

  // Id-stream continuation: the restored engine assigns the SAME ids and
  // story as the original engine would, despite the gaps.
  Snippet fresh = corpus.snippets[0];
  fresh.id = kInvalidSnippetId;
  Snippet fresh_copy = fresh;
  Result<SnippetId> original_id = engine->AddSnippet(std::move(fresh));
  Result<SnippetId> restored_id =
      loaded.value()->AddSnippet(std::move(fresh_copy));
  ASSERT_TRUE(original_id.ok());
  ASSERT_TRUE(restored_id.ok());
  EXPECT_EQ(original_id.value(), restored_id.value());
  EXPECT_EQ(EngineStateFingerprint(*loaded.value()),
            EngineStateFingerprint(*engine));
}

TEST(SnapshotTest, RejectsGarbage) {
  EXPECT_FALSE(LoadSnapshot("").ok());
  EXPECT_FALSE(LoadSnapshot("not a snapshot\n").ok());
  EXPECT_FALSE(
      LoadSnapshot("#storypivot-snapshot\tv99\n").ok());  // Wrong version.
  // Valid header but broken snippet row.
  EXPECT_FALSE(
      LoadSnapshot("#storypivot-snapshot\tv1\nN\txx\n").ok());
  // Snippet referencing an unknown source.
  EXPECT_FALSE(LoadSnapshot("#storypivot-snapshot\tv1\n"
                            "N\t1\t9\t0\t0\t-1\tu\td\t\t\n")
                   .ok());
}

TEST(SnapshotTest, AdoptAssignmentRejectsUnknownSource) {
  StoryPivotEngine engine;
  Snippet snippet;
  snippet.source = 42;
  Result<SnippetId> r = engine.AdoptAssignment(std::move(snippet), 0);
  EXPECT_FALSE(r.ok());
}

TEST(SnapshotTest, AdoptAssignmentBuildsStories) {
  StoryPivotEngine engine;
  SourceId src = engine.RegisterSource("s");
  for (int i = 0; i < 3; ++i) {
    Snippet snippet;
    snippet.source = src;
    snippet.timestamp = i * 100;
    snippet.entities = text::TermVector::FromEntries(
        {{static_cast<text::TermId>(i), 1.0}});
    ASSERT_TRUE(engine.AdoptAssignment(std::move(snippet), 7).ok());
  }
  const StorySet* partition = engine.partition(src);
  const Story* story = partition->FindStory(7);
  ASSERT_NE(story, nullptr);
  EXPECT_EQ(story->size(), 3u);
  // Future automatic story ids stay clear of adopted ones.
  Snippet fresh;
  fresh.source = src;
  fresh.timestamp = 999999;
  fresh.entities = text::TermVector::FromEntries({{99, 1.0}});
  SnippetId id = engine.AddSnippet(std::move(fresh)).value();
  EXPECT_GT(partition->StoryOf(id), 7u);
}

}  // namespace
}  // namespace storypivot
