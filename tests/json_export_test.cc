#include <gtest/gtest.h>

#include "viz/json_export.h"

namespace storypivot::viz {
namespace {

class JsonFixture : public ::testing::Test {
 protected:
  JsonFixture() {
    nyt_ = engine_.RegisterSource("New York Times");
    wsj_ = engine_.RegisterSource("W\"S\"J");  // Quote-bearing name.
    text::TermId ua = engine_.entity_vocabulary()->Intern("Ukraine");
    text::TermId crash = engine_.keyword_vocabulary()->Intern("crash");
    auto add = [&](SourceId src, Timestamp ts) {
      Snippet s;
      s.source = src;
      s.timestamp = ts;
      s.event_type = "Accident";
      s.description = "Plane \"crash\"\nnear Donetsk";
      s.document_url = "http://doc";
      s.entities = text::TermVector::FromEntries({{ua, 1.0}});
      s.keywords = text::TermVector::FromEntries({{crash, 2.0}});
      SP_CHECK_OK(engine_.AddSnippet(std::move(s)));
    };
    add(nyt_, MakeTimestamp(2014, 7, 17));
    add(wsj_, MakeTimestamp(2014, 7, 17, 6));
    engine_.Align();
  }

  StoryPivotEngine engine_;
  SourceId nyt_ = 0, wsj_ = 0;
};

TEST(JsonQuoteTest, EscapesSpecials) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonQuote("a\nb\tc"), "\"a\\nb\\tc\"");
  EXPECT_EQ(JsonQuote(std::string_view("a\x01z", 3)), "\"a\\u0001z\"");
}

TEST_F(JsonFixture, EngineExportIsBalancedAndComplete) {
  std::string json = ExportEngineJson(engine_);
  // Structural sanity: balanced braces/brackets, no raw control chars.
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      EXPECT_GE(static_cast<unsigned char>(c), 0x20);
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);

  EXPECT_NE(json.find("\"sources\":["), std::string::npos);
  EXPECT_NE(json.find("\"stories\":["), std::string::npos);
  EXPECT_NE(json.find("\"integrated\":["), std::string::npos);
  EXPECT_NE(json.find("New York Times"), std::string::npos);
  EXPECT_NE(json.find("W\\\"S\\\"J"), std::string::npos);
  EXPECT_NE(json.find("Ukraine"), std::string::npos);
}

TEST_F(JsonFixture, SnippetExportCarriesAllFields) {
  const Snippet* snippet = engine_.store().Find(0);
  ASSERT_NE(snippet, nullptr);
  StoryQuery query(&engine_);
  std::string json = ExportSnippetJson(query, *snippet);
  EXPECT_NE(json.find("\"type\":\"Accident\""), std::string::npos);
  EXPECT_NE(json.find("\\\"crash\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\"entities\":[\"Ukraine\"]"), std::string::npos);
  EXPECT_NE(json.find("\"keywords\":[\"crash\"]"), std::string::npos);
}

TEST_F(JsonFixture, StoryExportHasTermCounts) {
  StoryQuery query(&engine_);
  const StorySet* partition = engine_.partition(nyt_);
  ASSERT_EQ(partition->stories().size(), 1u);
  std::string json = ExportStoryJson(
      query, partition->stories().begin()->second, /*integrated=*/false);
  EXPECT_NE(json.find("\"term\":\"Ukraine\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":"), std::string::npos);
  EXPECT_NE(json.find("\"integrated\":false"), std::string::npos);
}

TEST_F(JsonFixture, ExportIsDeterministic) {
  EXPECT_EQ(ExportEngineJson(engine_), ExportEngineJson(engine_));
}

}  // namespace
}  // namespace storypivot::viz
