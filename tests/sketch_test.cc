#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "sketch/lsh_index.h"
#include "sketch/minhash.h"
#include "util/rng.h"

namespace storypivot {
namespace {

text::TermVector VectorOf(std::initializer_list<text::TermId> terms) {
  std::vector<text::TermVector::Entry> entries;
  for (text::TermId t : terms) entries.push_back({t, 1.0});
  return text::TermVector::FromEntries(std::move(entries));
}

// -------------------------------- MinHash ----------------------------------

TEST(MinHashTest, IdenticalSetsEstimateOne) {
  text::TermVector e = VectorOf({1, 2, 3});
  text::TermVector k = VectorOf({10, 11});
  auto a = MinHashSignature::FromContent(e, k);
  auto b = MinHashSignature::FromContent(e, k);
  EXPECT_DOUBLE_EQ(a.EstimateJaccard(b), 1.0);
}

TEST(MinHashTest, DisjointSetsEstimateNearZero) {
  auto a = MinHashSignature::FromContent(VectorOf({1, 2, 3}),
                                         VectorOf({10, 11}), 128);
  auto b = MinHashSignature::FromContent(VectorOf({4, 5, 6}),
                                         VectorOf({20, 21}), 128);
  EXPECT_LT(a.EstimateJaccard(b), 0.1);
}

TEST(MinHashTest, EmptySignatureEstimatesZero) {
  MinHashSignature empty(64);
  auto a = MinHashSignature::FromContent(VectorOf({1}), VectorOf({}), 64);
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_FALSE(a.IsEmpty());
  EXPECT_DOUBLE_EQ(empty.EstimateJaccard(a), 0.0);
  EXPECT_DOUBLE_EQ(empty.EstimateJaccard(empty), 0.0);
}

TEST(MinHashTest, EntityAndKeywordDomainsDistinct) {
  // The same raw TermId in the entity vs keyword domain must not collide.
  auto a = MinHashSignature::FromContent(VectorOf({1}), VectorOf({}), 128);
  auto b = MinHashSignature::FromContent(VectorOf({}), VectorOf({1}), 128);
  EXPECT_LT(a.EstimateJaccard(b), 0.1);
  EXPECT_NE(TagEntityTerm(1), TagKeywordTerm(1));
}

TEST(MinHashTest, MergeEqualsUnionSignature) {
  text::TermVector ea = VectorOf({1, 2});
  text::TermVector eb = VectorOf({3, 4});
  auto a = MinHashSignature::FromContent(ea, VectorOf({}), 64);
  auto b = MinHashSignature::FromContent(eb, VectorOf({}), 64);
  a.Merge(b);
  auto expected =
      MinHashSignature::FromContent(VectorOf({1, 2, 3, 4}), VectorOf({}), 64);
  EXPECT_EQ(a, expected);
}

// Property: the MinHash estimate converges to true Jaccard within the
// ~1/sqrt(k) bound, across random set pairs.
class MinHashAccuracy : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MinHashAccuracy, EstimateWithinBound) {
  Pcg32 rng(GetParam());
  const size_t kHashes = 256;  // Error ~ 1/16.
  for (int round = 0; round < 10; ++round) {
    // Build two random sets with controlled overlap.
    std::set<text::TermId> sa, sb;
    size_t shared = 5 + rng.NextBounded(30);
    size_t only_a = rng.NextBounded(30);
    size_t only_b = rng.NextBounded(30);
    text::TermId next = 0;
    for (size_t i = 0; i < shared; ++i) {
      sa.insert(next);
      sb.insert(next);
      ++next;
    }
    for (size_t i = 0; i < only_a; ++i) sa.insert(next++);
    for (size_t i = 0; i < only_b; ++i) sb.insert(next++);

    double true_jaccard =
        static_cast<double>(shared) /
        static_cast<double>(shared + only_a + only_b);

    auto make = [&](const std::set<text::TermId>& s) {
      MinHashSignature sig(kHashes);
      for (text::TermId t : s) sig.AddElement(TagEntityTerm(t));
      return sig;
    };
    double estimate = make(sa).EstimateJaccard(make(sb));
    EXPECT_NEAR(estimate, true_jaccard, 4.0 / std::sqrt(kHashes))
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinHashAccuracy,
                         ::testing::Values(101u, 202u, 303u));

// -------------------------------- LshIndex ---------------------------------

TEST(LshIndexTest, ExactDuplicateAlwaysFound) {
  LshIndex index(16, 4);
  auto sig = MinHashSignature::FromContent(VectorOf({1, 2, 3}),
                                           VectorOf({9}), 64);
  index.Insert(42, sig);
  auto hits = index.Query(sig);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42u);
}

TEST(LshIndexTest, RemoveMakesItemInvisible) {
  LshIndex index(16, 4);
  auto sig = MinHashSignature::FromContent(VectorOf({1}), VectorOf({}), 64);
  index.Insert(1, sig);
  index.Remove(1);
  EXPECT_TRUE(index.Query(sig).empty());
  EXPECT_EQ(index.size(), 0u);
  index.Remove(1);  // Idempotent.
}

TEST(LshIndexTest, ReinsertReplacesOldSignature) {
  LshIndex index(16, 4);
  auto sig1 = MinHashSignature::FromContent(VectorOf({1, 2}), VectorOf({}), 64);
  auto sig2 =
      MinHashSignature::FromContent(VectorOf({50, 51}), VectorOf({}), 64);
  index.Insert(7, sig1);
  index.Insert(7, sig2);
  EXPECT_EQ(index.size(), 1u);
  auto hits = index.Query(sig2);
  ASSERT_EQ(hits.size(), 1u);
  // The old signature should (almost surely) no longer collide.
  EXPECT_TRUE(index.Query(sig1).empty());
}

TEST(LshIndexTest, HighSimilarityPairsCollide) {
  // Sets with Jaccard ~0.9 should collide with overwhelming probability
  // under 16 bands x 4 rows.
  Pcg32 rng(5);
  LshIndex index(16, 4);
  std::vector<text::TermId> base;
  for (text::TermId t = 0; t < 40; ++t) base.push_back(t);
  MinHashSignature a(64);
  for (text::TermId t : base) a.AddElement(TagEntityTerm(t));
  MinHashSignature b(64);
  for (size_t i = 0; i < base.size(); ++i) {
    // Replace 2 of 40 elements -> Jaccard ~ 38/42 ~ 0.90.
    text::TermId t = (i < 2) ? 1000 + static_cast<text::TermId>(i) : base[i];
    b.AddElement(TagEntityTerm(t));
  }
  index.Insert(1, a);
  auto hits = index.Query(b);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(LshIndexTest, LowSimilarityPairsRarelyCollide) {
  // Many distinct random items; a fresh probe should match few of them.
  Pcg32 rng(6);
  LshIndex index(16, 4);
  for (uint64_t i = 0; i < 200; ++i) {
    MinHashSignature sig(64);
    for (int k = 0; k < 10; ++k) {
      sig.AddElement(TagEntityTerm(rng.NextBounded(100000)));
    }
    index.Insert(i, sig);
  }
  MinHashSignature probe(64);
  for (int k = 0; k < 10; ++k) {
    probe.AddElement(TagEntityTerm(200000 + rng.NextBounded(1000)));
  }
  EXPECT_LT(index.Query(probe).size(), 5u);
}

// Property: LSH recall for similar pairs across seeds.
class LshRecall : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LshRecall, SimilarItemsRetrieved) {
  Pcg32 rng(GetParam());
  LshIndex index(16, 4);
  const int kItems = 50;
  std::vector<MinHashSignature> sigs;
  for (int i = 0; i < kItems; ++i) {
    MinHashSignature sig(64);
    // Each item: 20 shared elements + 2 private ones => pairwise J ~ 0.83.
    for (text::TermId t = 0; t < 20; ++t) sig.AddElement(TagEntityTerm(t));
    sig.AddElement(TagEntityTerm(1000 + 2 * i));
    sig.AddElement(TagEntityTerm(1001 + 2 * i));
    sigs.push_back(sig);
    index.Insert(static_cast<uint64_t>(i), sigs.back());
  }
  // Every item should retrieve most of its near-duplicates.
  size_t total_hits = 0;
  for (int i = 0; i < kItems; ++i) {
    total_hits += index.Query(sigs[i]).size();
  }
  EXPECT_GT(total_hits, static_cast<size_t>(kItems) * kItems * 8 / 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LshRecall, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace storypivot
