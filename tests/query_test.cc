#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/query.h"
#include "datagen/corpus.h"
#include "datagen/mh17.h"
#include "persist/durable_engine.h"
#include "search/search_engine.h"
#include "util/fs.h"
#include "util/logging.h"

namespace storypivot {
namespace {

using search::SearchEngine;
using search::SearchOptions;
using search::StoryHit;

std::unique_ptr<StoryPivotEngine> BuildFromCorpus(
    const datagen::Corpus& corpus, size_t num_threads = 1,
    bool batch = false) {
  EngineConfig config;
  config.num_threads = num_threads;
  auto engine = std::make_unique<StoryPivotEngine>(config);
  SP_CHECK_OK(engine->ImportVocabularies(*corpus.entity_vocabulary,
                                         *corpus.keyword_vocabulary));
  for (const SourceInfo& source : corpus.sources) {
    engine->RegisterSource(source.name);
  }
  if (batch) {
    std::vector<Snippet> snippets;
    snippets.reserve(corpus.snippets.size());
    for (const Snippet& snippet : corpus.snippets) {
      Snippet copy = snippet;
      copy.id = kInvalidSnippetId;
      snippets.push_back(std::move(copy));
    }
    SP_CHECK_OK(engine->AddSnippets(std::move(snippets)));
  } else {
    for (const Snippet& snippet : corpus.snippets) {
      Snippet copy = snippet;
      copy.id = kInvalidSnippetId;
      SP_CHECK_OK(engine->AddSnippet(std::move(copy)));
    }
  }
  return engine;
}

std::vector<StoryId> IdsOf(const std::vector<StoryOverview>& overviews) {
  std::vector<StoryId> ids;
  ids.reserve(overviews.size());
  for (const StoryOverview& overview : overviews) ids.push_back(overview.id);
  return ids;
}

/// Asserts that the indexed and forced-scan routes agree on ids AND order
/// for every Find* lookup, across a spread of query arguments drawn from
/// the engine's vocabularies and index.
void ExpectFindEquivalence(const StoryPivotEngine& engine,
                           const SearchEngine& searcher) {
  StoryQuery indexed(&engine);
  indexed.set_index(&searcher);
  StoryQuery scan(&engine);
  scan.set_index(&searcher);
  scan.set_force_scan(true);

  const text::Vocabulary& entities = engine.entity_vocabulary();
  for (text::TermId id = 0; id < entities.size(); id += 3) {
    const std::string& name = entities.TermOf(id);
    EXPECT_EQ(IdsOf(indexed.FindByEntity(name)),
              IdsOf(scan.FindByEntity(name)))
        << "entity " << name;
  }
  const text::Vocabulary& keywords = engine.keyword_vocabulary();
  for (text::TermId id = 0; id < keywords.size(); id += 5) {
    const std::string& word = keywords.TermOf(id);
    EXPECT_EQ(IdsOf(indexed.FindByKeyword(word)),
              IdsOf(scan.FindByKeyword(word)))
        << "keyword " << word;
  }
  for (const auto& [type, df] : searcher.index().EventTypes()) {
    EXPECT_EQ(IdsOf(indexed.FindByEventType(type)),
              IdsOf(scan.FindByEventType(type)))
        << "event type " << type;
  }
  const Timestamp lo = MakeTimestamp(2014, 6, 1);
  const Timestamp hi = MakeTimestamp(2014, 12, 1);
  const Timestamp mid = (lo + hi) / 2;
  for (auto [begin, end] : {std::pair<Timestamp, Timestamp>{lo, hi},
                            {lo, mid},
                            {mid, hi},
                            {mid, mid + kSecondsPerDay}}) {
    EXPECT_EQ(IdsOf(indexed.FindInTimeRange(begin, end)),
              IdsOf(scan.FindInTimeRange(begin, end)))
        << "range " << begin << ".." << end;
  }
}

// ------------------------------ Empty engine -------------------------------

TEST(QueryEmptyEngine, AllLookupsReturnNothing) {
  StoryPivotEngine engine;
  SearchEngine searcher(&engine);
  StoryQuery query(&engine);
  query.set_index(&searcher);

  EXPECT_FALSE(engine.has_alignment());
  EXPECT_TRUE(query.FindByEntity("Ukraine").empty());
  EXPECT_TRUE(query.FindByKeyword("crash").empty());
  EXPECT_TRUE(query.FindByEventType("Conflict").empty());
  EXPECT_TRUE(query.FindInTimeRange(0, MakeTimestamp(2020, 1, 1)).empty());
  EXPECT_TRUE(searcher.Search("anything at all").empty());
}

// ------------------------- Alias and stem bugfixes -------------------------

class Mh17Query : public ::testing::Test {
 protected:
  Mh17Query() : corpus_(datagen::MakeMh17Corpus()) {
    engine_ = std::make_unique<StoryPivotEngine>(NewsProseEngineConfig());
    for (const SourceInfo& source : corpus_.sources) {
      engine_->RegisterSource(source.name);
    }
    datagen::PopulateMh17Gazetteer(corpus_, engine_->gazetteer());
    for (const Document& doc : corpus_.documents) {
      SP_CHECK_OK(engine_->AddDocument(doc));
    }
    searcher_ = std::make_unique<SearchEngine>(engine_.get());
  }

  datagen::Mh17Corpus corpus_;
  std::unique_ptr<StoryPivotEngine> engine_;
  std::unique_ptr<SearchEngine> searcher_;
};

TEST_F(Mh17Query, FindByEntityResolvesGazetteerAliases) {
  StoryQuery query(engine_.get());
  // "MH17" and "Malaysia Airlines Flight 17" are aliases of the canonical
  // "Malaysia Airlines" entity; all three must hit the same stories.
  std::vector<StoryId> canonical = IdsOf(query.FindByEntity("Malaysia Airlines"));
  ASSERT_FALSE(canonical.empty());
  EXPECT_EQ(IdsOf(query.FindByEntity("MH17")), canonical);
  EXPECT_EQ(IdsOf(query.FindByEntity("Malaysia Airlines Flight 17")),
            canonical);
}

TEST_F(Mh17Query, FindByEntityIsCaseInsensitive) {
  StoryQuery query(engine_.get());
  std::vector<StoryId> exact = IdsOf(query.FindByEntity("Ukraine"));
  ASSERT_FALSE(exact.empty());
  EXPECT_EQ(IdsOf(query.FindByEntity("ukraine")), exact);
}

TEST_F(Mh17Query, FindByKeywordStemsTheQuery) {
  StoryQuery query(engine_.get());
  // Ingest stems keywords, so surface forms must be stemmed on query too:
  // "investigations" and "investigation" share the stem "investig".
  std::vector<StoryId> plural = IdsOf(query.FindByKeyword("investigations"));
  ASSERT_FALSE(plural.empty());
  EXPECT_EQ(IdsOf(query.FindByKeyword("investigation")), plural);
  EXPECT_EQ(IdsOf(query.FindByKeyword("investig")), plural);
}

TEST_F(Mh17Query, WorksWithoutAlignment) {
  // No Align() was run: per-source lookups must work regardless.
  ASSERT_FALSE(engine_->has_alignment());
  StoryQuery query(engine_.get());
  EXPECT_FALSE(query.FindByEntity("Ukraine").empty());
  query.set_index(searcher_.get());
  EXPECT_FALSE(query.FindByEntity("Ukraine").empty());
  EXPECT_FALSE(searcher_->Search("Ukraine crash").empty());
}

TEST_F(Mh17Query, IndexedAndScanAgree) {
  ExpectFindEquivalence(*engine_, *searcher_);
}

TEST_F(Mh17Query, RankedSearchFindsAliasQueries) {
  std::vector<StoryHit> hits = searcher_->Search("MH17 crash");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits, searcher_->SearchScan(searcher_->Parse("MH17 crash")));
}

// ------------------------------- max_results -------------------------------

TEST(QueryMaxResults, CapsBothRoutes) {
  datagen::CorpusConfig config;
  config.target_num_snippets = 600;
  config.num_stories = 40;
  datagen::Corpus corpus = datagen::CorpusGenerator(config).Generate();
  std::unique_ptr<StoryPivotEngine> engine = BuildFromCorpus(corpus);
  SearchEngine searcher(engine.get());

  const Timestamp lo = MakeTimestamp(2014, 1, 1);
  const Timestamp hi = MakeTimestamp(2015, 1, 1);
  StoryQuery indexed(engine.get());
  indexed.set_index(&searcher);
  StoryQuery scan(engine.get());

  // Far more than kDefaultMaxResults stories exist in the window.
  ASSERT_GT(engine->TotalStories(), kDefaultMaxResults);
  EXPECT_EQ(indexed.FindInTimeRange(lo, hi).size(), kDefaultMaxResults);
  EXPECT_EQ(scan.FindInTimeRange(lo, hi).size(), kDefaultMaxResults);
  EXPECT_EQ(indexed.FindInTimeRange(lo, hi, 5, 7).size(), 7u);
  EXPECT_EQ(scan.FindInTimeRange(lo, hi, 5, 7).size(), 7u);
  EXPECT_EQ(IdsOf(indexed.FindInTimeRange(lo, hi, 5, 7)),
            IdsOf(scan.FindInTimeRange(lo, hi, 5, 7)));
}

// -------------------- Scan/index equivalence (property) --------------------

TEST(QueryEquivalenceProperty, HoldsAcrossSeedsRemovalsAndRefinement) {
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    datagen::CorpusConfig config;
    config.seed = seed;
    config.target_num_snippets = 150;
    config.num_sources = 4;
    config.num_stories = 12;
    config.num_entities = 60;
    datagen::Corpus corpus = datagen::CorpusGenerator(config).Generate();
    std::unique_ptr<StoryPivotEngine> engine = BuildFromCorpus(corpus);
    SearchEngine searcher(engine.get());

    ExpectFindEquivalence(*engine, searcher);

    // Merges/splits: refinement moves snippets between stories; the
    // snippet-granular index must track the post-refinement assignment.
    engine->Align();
    engine->Refine();
    ExpectFindEquivalence(*engine, searcher);

    // Removal: dropping a whole source unposts its snippets.
    SP_CHECK_OK(engine->RemoveSource(corpus.sources[0].id));
    ExpectFindEquivalence(*engine, searcher);

    if (::testing::Test::HasFailure()) {
      FAIL() << "equivalence broke at seed " << seed;
    }
  }
}

// ------------------------ Thread-count determinism -------------------------

TEST(QueryThreadDeterminism, IndexIdenticalAcrossThreadCounts) {
  datagen::CorpusConfig config;
  config.target_num_snippets = 1200;
  config.num_sources = 6;
  config.num_stories = 25;
  datagen::Corpus corpus = datagen::CorpusGenerator(config).Generate();

  std::unique_ptr<StoryPivotEngine> serial =
      BuildFromCorpus(corpus, /*num_threads=*/1, /*batch=*/true);
  std::unique_ptr<StoryPivotEngine> parallel =
      BuildFromCorpus(corpus, /*num_threads=*/4, /*batch=*/true);
  SearchEngine serial_search(serial.get());
  SearchEngine parallel_search(parallel.get());

  EXPECT_EQ(serial_search.index().num_documents(),
            parallel_search.index().num_documents());
  EXPECT_EQ(serial_search.index().num_postings(),
            parallel_search.index().num_postings());
  EXPECT_EQ(serial_search.index().total_length(),
            parallel_search.index().total_length());

  const text::Vocabulary& entities =
      std::as_const(*serial).entity_vocabulary();
  for (text::TermId id = 0; id < entities.size(); id += 7) {
    std::string query = entities.TermOf(id) + " crisis talks";
    EXPECT_EQ(serial_search.Search(query), parallel_search.Search(query))
        << "query " << query;
  }
  ExpectFindEquivalence(*parallel, parallel_search);
}

// --------------------- Rebuild-on-recover equivalence ----------------------

TEST(QueryDurableRecovery, RecoveredIndexMatchesLiveOne) {
  // Empty the durability directory first: a leftover WAL from an earlier
  // run would be recovered into the "fresh" engine and skew every count.
  std::string dir = ::testing::TempDir() + "/sp_query_recover";
  if (FileExists(dir)) {
    Result<std::vector<std::string>> stale = ListDirectory(dir);
    SP_CHECK_OK(stale.status());
    for (const std::string& entry : stale.value()) {
      SP_CHECK_OK(RemoveFile(dir + "/" + entry));
    }
  }
  datagen::CorpusConfig config;
  config.target_num_snippets = 300;
  config.num_sources = 4;
  config.num_stories = 12;
  datagen::Corpus corpus = datagen::CorpusGenerator(config).Generate();

  // Live engine: plain in-memory build with an attached index.
  std::unique_ptr<StoryPivotEngine> live = BuildFromCorpus(corpus);
  SearchEngine live_search(live.get());

  // Durable twin of the same stream, checkpointed mid-way so recovery
  // exercises checkpoint restore + WAL tail replay.
  {
    Result<std::unique_ptr<persist::DurableEngine>> opened =
        persist::DurableEngine::Open(dir);
    SP_CHECK_OK(opened.status());
    persist::DurableEngine& durable = *opened.value();
    SP_CHECK_OK(durable.ImportVocabularies(*corpus.entity_vocabulary,
                                           *corpus.keyword_vocabulary));
    for (const SourceInfo& source : corpus.sources) {
      SP_CHECK_OK(durable.RegisterSource(source.name));
    }
    for (size_t i = 0; i < corpus.snippets.size(); ++i) {
      Snippet copy = corpus.snippets[i];
      copy.id = kInvalidSnippetId;
      SP_CHECK_OK(durable.AddSnippet(std::move(copy)));
      if (i == corpus.snippets.size() / 2) {
        SP_CHECK_OK(durable.Checkpoint());
      }
    }
    // No Close(): the destructor path doubles as the crash simulation —
    // recovery may only rely on the checkpoint and the flushed WAL tail.
  }

  Result<std::unique_ptr<persist::DurableEngine>> recovered =
      persist::DurableEngine::Open(dir);
  SP_CHECK_OK(recovered.status());
  // Rebuild-on-recover: attaching constructs the index from the store.
  SearchEngine recovered_search(&recovered.value()->engine());

  EXPECT_EQ(live_search.index().num_documents(),
            recovered_search.index().num_documents());
  EXPECT_EQ(live_search.index().num_postings(),
            recovered_search.index().num_postings());
  EXPECT_EQ(live_search.index().total_length(),
            recovered_search.index().total_length());

  const text::Vocabulary& entities =
      std::as_const(*live).entity_vocabulary();
  for (text::TermId id = 0; id < entities.size(); id += 5) {
    std::string query = entities.TermOf(id) + " emergency response";
    EXPECT_EQ(live_search.Search(query), recovered_search.Search(query))
        << "query " << query;
  }
  ExpectFindEquivalence(recovered.value()->engine(), recovered_search);
  SP_CHECK_OK(recovered.value()->Close());
}

}  // namespace
}  // namespace storypivot
