#include <gtest/gtest.h>

#include <vector>

#include "eval/experiment.h"
#include "eval/metrics.h"
#include "util/rng.h"

namespace storypivot::eval {
namespace {

using Labels = std::vector<int64_t>;

// ------------------------------ Pairwise F ---------------------------------

TEST(PairwiseFTest, PerfectClustering) {
  Labels truth = {0, 0, 1, 1, 2};
  PrfScores s = PairwiseF(truth, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(PairwiseFTest, AllSingletonsHaveZeroRecall) {
  Labels truth = {0, 0, 0};
  Labels predicted = {1, 2, 3};
  PrfScores s = PairwiseF(truth, predicted);
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
  // No predicted pairs at all: precision is 0 by convention.
  EXPECT_DOUBLE_EQ(s.precision, 0.0);
}

TEST(PairwiseFTest, OneBigClusterHasFullRecallLowPrecision) {
  Labels truth = {0, 0, 1, 1};
  Labels predicted = {7, 7, 7, 7};
  PrfScores s = PairwiseF(truth, predicted);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  // 2 correct pairs out of C(4,2)=6 predicted.
  EXPECT_NEAR(s.precision, 2.0 / 6.0, 1e-12);
}

TEST(PairwiseFTest, HandComputedExample) {
  // truth: {a,b,c} {d,e}; predicted: {a,b} {c,d,e}.
  Labels truth = {0, 0, 0, 1, 1};
  Labels predicted = {0, 0, 1, 1, 1};
  // Truth pairs: ab,ac,bc,de (4). Predicted pairs: ab,cd,ce,de (4).
  // Correct: ab, de (2).
  PrfScores s = PairwiseF(truth, predicted);
  EXPECT_NEAR(s.precision, 0.5, 1e-12);
  EXPECT_NEAR(s.recall, 0.5, 1e-12);
  EXPECT_NEAR(s.f1, 0.5, 1e-12);
}

TEST(PairCountsTest, MicroAverageAccumulates) {
  Labels t1 = {0, 0}, p1 = {5, 5};
  Labels t2 = {0, 0}, p2 = {5, 6};
  PairCounts sum = CountPairs(t1, p1);
  sum += CountPairs(t2, p2);
  EXPECT_EQ(sum.true_positive, 1u);
  EXPECT_EQ(sum.false_negative, 1u);
  PrfScores s = sum.ToScores();
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
}

// -------------------------------- B-cubed ----------------------------------

TEST(BCubedTest, PerfectClustering) {
  Labels truth = {0, 0, 1, 2, 2, 2};
  PrfScores s = BCubed(truth, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
}

TEST(BCubedTest, HandComputedExample) {
  // truth: {a,b} {c}; predicted: {a,b,c}.
  Labels truth = {0, 0, 1};
  Labels predicted = {9, 9, 9};
  // precision: a: 2/3, b: 2/3, c: 1/3 -> 5/9. recall: 1, 1, 1 -> 1.
  PrfScores s = BCubed(truth, predicted);
  EXPECT_NEAR(s.precision, 5.0 / 9.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
}

TEST(BCubedTest, SingletonsGivePerfectPrecision) {
  Labels truth = {0, 0, 0};
  Labels predicted = {1, 2, 3};
  PrfScores s = BCubed(truth, predicted);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_NEAR(s.recall, 1.0 / 3.0, 1e-12);
}

// ---------------------------------- NMI ------------------------------------

TEST(NmiTest, PerfectAgreementIsOne) {
  Labels truth = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(NormalizedMutualInformation(truth, truth), 1.0, 1e-12);
  // Relabeling does not matter.
  Labels relabeled = {7, 7, 3, 3, 9, 9};
  EXPECT_NEAR(NormalizedMutualInformation(truth, relabeled), 1.0, 1e-12);
}

TEST(NmiTest, IndependentClusteringNearZero) {
  // Predicted labels alternate irrespective of truth blocks.
  Labels truth = {0, 0, 0, 0, 1, 1, 1, 1};
  Labels predicted = {0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_NEAR(NormalizedMutualInformation(truth, predicted), 0.0, 1e-9);
}

TEST(NmiTest, DegenerateSingleCluster) {
  Labels truth = {0, 0, 0};
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(truth, truth), 1.0);
}

TEST(NmiTest, BoundedInUnitInterval) {
  Pcg32 rng(99);
  for (int round = 0; round < 20; ++round) {
    Labels truth, predicted;
    for (int i = 0; i < 50; ++i) {
      truth.push_back(rng.NextBounded(5));
      predicted.push_back(rng.NextBounded(7));
    }
    double nmi = NormalizedMutualInformation(truth, predicted);
    EXPECT_GE(nmi, -1e-9);
    EXPECT_LE(nmi, 1.0 + 1e-9);
  }
}

// ---------------------------------- ARI ------------------------------------

TEST(AriTest, PerfectAgreementIsOne) {
  Labels truth = {0, 0, 1, 1, 2};
  EXPECT_NEAR(AdjustedRandIndex(truth, truth), 1.0, 1e-12);
}

TEST(AriTest, RandomClusteringNearZero) {
  Pcg32 rng(7);
  double total = 0;
  const int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    Labels truth, predicted;
    for (int i = 0; i < 60; ++i) {
      truth.push_back(rng.NextBounded(4));
      predicted.push_back(rng.NextBounded(4));
    }
    total += AdjustedRandIndex(truth, predicted);
  }
  EXPECT_NEAR(total / kRounds, 0.0, 0.05);
}

TEST(AriTest, KnownSklearnExample) {
  // sklearn doc example: ARI([0,0,1,1],[0,0,1,2]) ~= 0.57.
  Labels truth = {0, 0, 1, 1};
  Labels predicted = {0, 0, 1, 2};
  EXPECT_NEAR(AdjustedRandIndex(truth, predicted), 0.5714285714, 1e-9);
}

// -------------------------------- V-measure --------------------------------

TEST(VMeasureTest, PerfectAgreement) {
  Labels truth = {0, 0, 1, 1};
  VMeasureScores v = VMeasure(truth, truth);
  EXPECT_NEAR(v.homogeneity, 1.0, 1e-12);
  EXPECT_NEAR(v.completeness, 1.0, 1e-12);
  EXPECT_NEAR(v.v_measure, 1.0, 1e-12);
}

TEST(VMeasureTest, OverSplittingHurtsCompletenessOnly) {
  Labels truth = {0, 0, 0, 0};
  Labels predicted = {0, 1, 2, 3};
  VMeasureScores v = VMeasure(truth, predicted);
  EXPECT_NEAR(v.homogeneity, 1.0, 1e-12);
  EXPECT_LT(v.completeness, 0.5);
}

TEST(VMeasureTest, OverMergingHurtsHomogeneityOnly) {
  Labels truth = {0, 1, 2, 3};
  Labels predicted = {0, 0, 0, 0};
  VMeasureScores v = VMeasure(truth, predicted);
  EXPECT_LT(v.homogeneity, 0.5);
  EXPECT_NEAR(v.completeness, 1.0, 1e-12);
}

// Property: all metrics are invariant under label permutation.
class MetricPermutationInvariance
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricPermutationInvariance, RelabelingDoesNotChangeScores) {
  Pcg32 rng(GetParam());
  Labels truth, predicted;
  for (int i = 0; i < 80; ++i) {
    truth.push_back(rng.NextBounded(6));
    predicted.push_back(rng.NextBounded(6));
  }
  // Permute predicted labels through an arbitrary injective map.
  Labels remapped;
  for (int64_t p : predicted) remapped.push_back(1000 - 13 * p);

  PrfScores a = PairwiseF(truth, predicted);
  PrfScores b = PairwiseF(truth, remapped);
  EXPECT_DOUBLE_EQ(a.f1, b.f1);
  EXPECT_DOUBLE_EQ(BCubed(truth, predicted).f1, BCubed(truth, remapped).f1);
  EXPECT_NEAR(NormalizedMutualInformation(truth, predicted),
              NormalizedMutualInformation(truth, remapped), 1e-12);
  EXPECT_NEAR(AdjustedRandIndex(truth, predicted),
              AdjustedRandIndex(truth, remapped), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPermutationInvariance,
                         ::testing::Values(1u, 2u, 3u, 4u));

// ------------------------------ Experiments --------------------------------

TEST(ExperimentTest, RunExperimentProducesSaneRow) {
  ExperimentConfig config;
  config.label = "smoke";
  config.corpus.seed = 3;
  config.corpus.num_sources = 4;
  config.corpus.num_stories = 10;
  config.corpus.target_num_snippets = 600;
  ExperimentRow row = RunExperiment(config);
  EXPECT_EQ(row.label, "smoke");
  EXPECT_GT(row.num_events, 300u);
  EXPECT_GT(row.ingest_time_ms, 0.0);
  EXPECT_GT(row.comparisons, 0u);
  // Small corpora fragment stories within a source (few snippets per story
  // per source inside one window), so the SI bar is modest; alignment
  // recovers the cross-source structure and must score clearly higher.
  EXPECT_GT(row.si_pairwise.f1, 0.4);
  EXPECT_GT(row.sa_pairwise.f1, 0.6);
  EXPECT_GT(row.sa_pairwise.f1, row.si_pairwise.f1);
  EXPECT_GT(row.stories_per_source_total, 0u);
  EXPECT_GT(row.integrated_stories, 0u);
  EXPECT_EQ(row.truth_stories, 10u);
  EXPECT_LE(row.sa_nmi, 1.0);
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  ExperimentConfig config;
  config.corpus.seed = 4;
  config.corpus.num_sources = 3;
  config.corpus.num_stories = 6;
  config.corpus.target_num_snippets = 200;
  ExperimentRow a = RunExperiment(config);
  ExperimentRow b = RunExperiment(config);
  EXPECT_EQ(a.num_events, b.num_events);
  EXPECT_DOUBLE_EQ(a.si_pairwise.f1, b.si_pairwise.f1);
  EXPECT_DOUBLE_EQ(a.sa_pairwise.f1, b.sa_pairwise.f1);
  EXPECT_EQ(a.stories_per_source_total, b.stories_per_source_total);
}

TEST(ExperimentTest, FormatRowsContainsLabels) {
  ExperimentRow row;
  row.label = "temporal w=7d";
  row.num_events = 123;
  std::string table = FormatRows({row});
  EXPECT_NE(table.find("temporal w=7d"), std::string::npos);
  EXPECT_NE(table.find("123"), std::string::npos);
}

}  // namespace
}  // namespace storypivot::eval
