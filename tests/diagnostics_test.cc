#include <gtest/gtest.h>

#include "eval/diagnostics.h"
#include "datagen/corpus.h"
#include "util/logging.h"

namespace storypivot::eval {
namespace {

Snippet MakeSnippet(SourceId source, Timestamp ts, int64_t truth,
                    std::vector<std::pair<text::TermId, double>> entities) {
  Snippet s;
  s.source = source;
  s.timestamp = ts;
  s.truth_story = truth;
  // Keywords follow the entity id space so distinct fixtures stay
  // distinct in both similarity components.
  std::vector<std::pair<text::TermId, double>> keywords = entities;
  s.entities = text::TermVector::FromEntries(std::move(entities));
  s.keywords = text::TermVector::FromEntries(std::move(keywords));
  return s;
}

TEST(DiagnosticsTest, PerfectDetectionIsCleanReport) {
  StoryPivotEngine engine;
  SourceId src = engine.RegisterSource("s");
  // Two well-separated stories.
  for (int d = 0; d < 3; ++d) {
    SP_CHECK_OK(engine
        .AddSnippet(MakeSnippet(src, d * kSecondsPerDay, 0,
                                {{1, 1.0}, {2, 1.0}})));
    SP_CHECK_OK(engine
        .AddSnippet(MakeSnippet(src, d * kSecondsPerDay, 1,
                                {{8, 1.0}, {9, 1.0}})));
  }
  engine.Align();
  DiagnosticReport report = DiagnoseAlignment(engine);
  ASSERT_EQ(report.stories.size(), 2u);
  for (const StoryDiagnostic& d : report.stories) {
    EXPECT_EQ(d.num_clusters, 1u);
    EXPECT_DOUBLE_EQ(d.max_cluster_share, 1.0);
    EXPECT_DOUBLE_EQ(d.contamination, 0.0);
    EXPECT_EQ(d.dominant_confusion, -1);
  }
  EXPECT_EQ(report.mixed_clusters, 0u);
  EXPECT_EQ(report.pure_clusters, 2u);
  EXPECT_EQ(report.NumFragmented(), 0u);
  EXPECT_EQ(report.NumContaminated(), 0u);
}

TEST(DiagnosticsTest, DetectsFragmentation) {
  StoryPivotEngine engine;
  SourceId src = engine.RegisterSource("s");
  // One truth story whose two halves are months apart with disjoint
  // content -> detection must split it.
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(src, 0, 0, {{1, 1.0}})));
  SP_CHECK_OK(engine
      .AddSnippet(MakeSnippet(src, 90 * kSecondsPerDay, 0, {{5, 1.0}})));
  engine.Align();
  DiagnosticReport report = DiagnoseAlignment(engine);
  ASSERT_EQ(report.stories.size(), 1u);
  EXPECT_EQ(report.stories[0].num_clusters, 2u);
  EXPECT_DOUBLE_EQ(report.stories[0].max_cluster_share, 0.5);
  EXPECT_EQ(report.NumFragmented(), 1u);
}

TEST(DiagnosticsTest, DetectsContamination) {
  StoryPivotEngine engine;
  SourceId src = engine.RegisterSource("s");
  // Two truth stories with identical content -> detection merges them.
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(src, 0, 0, {{1, 1.0}, {2, 1.0}})));
  SP_CHECK_OK(engine
      .AddSnippet(
          MakeSnippet(src, kSecondsPerHour, 1, {{1, 1.0}, {2, 1.0}})));
  engine.Align();
  DiagnosticReport report = DiagnoseAlignment(engine);
  ASSERT_EQ(report.stories.size(), 2u);
  for (const StoryDiagnostic& d : report.stories) {
    EXPECT_DOUBLE_EQ(d.contamination, 0.5);
    EXPECT_EQ(d.dominant_confusion, d.truth_story == 0 ? 1 : 0);
  }
  EXPECT_EQ(report.mixed_clusters, 1u);
  EXPECT_EQ(report.NumContaminated(), 2u);
}

TEST(DiagnosticsTest, IgnoresUnlabeledSnippets) {
  StoryPivotEngine engine;
  SourceId src = engine.RegisterSource("s");
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(src, 0, -1, {{1, 1.0}})));
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(src, 0, 3, {{9, 1.0}})));
  engine.Align();
  DiagnosticReport report = DiagnoseAlignment(engine);
  ASSERT_EQ(report.stories.size(), 1u);
  EXPECT_EQ(report.stories[0].truth_story, 3);
}

TEST(DiagnosticsTest, ReportRendersWorstFirst) {
  datagen::CorpusConfig config;
  config.seed = 17;
  config.num_sources = 4;
  config.num_stories = 12;
  config.target_num_snippets = 800;
  datagen::Corpus corpus = datagen::CorpusGenerator(config).Generate();
  StoryPivotEngine engine;
  SP_CHECK(engine
               .ImportVocabularies(*corpus.entity_vocabulary,
                                   *corpus.keyword_vocabulary)
               .ok());
  for (const SourceInfo& s : corpus.sources) engine.RegisterSource(s.name);
  for (const Snippet& snippet : corpus.snippets) {
    Snippet copy = snippet;
    copy.id = kInvalidSnippetId;
    SP_CHECK_OK(engine.AddSnippet(std::move(copy)));
  }
  engine.Align();
  DiagnosticReport report = DiagnoseAlignment(engine);
  EXPECT_EQ(report.stories.size(), 12u);
  std::string table = report.ToString();
  EXPECT_NE(table.find("truth"), std::string::npos);
  EXPECT_NE(table.find("contamination"), std::string::npos);
  EXPECT_NE(table.find("clusters:"), std::string::npos);
}

}  // namespace
}  // namespace storypivot::eval
