// Chaos harness (DESIGN.md §12): drives the durability stack through
// seeded failpoint schedules and asserts the one property that matters —
// after any injected fault sequence, a crash and a recovery, the engine
// state equals a fault-free engine fed exactly the ACKNOWLEDGED prefix
// of the operation stream. Faults may make operations fail; they may
// never make an acknowledged operation vanish or an unacknowledged one
// appear.
//
// Everything here is deterministic: fault schedules derive from a seed,
// probability failpoints draw from per-site seeded RNGs, and retry
// backoff uses an injected no-op sleeper, so a failing seed replays
// identically under a debugger.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/snapshot.h"
#include "datagen/corpus.h"
#include "persist/durable_engine.h"
#include "persist/wal.h"
#include "search/search_engine.h"
#include "util/failpoint.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/retry.h"

#ifndef STORYPIVOT_FAILPOINTS

// The whole harness depends on injection sites being compiled in.
TEST(ChaosTest, RequiresFailpointBuild) {
  GTEST_SKIP() << "built without STORYPIVOT_FAILPOINTS; chaos tests "
                  "need injection sites compiled in";
}

#else  // STORYPIVOT_FAILPOINTS

namespace storypivot {
namespace {

using failpoint::Probability;
using failpoint::Registry;
using failpoint::Trigger;
using persist::DurabilityOptions;
using persist::DurableEngine;
using persist::FsyncPolicy;

::testing::AssertionResult IsOk(const Status& status) {
  if (status.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << status.ToString();
}
template <typename T>
::testing::AssertionResult IsOk(const Result<T>& result) {
  return IsOk(result.status());
}

#define ASSERT_OK(expr) ASSERT_TRUE(IsOk((expr)))

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/sp_chaos_" + name;
  if (FileExists(dir)) {
    Result<std::vector<std::string>> names = ListDirectory(dir);
    SP_CHECK_OK(names.status());
    for (const std::string& entry : names.value()) {
      SP_CHECK_OK(RemoveFile(dir + "/" + entry));
    }
  }
  SP_CHECK_OK(CreateDirectories(dir));
  return dir;
}

// --- Operation plan --------------------------------------------------------
//
// One fixed mutation stream, replayable against both a DurableEngine
// (under faults) and a plain StoryPivotEngine (the fault-free reference
// fed the acknowledged prefix).

enum class OpKind {
  kImport,
  kRegisterSource,
  kAddSnippet,
  kAddSnippets,
  kRemoveSnippet,
  kRefine,
  kAlign,
};

struct PlanOp {
  OpKind kind = OpKind::kAddSnippet;
  std::string text;
  uint64_t id64 = 0;
  Snippet snippet;
  std::vector<Snippet> batch;
};

struct Plan {
  datagen::Corpus corpus;
  std::vector<PlanOp> ops;
};

Plan MakePlan(size_t total_ops) {
  Plan plan;
  datagen::CorpusConfig config;
  config.seed = 77;
  config.num_sources = 3;
  config.num_stories = 6;
  config.target_num_snippets = static_cast<int>(total_ops * 3 + 100);
  plan.corpus = datagen::CorpusGenerator(config).Generate();

  plan.ops.push_back(PlanOp{OpKind::kImport, "", 0, {}, {}});
  for (const SourceInfo& source : plan.corpus.sources) {
    plan.ops.push_back(PlanOp{OpKind::kRegisterSource, source.name, 0,
                              {}, {}});
  }
  size_t next = 0;
  uint64_t added = 0;
  std::vector<uint64_t> removable;
  auto take = [&]() {
    SP_CHECK(next < plan.corpus.snippets.size());
    Snippet snippet = plan.corpus.snippets[next++];
    snippet.id = kInvalidSnippetId;
    return snippet;
  };
  while (plan.ops.size() < total_ops) {
    const size_t i = plan.ops.size();
    PlanOp op;
    if (i % 37 == 0) {
      op.kind = OpKind::kAlign;
    } else if (i % 29 == 0) {
      op.kind = OpKind::kRefine;
    } else if (i % 17 == 0 && !removable.empty()) {
      op.kind = OpKind::kRemoveSnippet;
      op.id64 = removable.back();
      removable.pop_back();
    } else if (i % 11 == 0) {
      op.kind = OpKind::kAddSnippets;
      for (int j = 0; j < 3; ++j) op.batch.push_back(take());
      added += 3;
    } else {
      op.kind = OpKind::kAddSnippet;
      op.snippet = take();
      if (added < 20) removable.push_back(added);
      ++added;
    }
    plan.ops.push_back(std::move(op));
  }
  return plan;
}

Status Apply(const Plan& plan, const PlanOp& op, DurableEngine* engine) {
  switch (op.kind) {
    case OpKind::kImport:
      return engine->ImportVocabularies(*plan.corpus.entity_vocabulary,
                                        *plan.corpus.keyword_vocabulary);
    case OpKind::kRegisterSource:
      return engine->RegisterSource(op.text).status();
    case OpKind::kAddSnippet:
      return engine->AddSnippet(op.snippet).status();
    case OpKind::kAddSnippets:
      return engine->AddSnippets(op.batch).status();
    case OpKind::kRemoveSnippet:
      return engine->RemoveSnippet(op.id64);
    case OpKind::kRefine:
      return engine->Refine().status();
    case OpKind::kAlign:
      return engine->Align();
  }
  return Status::Internal("unhandled op");
}

Status Apply(const Plan& plan, const PlanOp& op, StoryPivotEngine* engine) {
  switch (op.kind) {
    case OpKind::kImport:
      return engine->ImportVocabularies(*plan.corpus.entity_vocabulary,
                                        *plan.corpus.keyword_vocabulary);
    case OpKind::kRegisterSource:
      engine->RegisterSource(op.text);
      return Status::OK();
    case OpKind::kAddSnippet:
      return engine->AddSnippet(op.snippet).status();
    case OpKind::kAddSnippets:
      return engine->AddSnippets(op.batch).status();
    case OpKind::kRemoveSnippet:
      return engine->RemoveSnippet(op.id64);
    case OpKind::kRefine:
      engine->Refine();
      return Status::OK();
    case OpKind::kAlign:
      engine->Align();
      return Status::OK();
  }
  return Status::Internal("unhandled op");
}

/// Fingerprint of a fresh fault-free engine fed ops [0, acked).
uint64_t ReferenceFingerprint(const Plan& plan, size_t acked) {
  StoryPivotEngine reference;
  for (size_t i = 0; i < acked; ++i) {
    SP_CHECK_OK(Apply(plan, plan.ops[i], &reference));
  }
  return EngineStateFingerprint(reference);
}

DurabilityOptions ChaosOptions() {
  DurabilityOptions options;
  // Every acked record is durable, so the acked prefix IS the recovery
  // contract (no fsync-policy slack to reason about).
  options.wal.fsync = FsyncPolicy::kEveryRecord;
  // Small segments force rotations mid-run so rotation faults get hit.
  options.wal.segment_bytes = 16 << 10;
  // Exercise the best-effort auto-checkpoint path under faults too.
  options.checkpoint_every_ops = 25;
  // Backoff must not cost wall-clock time across thousands of retries.
  options.wal.retry_sleep = [](uint64_t) {};
  return options;
}

/// The sites a fault schedule may arm. Excludes the withdraw/repair
/// sites (fs.append.rewind, fs.truncate): those model the restore path
/// ITSELF failing, which voids the acked-prefix guarantee by design —
/// they get targeted tests instead of schedule coverage.
const char* const kScheduleSites[] = {
    "wal.append",      "fs.append.write", "fs.append.partial",
    "fs.append.sync",  "wal.rotate",      "fs.write.write",
    "fs.write.fsync",  "checkpoint.write",
};

/// Deterministic per-seed schedule: each site gets an independent fire
/// probability in [0, 0.12] and a transient-vs-permanent coin flip
/// (mostly transient, so runs make progress through the retry layer).
void ArmSchedule(uint64_t seed) {
  uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (const char* site : kScheduleSites) {
    const double p =
        0.12 * (static_cast<double>(next() % 1000) / 1000.0);
    const bool transient = next() % 10 < 8;
    Registry::Instance().Arm(site, Probability(p, seed, transient));
  }
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::Instance().DisarmAll(); }
  void TearDown() override { Registry::Instance().DisarmAll(); }
};

// --- The core chaos property ----------------------------------------------

TEST_F(ChaosTest, RecoveryMatchesAckedPrefixAcrossSeeds) {
  const Plan plan = MakePlan(120);
  const std::string dir = FreshDir("seeds");

  int degraded_runs = 0;
  int clean_runs = 0;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Result<std::vector<std::string>> stale = ListDirectory(dir);
    ASSERT_OK(stale.status());
    for (const std::string& entry : stale.value()) {
      ASSERT_OK(RemoveFile(dir + "/" + entry));
    }

    ArmSchedule(seed);
    size_t acked = 0;
    {
      Result<std::unique_ptr<DurableEngine>> opened =
          DurableEngine::Open(dir, ChaosOptions());
      // Opening an empty dir writes nothing fallible, but a schedule
      // could in principle hit the WAL segment creation; tolerate it.
      if (!opened.ok()) {
        Registry::Instance().DisarmAll();
        continue;
      }
      DurableEngine& engine = *opened.value();
      for (const PlanOp& op : plan.ops) {
        Status applied = Apply(plan, op, &engine);
        if (applied.ok()) {
          ++acked;
          continue;
        }
        // First failure ends the run. A degraded engine must honour
        // the read-only contract on the spot: mutations rejected with
        // kDegraded, reads served from the state that is ahead of the
        // log by EXACTLY the unlogged mutation (apply-then-log).
        if (engine.degraded()) {
          EXPECT_FALSE(engine.degraded_cause().ok());
          Status rejected = engine.Align();
          EXPECT_EQ(rejected.code(), StatusCode::kDegraded)
              << rejected.ToString();
          EXPECT_EQ(EngineStateFingerprint(engine.engine()),
                    ReferenceFingerprint(plan, acked + 1));
          ++degraded_runs;
        }
        break;
      }
      if (acked == plan.ops.size()) ++clean_runs;
      // CRASH: the engine is destroyed without Close(). (With
      // fsync=kEveryRecord the destructor's best-effort close cannot
      // add or lose acked records — the withdraw contract keeps the
      // file equal to the acked stream at all times.)
    }
    Registry::Instance().DisarmAll();

    Result<std::unique_ptr<DurableEngine>> recovered =
        DurableEngine::Open(dir, ChaosOptions());
    ASSERT_OK(recovered.status());
    EXPECT_EQ(recovered.value()->next_lsn(), acked);
    const uint64_t got =
        EngineStateFingerprint(recovered.value()->engine());
    EXPECT_EQ(got, ReferenceFingerprint(plan, acked));
    ASSERT_OK(recovered.value()->Close());
  }
  // The schedule space must actually cover both outcomes, or the suite
  // is vacuous.
  EXPECT_GT(degraded_runs, 0);
  EXPECT_GT(clean_runs, 0);
}

// --- Degraded-mode contract ------------------------------------------------

TEST_F(ChaosTest, PermanentAppendFailureDegradesAndReopenRecovers) {
  const Plan plan = MakePlan(40);
  const std::string dir = FreshDir("degrade");
  Result<std::unique_ptr<DurableEngine>> opened =
      DurableEngine::Open(dir, ChaosOptions());
  ASSERT_OK(opened.status());
  DurableEngine& engine = *opened.value();

  // Let 10 ops through, then a permanent fault on the 11th append.
  Registry::Instance().Arm(
      "wal.append", failpoint::OneShot(11, /*transient=*/false));
  size_t acked = 0;
  Status failure;
  for (const PlanOp& op : plan.ops) {
    failure = Apply(plan, op, &engine);
    if (!failure.ok()) break;
    ++acked;
  }
  ASSERT_EQ(acked, 10u);
  EXPECT_EQ(failure.code(), StatusCode::kDegraded) << failure.ToString();
  ASSERT_TRUE(engine.degraded());
  EXPECT_TRUE(failpoint::IsInjected(engine.degraded_cause()));

  // Read-only: queries live, every mutation kind rejected with kDegraded.
  EXPECT_GT(engine.engine().store().size(), 0u);
  EXPECT_EQ(engine.AddSnippet(plan.ops[10].snippet).status().code(),
            StatusCode::kDegraded);
  EXPECT_EQ(engine.Refine().status().code(), StatusCode::kDegraded);
  EXPECT_EQ(engine.Checkpoint().code(), StatusCode::kDegraded);

  // Reopen rebuilds from disk: the acked prefix, nothing more.
  ASSERT_OK(engine.Reopen());
  EXPECT_FALSE(engine.degraded());
  EXPECT_TRUE(engine.degraded_cause().ok());
  EXPECT_EQ(engine.next_lsn(), acked);
  EXPECT_EQ(EngineStateFingerprint(engine.engine()),
            ReferenceFingerprint(plan, acked));

  // And the engine takes mutations again.
  for (size_t i = acked; i < plan.ops.size(); ++i) {
    ASSERT_OK(Apply(plan, plan.ops[i], &engine));
  }
  EXPECT_EQ(EngineStateFingerprint(engine.engine()),
            ReferenceFingerprint(plan, plan.ops.size()));
  ASSERT_OK(engine.Close());
}

// Reopen() replaces the engine OBJECT wholesale. Before the fix it
// dropped the registered IngestObserver on the floor: an attached
// SearchEngine kept serving from its pre-recovery index (and a dangling
// engine pointer) — silently stale search results after every recovery.
// Now Recover() carries the observer over to the rebuilt engine and
// fires OnEngineReplaced, which reseats the pointer and rebuilds the
// index. The check is the search subsystem's own equivalence contract:
// the indexed path must match the index-free scan over the recovered
// engine, before AND after post-recovery ingest.
TEST_F(ChaosTest, ReopenReattachesSearchObserverAndRebuildsIndex) {
  const Plan plan = MakePlan(40);
  const std::string dir = FreshDir("reopen_search");
  Result<std::unique_ptr<DurableEngine>> opened =
      DurableEngine::Open(dir, ChaosOptions());
  ASSERT_OK(opened.status());
  DurableEngine& engine = *opened.value();
  search::SearchEngine searcher(&engine.engine());

  Registry::Instance().Arm("wal.append",
                           failpoint::OneShot(30, /*transient=*/false));
  size_t acked = 0;
  for (const PlanOp& op : plan.ops) {
    if (!Apply(plan, op, &engine).ok()) break;
    ++acked;
  }
  ASSERT_TRUE(engine.degraded());

  ASSERT_OK(engine.Reopen());

  // Query terms drawn from the recovered content itself, so the scan
  // side is non-empty no matter which generated ids survived the
  // acked prefix.
  search::ParsedQuery query;
  std::set<std::pair<search::Field, text::TermId>> used;
  engine.engine().store().ForEach([&](const Snippet& snippet) {
    if (query.terms.size() >= 4) return;
    if (!snippet.entities.empty() &&
        used.insert({search::Field::kEntity,
                     snippet.entities.entries().front().first})
            .second) {
      query.terms.push_back({search::Field::kEntity,
                             snippet.entities.entries().front().first,
                             {},
                             "e"});
    }
    if (query.terms.size() < 4 && !snippet.keywords.empty() &&
        used.insert({search::Field::kKeyword,
                     snippet.keywords.entries().front().first})
            .second) {
      query.terms.push_back({search::Field::kKeyword,
                             snippet.keywords.entries().front().first,
                             {},
                             "k"});
    }
  });
  ASSERT_FALSE(query.terms.empty());
  search::SearchOptions options;
  options.k = 25;

  // The recovery discarded the unlogged mutation the index had already
  // observed, so a stale index would disagree with the scan here.
  std::vector<search::StoryHit> indexed = searcher.Search(query, options);
  std::vector<search::StoryHit> scanned =
      searcher.SearchScan(query, options);
  EXPECT_FALSE(scanned.empty());
  EXPECT_EQ(indexed, scanned);

  // And the observer must still be ATTACHED: post-recovery ingest has
  // to keep flowing into the index.
  for (size_t i = acked; i < plan.ops.size(); ++i) {
    ASSERT_OK(Apply(plan, plan.ops[i], &engine));
  }
  EXPECT_EQ(searcher.Search(query, options),
            searcher.SearchScan(query, options));
  ASSERT_OK(engine.Close());
}

TEST_F(ChaosTest, ReopenFailureKeepsEngineDegradedAndReadable) {
  const Plan plan = MakePlan(30);
  const std::string dir = FreshDir("reopen_fail");
  Result<std::unique_ptr<DurableEngine>> opened =
      DurableEngine::Open(dir, ChaosOptions());
  ASSERT_OK(opened.status());
  DurableEngine& engine = *opened.value();

  Registry::Instance().Arm("wal.append",
                           failpoint::OneShot(8, /*transient=*/false));
  size_t acked = 0;
  for (const PlanOp& op : plan.ops) {
    if (!Apply(plan, op, &engine).ok()) break;
    ++acked;
  }
  ASSERT_TRUE(engine.degraded());
  const size_t live_size = engine.engine().store().size();

  // Recovery itself fails: the engine must stay degraded on its OLD
  // readable state, and a later Reopen must still be able to succeed.
  Registry::Instance().Arm("fs.read.open",
                           failpoint::OneShot(1, /*transient=*/false));
  EXPECT_FALSE(engine.Reopen().ok());
  EXPECT_TRUE(engine.degraded());
  EXPECT_EQ(engine.engine().store().size(), live_size);

  Registry::Instance().DisarmAll();
  ASSERT_OK(engine.Reopen());
  EXPECT_FALSE(engine.degraded());
  EXPECT_EQ(engine.next_lsn(), acked);
  EXPECT_EQ(EngineStateFingerprint(engine.engine()),
            ReferenceFingerprint(plan, acked));
  ASSERT_OK(engine.Close());
}

// --- Transient faults are invisible ---------------------------------------

TEST_F(ChaosTest, TransientFaultsRetryToSuccessWithIdenticalState) {
  const Plan plan = MakePlan(60);
  const std::string dir = FreshDir("transient");
  DurabilityOptions options = ChaosOptions();
  // p=0.25 per evaluation, all transient: with 4 attempts per op the
  // chance of exhausting any retry in this short run is ~(0.25)^4 per
  // evaluation — the fixed seeds below are known-good, and determinism
  // keeps them that way.
  Registry::Instance().Arm(
      "fs.append.write", Probability(0.25, /*seed=*/3, /*transient=*/true));
  Registry::Instance().Arm(
      "fs.append.sync", Probability(0.25, /*seed=*/4, /*transient=*/true));

  Result<std::unique_ptr<DurableEngine>> opened =
      DurableEngine::Open(dir, options);
  ASSERT_OK(opened.status());
  DurableEngine& engine = *opened.value();
  for (const PlanOp& op : plan.ops) {
    ASSERT_OK(Apply(plan, op, &engine));
  }
  EXPECT_GT(Registry::Instance().Stats("fs.append.write").fires, 0u);
  EXPECT_EQ(EngineStateFingerprint(engine.engine()),
            ReferenceFingerprint(plan, plan.ops.size()));
  ASSERT_OK(engine.Close());
  Registry::Instance().DisarmAll();

  // The WAL on disk is indistinguishable from a fault-free run's.
  Result<std::unique_ptr<DurableEngine>> recovered =
      DurableEngine::Open(dir, ChaosOptions());
  ASSERT_OK(recovered.status());
  EXPECT_EQ(recovered.value()->next_lsn(), plan.ops.size());
  EXPECT_EQ(EngineStateFingerprint(recovered.value()->engine()),
            ReferenceFingerprint(plan, plan.ops.size()));
  ASSERT_OK(recovered.value()->Close());
}

// --- Faults during recovery itself ----------------------------------------

TEST_F(ChaosTest, RecoverySiteSweepFailsCleanOrRecoversCorrect) {
  const Plan plan = MakePlan(50);
  const std::string dir = FreshDir("recovery_sweep");
  // Lay down a real run (with a checkpoint + WAL tail to recover).
  {
    Result<std::unique_ptr<DurableEngine>> opened =
        DurableEngine::Open(dir, ChaosOptions());
    ASSERT_OK(opened.status());
    for (const PlanOp& op : plan.ops) {
      ASSERT_OK(Apply(plan, op, opened.value().get()));
    }
    // Crash without Close.
  }
  const uint64_t want = ReferenceFingerprint(plan, plan.ops.size());

  const char* const kRecoverySites[] = {
      "fs.list",     "fs.read.open",   "fs.stat",
      "fs.append.open", "fs.dir.sync", "fs.truncate",
  };
  for (const char* site : kRecoverySites) {
    SCOPED_TRACE(site);
    for (uint64_t shot = 1; shot <= 3; ++shot) {
      Registry::Instance().Arm(site, failpoint::OneShot(shot));
      Result<std::unique_ptr<DurableEngine>> faulted =
          DurableEngine::Open(dir, ChaosOptions());
      if (faulted.ok()) {
        // The fault hit a tolerated path (e.g. a checkpoint fallback):
        // recovery must still be CORRECT, not just alive.
        EXPECT_EQ(EngineStateFingerprint(faulted.value()->engine()),
                  want);
        ASSERT_OK(faulted.value()->Close());
      }
      Registry::Instance().DisarmAll();
      // After the fault clears, recovery always succeeds bit-identically.
      Result<std::unique_ptr<DurableEngine>> recovered =
          DurableEngine::Open(dir, ChaosOptions());
      ASSERT_OK(recovered.status());
      EXPECT_EQ(recovered.value()->next_lsn(), plan.ops.size());
      EXPECT_EQ(EngineStateFingerprint(recovered.value()->engine()),
                want);
      ASSERT_OK(recovered.value()->Close());
    }
  }
}

// --- Rotation-after-ack semantics -----------------------------------------

TEST_F(ChaosTest, RotateFailureAfterDurableAppendStillAcks) {
  const Plan plan = MakePlan(40);
  const std::string dir = FreshDir("rotate");
  DurabilityOptions options = ChaosOptions();
  options.wal.segment_bytes = 1;  // Rotate after every record.
  options.checkpoint_every_ops = 0;

  Result<std::unique_ptr<DurableEngine>> opened =
      DurableEngine::Open(dir, options);
  ASSERT_OK(opened.status());
  DurableEngine& engine = *opened.value();

  Registry::Instance().Arm("wal.rotate",
                           failpoint::OneShot(5, /*transient=*/false));
  size_t acked = 0;
  for (const PlanOp& op : plan.ops) {
    Status applied = Apply(plan, op, &engine);
    if (!applied.ok()) {
      // The op whose rotation failed was still ACKED (it is durable);
      // only the NEXT op fails, because the log closed itself.
      EXPECT_EQ(applied.code(), StatusCode::kDegraded);
      break;
    }
    ++acked;
  }
  ASSERT_TRUE(engine.degraded());
  EXPECT_GE(acked, 5u);
  Registry::Instance().DisarmAll();

  // Release the degraded engine first: the WAL-directory registry
  // refuses a second live appender on the same directory.
  opened.value().reset();
  Result<std::unique_ptr<DurableEngine>> recovered =
      DurableEngine::Open(dir, options);
  ASSERT_OK(recovered.status());
  EXPECT_EQ(recovered.value()->next_lsn(), acked);
  EXPECT_EQ(EngineStateFingerprint(recovered.value()->engine()),
            ReferenceFingerprint(plan, acked));
  ASSERT_OK(recovered.value()->Close());
}

}  // namespace
}  // namespace storypivot

#endif  // STORYPIVOT_FAILPOINTS
