#include <gtest/gtest.h>

#include <memory>

#include "core/identifier.h"
#include "core/story_set.h"
#include "model/time.h"

namespace storypivot {
namespace {

class IdentifierFixture : public ::testing::Test {
 protected:
  IdentifierFixture() : stories_(0), model_({}, nullptr) {}

  // Stores a snippet and returns a stable pointer.
  const Snippet& Put(Timestamp ts,
                     std::vector<std::pair<text::TermId, double>> entities,
                     std::vector<std::pair<text::TermId, double>> keywords) {
    Snippet s;
    s.source = 0;
    s.timestamp = ts;
    s.entities = text::TermVector::FromEntries(std::move(entities));
    s.keywords = text::TermVector::FromEntries(std::move(keywords));
    SnippetId id = store_.Insert(std::move(s)).value();
    return *store_.Find(id);
  }

  StoryId Identify(StoryIdentifier& identifier, const Snippet& snippet) {
    return identifier.Identify(snippet, &stories_, store_, nullptr,
                               &next_story_id_);
  }

  SnippetStore store_;
  StorySet stories_;
  SimilarityModel model_;
  StoryId next_story_id_ = 0;
};

// ------------------------------- StorySet ----------------------------------

TEST_F(IdentifierFixture, StorySetCreateAddRemove) {
  const Snippet& a = Put(100, {{0, 1.0}}, {{5, 1.0}});
  stories_.CreateStory(7);
  stories_.AddSnippetToStory(a, 7);
  EXPECT_EQ(stories_.StoryOf(a.id), 7u);
  EXPECT_EQ(stories_.num_snippets(), 1u);
  EXPECT_EQ(stories_.snippet_times().size(), 1u);
  ASSERT_NE(stories_.FindStory(7), nullptr);
  EXPECT_EQ(stories_.FindStory(7)->size(), 1u);

  stories_.RemoveSnippet(a, store_);
  EXPECT_EQ(stories_.StoryOf(a.id), kInvalidStoryId);
  EXPECT_EQ(stories_.FindStory(7), nullptr);  // Empty stories are deleted.
  EXPECT_TRUE(stories_.snippet_times().empty());
}

TEST_F(IdentifierFixture, StorySetMerge) {
  const Snippet& a = Put(100, {{0, 1.0}}, {});
  const Snippet& b = Put(200, {{1, 1.0}}, {});
  stories_.CreateStory(1);
  stories_.CreateStory(2);
  stories_.AddSnippetToStory(a, 1);
  stories_.AddSnippetToStory(b, 2);
  StoryId survivor = stories_.MergeStories({1, 2});
  EXPECT_EQ(survivor, 1u);
  EXPECT_EQ(stories_.StoryOf(a.id), 1u);
  EXPECT_EQ(stories_.StoryOf(b.id), 1u);
  EXPECT_EQ(stories_.FindStory(2), nullptr);
  EXPECT_EQ(stories_.FindStory(1)->size(), 2u);
}

TEST_F(IdentifierFixture, StorySetSplit) {
  const Snippet& a = Put(100, {{0, 1.0}}, {});
  const Snippet& b = Put(200, {{1, 1.0}}, {});
  const Snippet& c = Put(300, {{2, 1.0}}, {});
  stories_.CreateStory(1);
  stories_.AddSnippetToStory(a, 1);
  stories_.AddSnippetToStory(b, 1);
  stories_.AddSnippetToStory(c, 1);
  next_story_id_ = 10;
  std::vector<StoryId> parts =
      stories_.SplitStory(1, {{a.id, b.id}, {c.id}}, store_, &next_story_id_);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], 1u);    // First component keeps the id.
  EXPECT_EQ(parts[1], 10u);   // Second gets a fresh one.
  EXPECT_EQ(stories_.StoryOf(c.id), 10u);
  EXPECT_EQ(stories_.FindStory(1)->size(), 2u);
  EXPECT_EQ(stories_.FindStory(10)->size(), 1u);
  EXPECT_EQ(stories_.FindStory(10)->start_time(), 300);
}

TEST_F(IdentifierFixture, StoriesInWindow) {
  const Snippet& a = Put(100, {{0, 1.0}}, {});
  const Snippet& b = Put(500, {{1, 1.0}}, {});
  stories_.CreateStory(1);
  stories_.CreateStory(2);
  stories_.AddSnippetToStory(a, 1);
  stories_.AddSnippetToStory(b, 2);
  EXPECT_EQ(stories_.StoriesInWindow(0, 200), (std::vector<StoryId>{1}));
  EXPECT_EQ(stories_.StoriesInWindow(0, 600), (std::vector<StoryId>{1, 2}));
  EXPECT_TRUE(stories_.StoriesInWindow(201, 499).empty());
}

// ---------------------------- Identification -------------------------------

TEST_F(IdentifierFixture, FirstSnippetOpensStory) {
  TemporalIdentifier identifier(&model_, {});
  const Snippet& a = Put(0, {{0, 1.0}}, {{5, 1.0}});
  StoryId s = Identify(identifier, a);
  EXPECT_EQ(s, 0u);
  EXPECT_EQ(stories_.stories().size(), 1u);
}

TEST_F(IdentifierFixture, SimilarSnippetsJoinSameStory) {
  TemporalIdentifier identifier(&model_, {});
  const Snippet& a = Put(0, {{0, 1.0}, {1, 1.0}}, {{5, 1.0}, {6, 1.0}});
  const Snippet& b =
      Put(kSecondsPerDay, {{0, 1.0}, {1, 1.0}}, {{5, 1.0}, {7, 1.0}});
  StoryId sa = Identify(identifier, a);
  StoryId sb = Identify(identifier, b);
  EXPECT_EQ(sa, sb);
}

TEST_F(IdentifierFixture, DissimilarSnippetsOpenSeparateStories) {
  TemporalIdentifier identifier(&model_, {});
  const Snippet& a = Put(0, {{0, 1.0}}, {{5, 1.0}});
  const Snippet& b = Put(kSecondsPerDay, {{9, 1.0}}, {{8, 1.0}});
  EXPECT_NE(Identify(identifier, a), Identify(identifier, b));
  EXPECT_EQ(stories_.stories().size(), 2u);
}

TEST_F(IdentifierFixture, TemporalModeIgnoresSnippetsOutsideWindow) {
  IdentifierConfig config;
  config.window = 2 * kSecondsPerDay;
  TemporalIdentifier identifier(&model_, config);
  const Snippet& a = Put(0, {{0, 1.0}, {1, 1.0}}, {{5, 1.0}});
  // Identical content, but 30 days later — outside the window.
  const Snippet& b = Put(30 * kSecondsPerDay, {{0, 1.0}, {1, 1.0}},
                         {{5, 1.0}});
  StoryId sa = Identify(identifier, a);
  StoryId sb = Identify(identifier, b);
  EXPECT_NE(sa, sb) << "temporal identification must not see stale snippets";
}

TEST_F(IdentifierFixture, CompleteModeSeesEverything) {
  CompleteIdentifier identifier(&model_, {});
  const Snippet& a = Put(0, {{0, 1.0}, {1, 1.0}}, {{5, 1.0}});
  const Snippet& b = Put(300 * kSecondsPerDay, {{0, 1.0}, {1, 1.0}},
                         {{5, 1.0}});
  StoryId sa = Identify(identifier, a);
  StoryId sb = Identify(identifier, b);
  EXPECT_EQ(sa, sb) << "complete identification compares against all";
}

TEST_F(IdentifierFixture, BridgingSnippetMergesStories) {
  // Two stories with distinct cores; a bridge snippet strongly matching
  // both must merge them (incremental story construction).
  SimilarityConfig sim;
  sim.merge_threshold = 0.40;
  SimilarityModel model(sim, nullptr);
  TemporalIdentifier identifier(&model, {});

  const Snippet& a = Put(0, {{0, 1.0}, {1, 1.0}}, {{5, 1.0}});
  const Snippet& b = Put(kSecondsPerDay, {{2, 1.0}, {3, 1.0}}, {{6, 1.0}});
  StoryId sa = identifier.Identify(a, &stories_, store_, nullptr,
                                   &next_story_id_);
  StoryId sb = identifier.Identify(b, &stories_, store_, nullptr,
                                   &next_story_id_);
  ASSERT_NE(sa, sb);
  // The bridge mentions all four entities and both keywords.
  const Snippet& bridge =
      Put(2 * kSecondsPerDay, {{0, 1.0}, {1, 1.0}, {2, 1.0}, {3, 1.0}},
          {{5, 1.0}, {6, 1.0}});
  StoryId merged = identifier.Identify(bridge, &stories_, store_, nullptr,
                                       &next_story_id_);
  EXPECT_EQ(stories_.stories().size(), 1u);
  EXPECT_EQ(stories_.StoryOf(a.id), merged);
  EXPECT_EQ(stories_.StoryOf(b.id), merged);
}

TEST_F(IdentifierFixture, EntityPruningFindsSameStories) {
  IdentifierConfig pruned;
  pruned.prune_with_entities = true;
  TemporalIdentifier identifier(&model_, pruned);
  const Snippet& a = Put(0, {{0, 1.0}, {1, 1.0}}, {{5, 1.0}});
  const Snippet& b = Put(kSecondsPerDay, {{0, 1.0}, {1, 1.0}}, {{5, 1.0}});
  EXPECT_EQ(Identify(identifier, a), Identify(identifier, b));
}

TEST_F(IdentifierFixture, SketchCandidatesFindSimilarSnippets) {
  IdentifierConfig config;
  config.use_sketch_candidates = true;
  TemporalIdentifier identifier(&model_, config);
  SnippetSketchIndex sketches(64);

  auto ingest = [&](const Snippet& s) {
    StoryId id = identifier.Identify(s, &stories_, store_, &sketches,
                                     &next_story_id_);
    MinHashSignature sig = MinHashSignature::FromContent(
        s.entities, s.keywords, sketches.num_hashes);
    sketches.lsh.Insert(s.id, sig);
    sketches.signatures.emplace(s.id, std::move(sig));
    return id;
  };
  const Snippet& a =
      Put(0, {{0, 1.0}, {1, 1.0}, {2, 1.0}}, {{5, 1.0}, {6, 1.0}});
  const Snippet& b =
      Put(kSecondsPerDay, {{0, 1.0}, {1, 1.0}, {2, 1.0}}, {{5, 1.0}, {6, 1.0}});
  EXPECT_EQ(ingest(a), ingest(b));
}

TEST_F(IdentifierFixture, FactorySelectsMode) {
  // Behavioural check (RTTI is disabled): the complete identifier links
  // identical snippets across any gap, the temporal one does not.
  IdentifierConfig config;
  config.window = kSecondsPerDay;
  auto complete =
      MakeIdentifier(IdentificationMode::kComplete, &model_, config);
  auto temporal =
      MakeIdentifier(IdentificationMode::kTemporal, &model_, config);
  const Snippet& a = Put(0, {{0, 1.0}, {1, 1.0}}, {{5, 1.0}});
  const Snippet& b =
      Put(100 * kSecondsPerDay, {{0, 1.0}, {1, 1.0}}, {{5, 1.0}});

  StoryId ca = complete->Identify(a, &stories_, store_, nullptr,
                                  &next_story_id_);
  StoryId cb = complete->Identify(b, &stories_, store_, nullptr,
                                  &next_story_id_);
  EXPECT_EQ(ca, cb);

  StorySet fresh(0);
  StoryId ta = temporal->Identify(a, &fresh, store_, nullptr,
                                  &next_story_id_);
  StoryId tb = temporal->Identify(b, &fresh, store_, nullptr,
                                  &next_story_id_);
  EXPECT_NE(ta, tb);
}

}  // namespace
}  // namespace storypivot
