#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datagen/corpus.h"
#include "search/postings_index.h"
#include "search/query_pipeline.h"
#include "search/ranker.h"
#include "search/search_engine.h"
#include "util/logging.h"
#include "util/rng.h"

namespace storypivot {
namespace {

using search::Field;
using search::MatchMode;
using search::ParsedQuery;
using search::PostingsIndex;
using search::Posting;
using search::QueryTerm;
using search::SearchEngine;
using search::SearchOptions;
using search::StoryHit;

Snippet MakeSnippet(SnippetId id, SourceId source, Timestamp ts,
                    std::vector<text::TermVector::Entry> entities,
                    std::vector<text::TermVector::Entry> keywords,
                    std::string event_type = {}) {
  Snippet snippet;
  snippet.id = id;
  snippet.source = source;
  snippet.timestamp = ts;
  snippet.entities = text::TermVector::FromEntries(std::move(entities));
  snippet.keywords = text::TermVector::FromEntries(std::move(keywords));
  snippet.event_type = std::move(event_type);
  return snippet;
}

// ----------------------------- PostingsIndex -------------------------------

TEST(PostingsIndexTest, PostsAndUnpostsAllFields) {
  PostingsIndex index;
  index.AddSnippet(MakeSnippet(7, 0, 100, {{1, 2.0}, {4, 1.0}}, {{9, 3.0}},
                               "Accident"));
  index.AddSnippet(MakeSnippet(3, 1, 50, {{1, 1.0}}, {}, "Accident"));

  EXPECT_EQ(index.num_documents(), 2u);
  EXPECT_EQ(index.DocumentFrequency(Field::kEntity, 1), 2u);
  EXPECT_EQ(index.DocumentFrequency(Field::kEntity, 4), 1u);
  EXPECT_EQ(index.DocumentFrequency(Field::kKeyword, 9), 1u);
  EXPECT_EQ(index.EventTypeFrequency("Accident"), 2u);
  EXPECT_EQ(index.EventTypeFrequency("Conflict"), 0u);
  EXPECT_DOUBLE_EQ(index.total_length(), 2.0 + 1.0 + 3.0 + 1.0);

  // Postings are sorted by snippet id even with out-of-order adds.
  const std::vector<Posting>* postings = index.Postings(Field::kEntity, 1);
  ASSERT_NE(postings, nullptr);
  ASSERT_EQ(postings->size(), 2u);
  EXPECT_EQ((*postings)[0].snippet, 3u);
  EXPECT_EQ((*postings)[1].snippet, 7u);
  EXPECT_DOUBLE_EQ((*postings)[1].tf, 2.0);

  index.RemoveSnippet(MakeSnippet(7, 0, 100, {{1, 2.0}, {4, 1.0}},
                                  {{9, 3.0}}, "Accident"));
  EXPECT_EQ(index.num_documents(), 1u);
  EXPECT_EQ(index.DocumentFrequency(Field::kEntity, 1), 1u);
  EXPECT_EQ(index.Postings(Field::kEntity, 4), nullptr);
  EXPECT_EQ(index.Postings(Field::kKeyword, 9), nullptr);
  EXPECT_EQ(index.EventTypeFrequency("Accident"), 1u);

  index.RemoveSnippet(MakeSnippet(3, 1, 50, {{1, 1.0}}, {}, "Accident"));
  EXPECT_EQ(index.num_documents(), 0u);
  EXPECT_EQ(index.num_postings(), 0u);
  EXPECT_DOUBLE_EQ(index.total_length(), 0.0);
  EXPECT_TRUE(index.EventTypes().empty());
}

TEST(PostingsIndexTest, EventTypesEnumerateLexicographically) {
  PostingsIndex index;
  index.AddSnippet(MakeSnippet(1, 0, 10, {}, {{0, 1.0}}, "Protest"));
  index.AddSnippet(MakeSnippet(2, 0, 20, {}, {{0, 1.0}}, "Accident"));
  index.AddSnippet(MakeSnippet(3, 0, 30, {}, {{0, 1.0}}, "Protest"));
  std::vector<std::pair<std::string, size_t>> types = index.EventTypes();
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0].first, "Accident");
  EXPECT_EQ(types[0].second, 1u);
  EXPECT_EQ(types[1].first, "Protest");
  EXPECT_EQ(types[1].second, 2u);
}

// ------------------------------ BM25 ranking -------------------------------

/// Tiny fixed engine: one source, two far-apart stories with known
/// content, so BM25 scores can be checked against hand arithmetic.
class TinyRankFixture : public ::testing::Test {
 protected:
  TinyRankFixture() {
    engine_ = std::make_unique<StoryPivotEngine>();
    SourceId source = engine_->RegisterSource("wire");
    // Two snippets close in time -> one story; a third far away -> its
    // own story (default temporal window is 7 days).
    const Timestamp t0 = MakeTimestamp(2014, 7, 17);
    SP_CHECK_OK(engine_->AddSnippet(MakeSnippet(
        kInvalidSnippetId, source, t0, {{0, 2.0}}, {{0, 1.0}}, "Accident")));
    SP_CHECK_OK(engine_->AddSnippet(MakeSnippet(
        kInvalidSnippetId, source, t0 + kSecondsPerDay, {{0, 1.0}, {1, 1.0}},
        {{0, 1.0}}, "Accident")));
    SP_CHECK_OK(engine_->AddSnippet(MakeSnippet(
        kInvalidSnippetId, source, t0 + 300 * kSecondsPerDay, {{1, 4.0}},
        {{0, 2.0}}, "Protest")));
    searcher_ = std::make_unique<SearchEngine>(engine_.get());
    SP_CHECK(engine_->TotalStories() == 2);
  }

  static ParsedQuery EntityQuery(text::TermId term) {
    ParsedQuery query;
    query.terms.push_back({Field::kEntity, term, {}, "e"});
    return query;
  }

  std::unique_ptr<StoryPivotEngine> engine_;
  std::unique_ptr<SearchEngine> searcher_;
};

TEST_F(TinyRankFixture, ScoresMatchHandComputedBm25) {
  // Entity 0 occurs in both snippets of story A (tf 2+1=3) and nowhere
  // else: df=2 of N=3 snippets; story A has dl = entities (2+1+1) +
  // keywords (1+1) = 6, story B dl = 4+2 = 6, avgdl = 6.
  std::vector<StoryHit> hits = searcher_->Search(EntityQuery(0));
  ASSERT_EQ(hits.size(), 1u);
  const double idf = std::log(1.0 + (3 - 2 + 0.5) / (2 + 0.5));
  const double k1 = 1.2, b = 0.75;
  const double norm = k1 * (1.0 - b + b * (6.0 / 6.0));
  const double expected = idf * (3.0 * (k1 + 1.0)) / (3.0 + norm);
  EXPECT_DOUBLE_EQ(hits[0].score, expected);
  EXPECT_EQ(hits[0].matched_terms, 1u);
}

TEST_F(TinyRankFixture, ConjunctiveRequiresEveryTerm) {
  // Entity 1 is in both stories; keyword 0 too; but entity 0 only in
  // story A. kAll over {entity 0, entity 1} must keep story A only.
  ParsedQuery query;
  query.terms.push_back({Field::kEntity, 0, {}, "e0"});
  query.terms.push_back({Field::kEntity, 1, {}, "e1"});
  SearchOptions options;
  options.mode = MatchMode::kAll;
  std::vector<StoryHit> conjunctive = searcher_->Search(query, options);
  ASSERT_EQ(conjunctive.size(), 1u);
  EXPECT_EQ(conjunctive[0].matched_terms, 2u);

  std::vector<StoryHit> disjunctive = searcher_->Search(query);
  EXPECT_EQ(disjunctive.size(), 2u);

  // A term matching nothing empties a conjunctive query entirely.
  query.terms.push_back({Field::kEntity, 99, {}, "none"});
  EXPECT_TRUE(searcher_->Search(query, options).empty());
  EXPECT_EQ(searcher_->Search(query).size(), 2u);
}

TEST_F(TinyRankFixture, TimeFilterLimitsContributingSnippets) {
  // Restrict to the first story's window: the far-future snippet can no
  // longer contribute, so a query on entity 1 sees only story A's tf=1.
  SearchOptions options;
  options.filter_time = true;
  options.from = MakeTimestamp(2014, 7, 1);
  options.to = MakeTimestamp(2014, 8, 1);
  std::vector<StoryHit> hits = searcher_->Search(EntityQuery(1), options);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], searcher_->SearchScan(EntityQuery(1), options)[0]);

  // An empty window matches nothing.
  options.from = MakeTimestamp(2013, 1, 1);
  options.to = MakeTimestamp(2013, 2, 1);
  EXPECT_TRUE(searcher_->Search(EntityQuery(1), options).empty());
}

TEST_F(TinyRankFixture, TimeWindowBoundsAreInclusiveAtBothEnds) {
  // from == to pinned exactly on a snippet's timestamp must match it
  // (the [from, to] filter is inclusive at both ends), and moving
  // either bound off by one second must drop it.
  const Timestamp t0 = MakeTimestamp(2014, 7, 17);
  SearchOptions options;
  options.filter_time = true;
  options.from = t0;
  options.to = t0;
  ASSERT_TRUE(search::ValidateSearchOptions(options).ok());
  std::vector<StoryHit> exact = searcher_->Search(EntityQuery(0), options);
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_EQ(exact[0], searcher_->SearchScan(EntityQuery(0), options)[0]);

  // Window ending one second before the snippet: empty (both paths).
  options.from = t0 - kSecondsPerDay;
  options.to = t0 - 1;
  EXPECT_TRUE(searcher_->Search(EntityQuery(0), options).empty());
  EXPECT_TRUE(searcher_->SearchScan(EntityQuery(0), options).empty());

  // Window starting one second after it: misses it too (only the
  // second snippet of story A, a day later, is left for entity 0).
  options.from = t0 + 1;
  options.to = t0 + kSecondsPerDay;
  std::vector<StoryHit> after = searcher_->Search(EntityQuery(0), options);
  ASSERT_EQ(after.size(), 1u);
  // tf drops from 3.0 (both snippets) to 1.0 (second snippet only), so
  // the score must differ from the exact-hit window's.
  EXPECT_NE(after[0].score, exact[0].score);
  EXPECT_EQ(after[0], searcher_->SearchScan(EntityQuery(0), options)[0]);
}

TEST(SearchOptionsValidationTest, InvertedWindowIsATypedErrorNotEmpty) {
  SearchOptions options;
  options.filter_time = true;
  options.from = MakeTimestamp(2014, 8, 1);
  options.to = MakeTimestamp(2014, 7, 1);
  Status status = search::ValidateSearchOptions(options);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The message names both bounds so the caller can see the inversion.
  EXPECT_NE(std::string(status.message()).find("inverted"),
            std::string::npos);

  // from == to is a legal one-instant window, not an inversion.
  options.to = options.from;
  EXPECT_TRUE(search::ValidateSearchOptions(options).ok());

  // Without filter_time the bounds are inert and never validated.
  options.filter_time = false;
  options.from = 10;
  options.to = 5;
  EXPECT_TRUE(search::ValidateSearchOptions(options).ok());
}

TEST_F(TinyRankFixture, KBoundsTheResultList) {
  ParsedQuery query;
  query.terms.push_back({Field::kEntity, 1, {}, "e1"});
  SearchOptions options;
  options.k = 1;
  std::vector<StoryHit> top1 = searcher_->Search(query, options);
  ASSERT_EQ(top1.size(), 1u);
  std::vector<StoryHit> top10 = searcher_->Search(query);
  ASSERT_EQ(top10.size(), 2u);
  EXPECT_EQ(top1[0], top10[0]);
  EXPECT_GE(top10[0].score, top10[1].score);
}

// -------------------- Pruned == exhaustive (property) ----------------------

TEST(RankEquivalenceProperty, PrunedMatchesScanAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    datagen::CorpusConfig config;
    config.seed = seed;
    config.target_num_snippets = 200;
    config.num_sources = 4;
    config.num_stories = 15;
    config.num_entities = 50;
    datagen::Corpus corpus = datagen::CorpusGenerator(config).Generate();
    StoryPivotEngine engine;
    SP_CHECK_OK(engine.ImportVocabularies(*corpus.entity_vocabulary,
                                          *corpus.keyword_vocabulary));
    for (const SourceInfo& source : corpus.sources) {
      engine.RegisterSource(source.name);
    }
    for (const Snippet& snippet : corpus.snippets) {
      Snippet copy = snippet;
      copy.id = kInvalidSnippetId;
      SP_CHECK_OK(engine.AddSnippet(std::move(copy)));
    }
    SearchEngine searcher(&engine);

    // Random multi-term queries over the live vocabularies, random k,
    // both modes, and occasional time windows.
    Pcg32 rng(seed * 977 + 13);
    for (int q = 0; q < 15; ++q) {
      ParsedQuery query;
      const size_t num_terms = 1 + rng.NextBounded(4);
      for (size_t t = 0; t < num_terms; ++t) {
        if (rng.NextBounded(3) == 0) {
          query.terms.push_back(
              {Field::kEntity,
               static_cast<text::TermId>(rng.NextBounded(
                   static_cast<uint32_t>(engine.entity_vocabulary()->size()))),
               {},
               "e"});
        } else {
          query.terms.push_back(
              {Field::kKeyword,
               static_cast<text::TermId>(rng.NextBounded(static_cast<uint32_t>(
                   engine.keyword_vocabulary()->size()))),
               {},
               "k"});
        }
      }
      SearchOptions options;
      options.k = 1 + rng.NextBounded(8);
      options.mode =
          rng.NextBounded(2) == 0 ? MatchMode::kAny : MatchMode::kAll;
      if (rng.NextBounded(3) == 0) {
        options.filter_time = true;
        options.from = MakeTimestamp(2014, 6, 1) +
                       static_cast<Timestamp>(rng.NextBounded(120)) *
                           kSecondsPerDay;
        options.to = options.from +
                     static_cast<Timestamp>(1 + rng.NextBounded(60)) *
                         kSecondsPerDay;
      }
      std::vector<StoryHit> indexed = searcher.Search(query, options);
      std::vector<StoryHit> scanned = searcher.SearchScan(query, options);
      ASSERT_EQ(indexed.size(), scanned.size())
          << "seed " << seed << " query " << q;
      for (size_t i = 0; i < indexed.size(); ++i) {
        EXPECT_EQ(indexed[i], scanned[i])
            << "seed " << seed << " query " << q << " hit " << i;
      }
    }
  }
}

// ------------------------------- ParseQuery --------------------------------

class ParseFixture : public ::testing::Test {
 protected:
  ParseFixture() {
    engine_ = std::make_unique<StoryPivotEngine>();
    SourceId source = engine_->RegisterSource("wire");
    text::TermId ukraine = engine_->gazetteer()->AddEntity("Ukraine");
    engine_->gazetteer()->AddAlias(ukraine, "Kiev government");
    text::TermId crash = engine_->keyword_vocabulary()->Intern("crash");
    SP_CHECK_OK(engine_->AddSnippet(MakeSnippet(
        kInvalidSnippetId, source, MakeTimestamp(2014, 7, 17),
        {{ukraine, 1.0}}, {{crash, 2.0}}, "Accident")));
    searcher_ = std::make_unique<SearchEngine>(engine_.get());
  }

  std::unique_ptr<StoryPivotEngine> engine_;
  std::unique_ptr<SearchEngine> searcher_;
};

TEST_F(ParseFixture, ResolvesEveryFieldAndReportsUnmatched) {
  ParsedQuery parsed =
      searcher_->Parse("Ukraine crashed the accident zzznope");
  ASSERT_EQ(parsed.terms.size(), 3u);
  EXPECT_EQ(parsed.terms[0].field, Field::kEntity);
  EXPECT_EQ(parsed.terms[0].term,
            engine_->entity_vocabulary()->Lookup("Ukraine"));
  // "crashed" stems to the interned "crash".
  EXPECT_EQ(parsed.terms[1].field, Field::kKeyword);
  EXPECT_EQ(parsed.terms[1].term,
            engine_->keyword_vocabulary()->Lookup("crash"));
  // "accident" case-insensitively matches the indexed event type; "the"
  // is a stopword and vanishes silently.
  EXPECT_EQ(parsed.terms[2].field, Field::kEventType);
  EXPECT_EQ(parsed.terms[2].event_type, "Accident");
  ASSERT_EQ(parsed.unmatched.size(), 1u);
  EXPECT_EQ(parsed.unmatched[0], "zzznope");
}

TEST_F(ParseFixture, MultiTokenAliasResolvesThroughGazetteer) {
  ParsedQuery parsed = searcher_->Parse("kiev government crash");
  ASSERT_EQ(parsed.terms.size(), 2u);
  EXPECT_EQ(parsed.terms[0].field, Field::kEntity);
  EXPECT_EQ(parsed.terms[0].term,
            engine_->entity_vocabulary()->Lookup("Ukraine"));
  EXPECT_EQ(parsed.terms[1].field, Field::kKeyword);
  EXPECT_TRUE(parsed.unmatched.empty());
}

TEST_F(ParseFixture, DuplicateResolutionsCollapse) {
  ParsedQuery parsed = searcher_->Parse("crash crashes crashing");
  EXPECT_EQ(parsed.terms.size(), 1u);
}

// -------------------- Incremental maintenance vs rebuild -------------------

TEST(SearchMaintenance, ObserverMatchesFreshRebuildAfterRemovals) {
  datagen::CorpusConfig config;
  config.target_num_snippets = 250;
  config.num_sources = 4;
  config.num_stories = 12;
  datagen::Corpus corpus = datagen::CorpusGenerator(config).Generate();
  StoryPivotEngine engine;
  SP_CHECK_OK(engine.ImportVocabularies(*corpus.entity_vocabulary,
                                        *corpus.keyword_vocabulary));
  for (const SourceInfo& source : corpus.sources) {
    engine.RegisterSource(source.name);
  }
  // Attach BEFORE ingest: every posting arrives via observer callbacks.
  SearchEngine live(&engine);
  for (const Snippet& snippet : corpus.snippets) {
    Snippet copy = snippet;
    copy.id = kInvalidSnippetId;
    SP_CHECK_OK(engine.AddSnippet(std::move(copy)));
  }
  SP_CHECK_OK(engine.RemoveSource(corpus.sources[1].id));

  // A second index built from scratch off the post-removal store must be
  // indistinguishable (pure function of the live snippet set).
  search::PostingsIndex rebuilt;
  engine.store().ForEach(
      [&](const Snippet& snippet) { rebuilt.AddSnippet(snippet); });

  EXPECT_EQ(live.index().num_documents(), rebuilt.num_documents());
  EXPECT_EQ(live.index().num_postings(), rebuilt.num_postings());
  EXPECT_DOUBLE_EQ(live.index().total_length(), rebuilt.total_length());
  EXPECT_EQ(live.index().EventTypes(), rebuilt.EventTypes());
  for (text::TermId id = 0; id < engine.entity_vocabulary()->size(); ++id) {
    EXPECT_EQ(live.index().DocumentFrequency(Field::kEntity, id),
              rebuilt.DocumentFrequency(Field::kEntity, id));
  }
}

}  // namespace
}  // namespace storypivot
