#include <gtest/gtest.h>

#include "core/trends.h"
#include "datagen/corpus.h"
#include "util/logging.h"

namespace storypivot {
namespace {

class TrendsFixture : public ::testing::Test {
 protected:
  TrendsFixture() { src_ = engine_.RegisterSource("s"); }

  /// Adds a snippet with fixed content (one story) at `ts`.
  SnippetId Add(Timestamp ts, text::TermId entity = 1) {
    Snippet s;
    s.source = src_;
    s.timestamp = ts;
    s.entities = text::TermVector::FromEntries({{entity, 1.0},
                                                {entity + 1, 1.0}});
    s.keywords = text::TermVector::FromEntries({{entity, 1.0}});
    return engine_.AddSnippet(std::move(s)).value();
  }

  StoryPivotEngine engine_;
  SourceId src_ = 0;
};

TEST_F(TrendsFixture, ActivitySeriesBucketsByDay) {
  Timestamp day0 = MakeTimestamp(2014, 7, 17);
  Add(day0 + 2 * kSecondsPerHour);
  Add(day0 + 20 * kSecondsPerHour);
  Add(day0 + kSecondsPerDay + kSecondsPerHour);
  Add(day0 + 3 * kSecondsPerDay);
  const StorySet* partition = engine_.partition(src_);
  ASSERT_EQ(partition->stories().size(), 1u);
  const Story& story = partition->stories().begin()->second;
  ActivitySeries series = BuildActivitySeries(engine_, story);
  ASSERT_EQ(series.counts.size(), 4u);
  EXPECT_EQ(series.counts[0], 2);
  EXPECT_EQ(series.counts[1], 1);
  EXPECT_EQ(series.counts[2], 0);
  EXPECT_EQ(series.counts[3], 1);
  EXPECT_EQ(series.Total(), 4);
  EXPECT_EQ(series.CountAt(day0 + kSecondsPerHour), 2);
  EXPECT_EQ(series.CountAt(day0 - kSecondsPerDay), 0);
  EXPECT_EQ(series.CountAt(day0 + 30 * kSecondsPerDay), 0);
}

TEST_F(TrendsFixture, ActivitySeriesEmptyStory) {
  Story empty(1);
  ActivitySeries series = BuildActivitySeries(engine_, empty);
  EXPECT_TRUE(series.counts.empty());
  EXPECT_EQ(series.Total(), 0);
}

TEST_F(TrendsFixture, BurstingStoryDetected) {
  Timestamp start = MakeTimestamp(2014, 6, 1);
  // Slow burn: one snippet every 5 days for 40 days.
  for (int d = 0; d <= 40; d += 5) Add(start + d * kSecondsPerDay);
  // Burst: five snippets in the last 3 days.
  Timestamp now = start + 46 * kSecondsPerDay;
  for (int k = 0; k < 5; ++k) {
    Add(now - k * 12 * kSecondsPerHour);
  }
  engine_.Align();
  std::vector<TrendingStory> trending =
      DetectTrendingStories(engine_, now);
  ASSERT_EQ(trending.size(), 1u);
  EXPECT_GE(trending[0].recent_count, 5);
  EXPECT_GE(trending[0].burst_ratio, 2.0);
  EXPECT_FALSE(trending[0].emerging);
}

TEST_F(TrendsFixture, SteadyStoryNotTrending) {
  Timestamp start = MakeTimestamp(2014, 6, 1);
  // Perfectly steady story: one snippet per day for 30 days.
  for (int d = 0; d < 30; ++d) Add(start + d * kSecondsPerDay);
  engine_.Align();
  std::vector<TrendingStory> trending = DetectTrendingStories(
      engine_, start + 29 * kSecondsPerDay);
  EXPECT_TRUE(trending.empty());
}

TEST_F(TrendsFixture, EmergingStoryFlagged) {
  Timestamp now = MakeTimestamp(2014, 8, 1);
  // Brand-new story entirely inside the recent window.
  for (int k = 0; k < 4; ++k) Add(now - k * kSecondsPerDay);
  engine_.Align();
  std::vector<TrendingStory> trending = DetectTrendingStories(engine_, now);
  ASSERT_EQ(trending.size(), 1u);
  EXPECT_TRUE(trending[0].emerging);
  EXPECT_EQ(trending[0].burst_ratio, 1000.0);
}

TEST_F(TrendsFixture, MinRecentFilters) {
  Timestamp now = MakeTimestamp(2014, 8, 1);
  Add(now);
  Add(now - kSecondsPerDay);
  engine_.Align();
  TrendConfig config;
  config.min_recent = 3;
  EXPECT_TRUE(DetectTrendingStories(engine_, now, config).empty());
  config.min_recent = 2;
  EXPECT_EQ(DetectTrendingStories(engine_, now, config).size(), 1u);
}

TEST_F(TrendsFixture, FutureSnippetsIgnored) {
  Timestamp now = MakeTimestamp(2014, 8, 1);
  for (int k = 0; k < 4; ++k) Add(now - k * kSecondsPerDay);
  // Snippets "after now" (late-arriving events dated in the future of the
  // evaluation point) must not count.
  for (int k = 1; k <= 3; ++k) Add(now + k * kSecondsPerDay);
  engine_.Align();
  std::vector<TrendingStory> trending = DetectTrendingStories(engine_, now);
  ASSERT_EQ(trending.size(), 1u);
  EXPECT_EQ(trending[0].recent_count, 4);
}

TEST(TrendsCorpusTest, RankingIsDeterministicAndOrdered) {
  datagen::CorpusConfig config;
  config.seed = 33;
  config.num_sources = 5;
  config.num_stories = 15;
  config.target_num_snippets = 1500;
  datagen::Corpus corpus = datagen::CorpusGenerator(config).Generate();
  StoryPivotEngine engine;
  SP_CHECK(engine
               .ImportVocabularies(*corpus.entity_vocabulary,
                                   *corpus.keyword_vocabulary)
               .ok());
  for (const SourceInfo& s : corpus.sources) engine.RegisterSource(s.name);
  for (const Snippet& snippet : corpus.snippets) {
    Snippet copy = snippet;
    copy.id = kInvalidSnippetId;
    SP_CHECK_OK(engine.AddSnippet(std::move(copy)));
  }
  engine.Align();
  Timestamp now = config.end_time - 30 * kSecondsPerDay;
  std::vector<TrendingStory> a = DetectTrendingStories(engine, now);
  std::vector<TrendingStory> b = DetectTrendingStories(engine, now);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].story, b[i].story);
    if (i > 0) {
      EXPECT_GE(a[i - 1].burst_ratio, a[i].burst_ratio);
    }
  }
}

}  // namespace
}  // namespace storypivot
