#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/engine.h"
#include "core/incremental.h"
#include "datagen/corpus.h"
#include "util/logging.h"

namespace storypivot {
namespace {

datagen::Corpus SmallCorpus(uint64_t seed = 77) {
  datagen::CorpusConfig config;
  config.seed = seed;
  config.num_sources = 5;
  config.num_stories = 14;
  config.target_num_snippets = 900;
  return datagen::CorpusGenerator(config).Generate();
}

std::unique_ptr<StoryPivotEngine> MakeEngine(const datagen::Corpus& corpus,
                                             bool incremental) {
  EngineConfig config;
  config.incremental_alignment = incremental;
  auto engine = std::make_unique<StoryPivotEngine>(config);
  SP_CHECK(engine
               ->ImportVocabularies(*corpus.entity_vocabulary,
                                    *corpus.keyword_vocabulary)
               .ok());
  for (const SourceInfo& s : corpus.sources) engine->RegisterSource(s.name);
  return engine;
}

void Feed(StoryPivotEngine& engine, const datagen::Corpus& corpus,
          size_t begin, size_t end) {
  for (size_t i = begin; i < end && i < corpus.snippets.size(); ++i) {
    Snippet copy = corpus.snippets[i];
    copy.id = kInvalidSnippetId;
    SP_CHECK_OK(engine.AddSnippet(std::move(copy)));
  }
}

/// Canonical form of an alignment: the set of integrated stories, each as
/// a sorted set of snippet ids. Integrated story *ids* are allowed to
/// differ between the two aligners.
std::set<std::vector<SnippetId>> Canonical(const AlignmentResult& result) {
  std::set<std::vector<SnippetId>> out;
  for (const IntegratedStory& story : result.stories) {
    std::vector<SnippetId> ids(story.merged.snippets().begin(),
                               story.merged.snippets().end());
    std::sort(ids.begin(), ids.end());
    out.insert(std::move(ids));
  }
  return out;
}

TEST(IncrementalAlignmentTest, MatchesBatchAfterBulkIngest) {
  datagen::Corpus corpus = SmallCorpus();
  auto batch = MakeEngine(corpus, /*incremental=*/false);
  auto incremental = MakeEngine(corpus, /*incremental=*/true);
  Feed(*batch, corpus, 0, corpus.snippets.size());
  Feed(*incremental, corpus, 0, corpus.snippets.size());
  EXPECT_EQ(Canonical(batch->Align()), Canonical(incremental->Align()));
}

TEST(IncrementalAlignmentTest, MatchesBatchUnderInterleavedAligns) {
  datagen::Corpus corpus = SmallCorpus(78);
  auto batch = MakeEngine(corpus, false);
  auto incremental = MakeEngine(corpus, true);
  const size_t n = corpus.snippets.size();
  for (int phase = 1; phase <= 5; ++phase) {
    size_t begin = n * (phase - 1) / 5;
    size_t end = n * phase / 5;
    Feed(*batch, corpus, begin, end);
    Feed(*incremental, corpus, begin, end);
    // The incremental engine aligns every phase (exercising the dirty
    // path); batch aligns fresh each time.
    EXPECT_EQ(Canonical(batch->Align()), Canonical(incremental->Align()))
        << "phase " << phase;
  }
}

TEST(IncrementalAlignmentTest, RolesMatchBatch) {
  datagen::Corpus corpus = SmallCorpus(79);
  auto batch = MakeEngine(corpus, false);
  auto incremental = MakeEngine(corpus, true);
  Feed(*batch, corpus, 0, 400);
  Feed(*incremental, corpus, 0, 400);
  incremental->Align();  // Prime the graph.
  Feed(*batch, corpus, 400, 600);
  Feed(*incremental, corpus, 400, 600);
  const AlignmentResult& a = batch->Align();
  const AlignmentResult& b = incremental->Align();
  ASSERT_EQ(a.roles.size(), b.roles.size());
  for (const auto& [sid, role] : a.roles) {
    auto it = b.roles.find(sid);
    ASSERT_NE(it, b.roles.end());
    EXPECT_EQ(it->second, role);
  }
}

TEST(IncrementalAlignmentTest, MatchesBatchAfterRemovals) {
  datagen::Corpus corpus = SmallCorpus(80);
  auto batch = MakeEngine(corpus, false);
  auto incremental = MakeEngine(corpus, true);
  Feed(*batch, corpus, 0, 600);
  Feed(*incremental, corpus, 0, 600);
  incremental->Align();

  // Remove every 7th stored snippet from both engines.
  std::vector<SnippetId> ids;
  batch->store().ForEach(
      [&](const Snippet& snippet) { ids.push_back(snippet.id); });
  std::sort(ids.begin(), ids.end());
  for (size_t i = 0; i < ids.size(); i += 7) {
    ASSERT_TRUE(batch->RemoveSnippet(ids[i]).ok());
    ASSERT_TRUE(incremental->RemoveSnippet(ids[i]).ok());
  }
  EXPECT_EQ(Canonical(batch->Align()), Canonical(incremental->Align()));
}

TEST(IncrementalAlignmentTest, MatchesBatchAfterSourceRemoval) {
  datagen::Corpus corpus = SmallCorpus(81);
  auto batch = MakeEngine(corpus, false);
  auto incremental = MakeEngine(corpus, true);
  Feed(*batch, corpus, 0, 500);
  Feed(*incremental, corpus, 0, 500);
  incremental->Align();
  ASSERT_TRUE(batch->RemoveSource(2).ok());
  ASSERT_TRUE(incremental->RemoveSource(2).ok());
  EXPECT_EQ(Canonical(batch->Align()), Canonical(incremental->Align()));
}

TEST(IncrementalAlignmentTest, MatchesBatchAfterRefine) {
  datagen::Corpus corpus = SmallCorpus(82);
  auto batch = MakeEngine(corpus, false);
  auto incremental = MakeEngine(corpus, true);
  Feed(*batch, corpus, 0, 700);
  Feed(*incremental, corpus, 0, 700);
  batch->Refine();
  incremental->Refine();
  EXPECT_EQ(Canonical(batch->alignment()),
            Canonical(incremental->alignment()));
}

TEST(IncrementalAlignmentTest, SecondAlignDoesLittleWork) {
  datagen::Corpus corpus = SmallCorpus(83);
  auto engine = MakeEngine(corpus, true);
  Feed(*engine, corpus, 0, 800);

  IncrementalAligner probe(&engine->similarity(),
                           engine->config().alignment);
  StoryId next = 1 << 20;
  probe.Update(engine->partitions(), engine->store(), {}, &next);
  uint64_t first_pass = probe.pairs_scored();
  // No mutations: a second update with an empty dirty set scores nothing.
  probe.Update(engine->partitions(), engine->store(), {}, &next);
  EXPECT_EQ(probe.pairs_scored(), first_pass);
}

TEST(IncrementalAlignmentTest, DirtyUpdateScoresOnlyNeighborhood) {
  datagen::Corpus corpus = SmallCorpus(84);
  auto engine = MakeEngine(corpus, true);
  Feed(*engine, corpus, 0, 800);
  engine->Align();

  // One more snippet dirties at most a couple of stories; the next Align
  // must score far fewer pairs than a from-scratch alignment would.
  IncrementalAligner probe(&engine->similarity(),
                           engine->config().alignment);
  StoryId next = 1 << 20;
  probe.Update(engine->partitions(), engine->store(), {}, &next);
  uint64_t full_cost = probe.pairs_scored();

  Snippet extra = corpus.snippets[800];
  extra.id = kInvalidSnippetId;
  SP_CHECK_OK(engine->AddSnippet(std::move(extra)));
  uint64_t before = probe.pairs_scored();
  // Find the story the new snippet landed in.
  std::vector<std::pair<SourceId, StoryId>> dirty;
  for (const StorySet* partition : engine->partitions()) {
    for (const auto& [id, story] : partition->stories()) {
      // Conservative: mark the partition's stories dirty only if changed.
      (void)id;
    }
  }
  // Use the engine-tracked path instead: its own Align already cleared
  // dirt, so emulate with the known source/story of the last snippet.
  const Snippet* last = nullptr;
  engine->store().ForEach([&](const Snippet& snippet) {
    if (last == nullptr || snippet.id > last->id) last = &snippet;
  });
  ASSERT_NE(last, nullptr);
  dirty.push_back({last->source,
                   engine->partition(last->source)->StoryOf(last->id)});
  probe.Update(engine->partitions(), engine->store(), dirty, &next);
  uint64_t delta = probe.pairs_scored() - before;
  EXPECT_LT(delta, full_cost / 4)
      << "incremental update must be much cheaper than full alignment";
}

TEST(IncrementalAlignmentTest, InvalidateForcesFullRecompute) {
  datagen::Corpus corpus = SmallCorpus(85);
  auto engine = MakeEngine(corpus, true);
  Feed(*engine, corpus, 0, 400);
  IncrementalAligner probe(&engine->similarity(),
                           engine->config().alignment);
  StoryId next = 1 << 20;
  AlignmentResult first =
      probe.Update(engine->partitions(), engine->store(), {}, &next);
  probe.Invalidate();
  EXPECT_EQ(probe.num_nodes(), 0u);
  AlignmentResult second =
      probe.Update(engine->partitions(), engine->store(), {}, &next);
  EXPECT_EQ(Canonical(first), Canonical(second));
}

}  // namespace
}  // namespace storypivot
