#include <gtest/gtest.h>

#include <limits>

#include "core/aligner.h"
#include "core/refiner.h"
#include "core/story_set.h"
#include "util/rng.h"
#include "model/time.h"

namespace storypivot {
namespace {

/// Builds a two-source fixture mirroring the paper's running example:
/// story "X" (plane crash: entities {0,1}, keywords {5,6}) and story "Y"
/// (war-crimes inquiry: entities {8,9}, keywords {15,16}), both reported
/// by both sources.
class AlignmentFixture : public ::testing::Test {
 protected:
  AlignmentFixture() : s1_(0), s2_(1), model_({}, nullptr) {}

  const Snippet& Put(SourceId source, Timestamp ts,
                     std::vector<std::pair<text::TermId, double>> entities,
                     std::vector<std::pair<text::TermId, double>> keywords) {
    Snippet s;
    s.source = source;
    s.timestamp = ts;
    s.entities = text::TermVector::FromEntries(std::move(entities));
    s.keywords = text::TermVector::FromEntries(std::move(keywords));
    SnippetId id = store_.Insert(std::move(s)).value();
    return *store_.Find(id);
  }

  const Snippet& PutX(SourceId source, Timestamp ts) {
    return Put(source, ts, {{0, 1.0}, {1, 1.0}}, {{5, 1.0}, {6, 1.0}});
  }
  const Snippet& PutY(SourceId source, Timestamp ts) {
    return Put(source, ts, {{8, 1.0}, {9, 1.0}}, {{15, 1.0}, {16, 1.0}});
  }

  StorySet& PartitionOf(SourceId source) { return source == 0 ? s1_ : s2_; }

  void Assign(const Snippet& snippet, StoryId story) {
    StorySet& partition = PartitionOf(snippet.source);
    if (partition.FindStory(story) == nullptr) partition.CreateStory(story);
    partition.AddSnippetToStory(snippet, story);
    next_story_id_ = std::max(next_story_id_, story + 1);
  }

  AlignmentResult Align(AlignmentConfig config = {}) {
    StoryAligner aligner(&model_, config);
    return aligner.Align({&s1_, &s2_}, store_, &next_story_id_);
  }

  SnippetStore store_;
  StorySet s1_;
  StorySet s2_;
  SimilarityModel model_;
  StoryId next_story_id_ = 0;
};

TEST_F(AlignmentFixture, MatchingStoriesAlignAcrossSources) {
  Assign(PutX(0, 0), 1);
  Assign(PutX(0, kSecondsPerDay), 1);
  Assign(PutX(1, 0), 2);
  Assign(PutX(1, 2 * kSecondsPerDay), 2);
  AlignmentResult result = Align();
  ASSERT_EQ(result.stories.size(), 1u);
  EXPECT_EQ(result.stories[0].members.size(), 2u);
  EXPECT_EQ(result.stories[0].merged.size(), 4u);
  EXPECT_EQ(result.stories[0].merged.sources().size(), 2u);
}

TEST_F(AlignmentFixture, DifferentStoriesStaySeparate) {
  Assign(PutX(0, 0), 1);
  Assign(PutY(1, 0), 2);
  AlignmentResult result = Align();
  EXPECT_EQ(result.stories.size(), 2u);
}

TEST_F(AlignmentFixture, SingletonStoriesSurviveAlignment) {
  // A story reported by only one source must still appear in the result
  // (§2.3: sports story among business sources).
  Assign(PutX(0, 0), 1);
  Assign(PutX(1, 0), 2);
  Assign(PutY(0, 0), 3);  // Only source 0 covers story Y.
  AlignmentResult result = Align();
  ASSERT_EQ(result.stories.size(), 2u);
  size_t y_index = result.IndexOfMember(0, 3);
  ASSERT_NE(y_index, std::numeric_limits<size_t>::max());
  EXPECT_EQ(result.stories[y_index].members.size(), 1u);
}

TEST_F(AlignmentFixture, TemporallyDistantStoriesDoNotAlign) {
  // Same content, but half a year apart: "It is highly unlikely that two
  // stories c1 and c2 are similar if c1 ends at ti and c2 starts at tj
  // with ti << tj" (§2.3).
  Assign(PutX(0, 0), 1);
  Assign(PutX(0, kSecondsPerDay), 1);
  Assign(PutX(1, 180 * kSecondsPerDay), 2);
  AlignmentResult result = Align();
  EXPECT_EQ(result.stories.size(), 2u);
}

TEST_F(AlignmentFixture, SameSourceStoriesNotMergedByDefault) {
  Assign(PutX(0, 0), 1);
  Assign(PutX(0, kSecondsPerDay), 2);  // Same source, same content.
  AlignmentResult result = Align();
  EXPECT_EQ(result.stories.size(), 2u);

  AlignmentConfig allow;
  allow.allow_same_source_merge = true;
  AlignmentResult merged = Align(allow);
  EXPECT_EQ(merged.stories.size(), 1u);
}

TEST_F(AlignmentFixture, CounterpartsMarkedAligning) {
  const Snippet& a = PutX(0, 0);
  const Snippet& b = PutX(1, kSecondsPerHour);  // Near-simultaneous.
  const Snippet& lonely = PutX(0, 40 * kSecondsPerDay);  // Enriching: far.
  Assign(a, 1);
  Assign(lonely, 1);
  Assign(b, 2);
  AlignmentResult result = Align();
  ASSERT_EQ(result.stories.size(), 1u);
  EXPECT_EQ(result.roles.at(a.id), SnippetRole::kAligning);
  EXPECT_EQ(result.roles.at(b.id), SnippetRole::kAligning);
  EXPECT_EQ(result.roles.at(lonely.id), SnippetRole::kEnriching);
  EXPECT_EQ(result.counterpart.at(a.id), b.id);
  EXPECT_EQ(result.counterpart.at(b.id), a.id);
}

TEST_F(AlignmentFixture, IntegratedOfCoversEverySnippet) {
  const Snippet& a = PutX(0, 0);
  const Snippet& b = PutY(0, 0);
  const Snippet& c = PutX(1, 0);
  Assign(a, 1);
  Assign(b, 2);
  Assign(c, 3);
  AlignmentResult result = Align();
  EXPECT_EQ(result.integrated_of.size(), 3u);
  EXPECT_EQ(result.integrated_of.at(a.id), result.integrated_of.at(c.id));
  EXPECT_NE(result.integrated_of.at(a.id), result.integrated_of.at(b.id));
}

TEST_F(AlignmentFixture, LshAndAllPairsAgree) {
  for (int d = 0; d < 5; ++d) {
    Assign(PutX(0, d * kSecondsPerDay), 1);
    Assign(PutX(1, d * kSecondsPerDay), 2);
    Assign(PutY(0, d * kSecondsPerDay), 3);
    Assign(PutY(1, d * kSecondsPerDay), 4);
  }
  AlignmentConfig all_pairs;
  all_pairs.use_lsh = false;
  AlignmentConfig lsh;
  lsh.use_lsh = true;
  AlignmentResult a = Align(all_pairs);
  AlignmentResult b = Align(lsh);
  EXPECT_EQ(a.stories.size(), b.stories.size());
  // LSH scores at most as many pairs as the exhaustive scan.
  EXPECT_LE(b.num_pairs_scored, a.num_pairs_scored);
}

// Property: raising the alignment threshold can only produce more (or the
// same number of) integrated stories — union-find over fewer edges.
class AlignmentThresholdMonotonicity
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlignmentThresholdMonotonicity, ClusterCountNonDecreasing) {
  SnippetStore store;
  StorySet s1(0), s2(1);
  SimilarityModel model({}, nullptr);
  StoryId next_story_id = 0;
  Pcg32 rng(GetParam());

  // Random stories across two sources with overlapping vocabulary.
  for (int i = 0; i < 24; ++i) {
    SourceId source = rng.NextBounded(2);
    StorySet& partition = source == 0 ? s1 : s2;
    StoryId story_id = next_story_id++;
    partition.CreateStory(story_id);
    int members = 1 + rng.NextBounded(3);
    Timestamp base = rng.NextInRange(0, 60) * kSecondsPerDay;
    for (int m = 0; m < members; ++m) {
      Snippet snippet;
      snippet.source = source;
      snippet.timestamp = base + m * kSecondsPerDay;
      std::vector<text::TermVector::Entry> ents, kws;
      for (int k = 0; k < 3; ++k) {
        ents.push_back({rng.NextBounded(12), 1.0});
        kws.push_back({rng.NextBounded(20), 1.0});
      }
      snippet.entities = text::TermVector::FromEntries(std::move(ents));
      snippet.keywords = text::TermVector::FromEntries(std::move(kws));
      SnippetId id = store.Insert(std::move(snippet)).value();
      partition.AddSnippetToStory(*store.Find(id), story_id);
    }
  }

  size_t previous = 0;
  bool first = true;
  for (double threshold : {0.05, 0.15, 0.25, 0.35, 0.5, 0.7, 0.9}) {
    AlignmentConfig config;
    config.align_threshold = threshold;
    config.use_lsh = false;  // Exact candidates for a clean property.
    StoryAligner aligner(&model, config);
    AlignmentResult result =
        aligner.Align({&s1, &s2}, store, &next_story_id);
    if (!first) {
      EXPECT_GE(result.stories.size(), previous)
          << "threshold " << threshold;
    }
    previous = result.stories.size();
    first = false;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlignmentThresholdMonotonicity,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --------------------------------- Refiner ---------------------------------

TEST_F(AlignmentFixture, RefinerRecoversFig1Misassignment) {
  // Reproduce Fig. 1: s1's story c1 wrongly contains a Y-content snippet
  // (v4); its counterpart in s2 sits in the Y story, which aligns with
  // s1's own Y story c3. Refinement must move v4 from c1 to c3.
  const Snippet& x1 = PutX(0, 0);
  const Snippet& x2 = PutX(0, kSecondsPerDay);
  const Snippet& v4 = PutY(0, kSecondsPerDay + kSecondsPerHour);  // Wrong.
  Assign(x1, 1);
  Assign(x2, 1);
  Assign(v4, 1);  // Misassigned into the X story.

  const Snippet& y1 = PutY(0, kSecondsPerDay);
  Assign(y1, 3);  // s1's own Y story.

  Assign(PutX(1, 0), 5);
  const Snippet& y_cp = PutY(1, kSecondsPerDay + 2 * kSecondsPerHour);
  Assign(y_cp, 6);
  Assign(PutY(1, 2 * kSecondsPerDay), 6);

  AlignmentResult alignment = Align();
  // Sanity: v4's counterpart is in a different integrated story.
  ASSERT_TRUE(alignment.integrated_of.contains(v4.id));

  StoryRefiner refiner(&model_, {});
  std::vector<StorySet*> partitions = {&s1_, &s2_};
  RefinementStats stats =
      refiner.Refine(partitions, alignment, store_, &next_story_id_);
  EXPECT_GE(stats.snippets_moved, 1);
  EXPECT_EQ(s1_.StoryOf(v4.id), 3u) << "v4 must move to s1's Y story";
  EXPECT_EQ(s1_.StoryOf(x1.id), 1u) << "correct snippets stay";
  EXPECT_EQ(s1_.FindStory(1)->size(), 2u);
  EXPECT_EQ(s1_.FindStory(3)->size(), 2u);
}

TEST_F(AlignmentFixture, RefinerLeavesConsistentAssignmentsAlone) {
  const Snippet& x1 = PutX(0, 0);
  const Snippet& x2 = PutX(1, kSecondsPerHour);
  Assign(x1, 1);
  Assign(x2, 2);
  AlignmentResult alignment = Align();
  StoryRefiner refiner(&model_, {});
  std::vector<StorySet*> partitions = {&s1_, &s2_};
  RefinementStats stats =
      refiner.Refine(partitions, alignment, store_, &next_story_id_);
  EXPECT_EQ(stats.snippets_moved, 0);
  EXPECT_EQ(s1_.StoryOf(x1.id), 1u);
  EXPECT_EQ(s2_.StoryOf(x2.id), 2u);
}

TEST_F(AlignmentFixture, SplitIfDisconnectedSplitsBrokenStory) {
  // One story holding two content islands 60 days apart.
  const Snippet& a1 = PutX(0, 0);
  const Snippet& a2 = PutX(0, kSecondsPerDay);
  const Snippet& b1 = PutY(0, 60 * kSecondsPerDay);
  const Snippet& b2 = PutY(0, 61 * kSecondsPerDay);
  Assign(a1, 1);
  Assign(a2, 1);
  Assign(b1, 1);
  Assign(b2, 1);
  StoryRefiner refiner(&model_, {});
  int created =
      refiner.SplitIfDisconnected(&s1_, 1, store_, &next_story_id_);
  EXPECT_EQ(created, 1);
  EXPECT_EQ(s1_.stories().size(), 2u);
  EXPECT_EQ(s1_.StoryOf(a1.id), s1_.StoryOf(a2.id));
  EXPECT_EQ(s1_.StoryOf(b1.id), s1_.StoryOf(b2.id));
  EXPECT_NE(s1_.StoryOf(a1.id), s1_.StoryOf(b1.id));
}

TEST_F(AlignmentFixture, SplitKeepsConnectedStoryIntact) {
  const Snippet& a1 = PutX(0, 0);
  const Snippet& a2 = PutX(0, kSecondsPerDay);
  Assign(a1, 1);
  Assign(a2, 1);
  StoryRefiner refiner(&model_, {});
  EXPECT_EQ(refiner.SplitIfDisconnected(&s1_, 1, store_, &next_story_id_),
            0);
  EXPECT_EQ(s1_.stories().size(), 1u);
}

}  // namespace
}  // namespace storypivot
