#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/query.h"
#include "datagen/mh17.h"
#include "text/knowledge_base.h"
#include "util/logging.h"
#include "viz/ascii.h"

namespace storypivot {
namespace {

using text::KnowledgeBase;
using text::KnowledgeEntry;

TEST(KnowledgeBaseTest, AddAndFind) {
  KnowledgeBase kb;
  kb.Add({"Ukraine", "country", "Eastern European country.", {"Russia"}});
  const KnowledgeEntry* entry = kb.Find("Ukraine");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->type, "country");
  EXPECT_EQ(kb.Find("Atlantis"), nullptr);
  EXPECT_EQ(kb.size(), 1u);
}

TEST(KnowledgeBaseTest, ReplaceUpdatesReverseLinks) {
  KnowledgeBase kb;
  kb.Add({"A", "country", "", {"B"}});
  kb.Add({"B", "country", "", {}});
  ASSERT_EQ(kb.Neighbors("B").size(), 1u);
  // Replace A without the relation; B must lose its reverse neighbor.
  kb.Add({"A", "country", "", {}});
  EXPECT_TRUE(kb.Neighbors("B").empty());
}

TEST(KnowledgeBaseTest, NeighborsAreBidirectional) {
  KnowledgeBase kb;
  kb.Add({"Google", "company", "", {"Yelp"}});
  kb.Add({"Yelp", "company", "", {}});
  // Forward: Google -> Yelp. Reverse: Yelp <- Google.
  auto forward = kb.Neighbors("Google");
  ASSERT_EQ(forward.size(), 1u);
  EXPECT_EQ(forward[0]->name, "Yelp");
  auto reverse = kb.Neighbors("Yelp");
  ASSERT_EQ(reverse.size(), 1u);
  EXPECT_EQ(reverse[0]->name, "Google");
}

TEST(KnowledgeBaseTest, FindByType) {
  KnowledgeBase kb = KnowledgeBase::WithEmbeddedWorldFacts();
  auto companies = kb.FindByType("company");
  EXPECT_GE(companies.size(), 3u);
  for (const KnowledgeEntry* entry : companies) {
    EXPECT_EQ(entry->type, "company");
  }
  // Sorted by name.
  for (size_t i = 1; i < companies.size(); ++i) {
    EXPECT_LT(companies[i - 1]->name, companies[i]->name);
  }
}

TEST(KnowledgeBaseTest, EmbeddedFactsCoverMh17Actors) {
  KnowledgeBase kb = KnowledgeBase::WithEmbeddedWorldFacts();
  for (const char* name :
       {"Ukraine", "Russia", "Malaysia Airlines", "Netherlands",
        "United Nations", "Google", "Yelp", "Israel"}) {
    EXPECT_NE(kb.Find(name), nullptr) << name;
  }
  // MH17 relations are navigable.
  auto neighbors = kb.Neighbors("Malaysia Airlines");
  bool has_malaysia = false;
  for (const KnowledgeEntry* n : neighbors) {
    has_malaysia |= n->name == "Malaysia";
  }
  EXPECT_TRUE(has_malaysia);
}

TEST(EntityContextTest, EnrichesQueriesWithFacts) {
  datagen::Mh17Corpus corpus = datagen::MakeMh17Corpus();
  StoryPivotEngine engine(NewsProseEngineConfig());
  for (const SourceInfo& source : corpus.sources) {
    engine.RegisterSource(source.name);
  }
  datagen::PopulateMh17Gazetteer(corpus, engine.gazetteer());
  for (const Document& doc : corpus.documents) {
    SP_CHECK(engine.AddDocument(doc).ok());
  }

  KnowledgeBase kb = KnowledgeBase::WithEmbeddedWorldFacts();
  StoryQuery query(&engine);
  query.set_knowledge_base(&kb);

  EntityContext context = query.Context("Malaysia Airlines");
  EXPECT_EQ(context.type, "company");
  EXPECT_FALSE(context.description.empty());
  EXPECT_FALSE(context.related.empty());
  EXPECT_FALSE(context.stories.empty());

  // Without a knowledge base the stories still come back.
  StoryQuery bare(&engine);
  EntityContext no_kb = bare.Context("Malaysia Airlines");
  EXPECT_TRUE(no_kb.type.empty());
  EXPECT_EQ(no_kb.stories.size(), context.stories.size());

  // Unknown entities yield an empty-but-valid context.
  EntityContext unknown = query.Context("Atlantis");
  EXPECT_TRUE(unknown.stories.empty());
  EXPECT_TRUE(unknown.type.empty());
}

TEST(EntityContextTest, RenderedCardShowsFactsAndStories) {
  datagen::Mh17Corpus corpus = datagen::MakeMh17Corpus();
  StoryPivotEngine engine(NewsProseEngineConfig());
  for (const SourceInfo& source : corpus.sources) {
    engine.RegisterSource(source.name);
  }
  datagen::PopulateMh17Gazetteer(corpus, engine.gazetteer());
  for (const Document& doc : corpus.documents) {
    SP_CHECK(engine.AddDocument(doc).ok());
  }
  text::KnowledgeBase kb = KnowledgeBase::WithEmbeddedWorldFacts();
  StoryQuery query(&engine);
  query.set_knowledge_base(&kb);
  std::string card = viz::RenderEntityContext(query.Context("Ukraine"));
  EXPECT_NE(card.find("Ukraine"), std::string::npos);
  EXPECT_NE(card.find("country"), std::string::npos);
  EXPECT_NE(card.find("Related"), std::string::npos);
  EXPECT_NE(card.find("Stories"), std::string::npos);
}

}  // namespace
}  // namespace storypivot
