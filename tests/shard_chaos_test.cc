// Sharded chaos harness (DESIGN.md §17): drives the SHARDED engine
// through seeded failpoint schedules and targeted per-shard faults, and
// asserts the fault-isolation contract:
//
//  * QUARANTINE — a permanent WAL append failure on shard i quarantines
//    only that shard: the op still ACKs, the coordinator stays writable,
//    reads and ranked search stay byte-identical to a fault-free
//    unsharded engine fed the same acked prefix (the journal keeps the
//    shard's memory state in lockstep while its durability lags).
//  * SELF-HEALING — the background healer rebuilds the failed shard from
//    disk, the coordinator drains the catch-up journal onto it and
//    rejoins it; post-heal state is fingerprint-identical to the
//    unsharded reference at EVERY kill point, and survives Close/Open.
//  * FALLBACK — what quarantine cannot absorb (journal overflow, heal
//    starvation) degrades to the PR-9 poison + full-recovery path, which
//    rewinds every shard to the common durable prefix.
//
// Schedules and kill points are seeded and replayable. One honest
// caveat: once a heal is in flight, background healer threads interleave
// with the coordinator, so probability-trigger draw ORDER (and hence the
// exact acked prefix) can vary between runs — every assertion below is
// therefore phrased against the prefix a run actually acked, never
// against a precomputed prefix length.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/snapshot.h"
#include "datagen/corpus.h"
#include "persist/durable_engine.h"
#include "persist/wal.h"
#include "search/ranker.h"
#include "search/search_engine.h"
#include "shard/manifest.h"
#include "shard/sharded_engine.h"
#include "util/failpoint.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/rng.h"

#ifndef STORYPIVOT_FAILPOINTS

// The whole harness depends on injection sites being compiled in.
TEST(ShardChaosTest, RequiresFailpointBuild) {
  GTEST_SKIP() << "built without STORYPIVOT_FAILPOINTS; sharded chaos "
                  "tests need injection sites compiled in";
}

#else  // STORYPIVOT_FAILPOINTS

namespace storypivot {
namespace {

using failpoint::OneShot;
using failpoint::Probability;
using failpoint::Registry;
using persist::DurableEngine;
using persist::FsyncPolicy;
using search::Field;
using search::MatchMode;
using search::ParsedQuery;
using search::SearchOptions;
using search::StoryHit;
using shard::ShardedEngine;
using shard::ShardHealth;
using shard::ShardOptions;

::testing::AssertionResult IsOk(const Status& status) {
  if (status.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << status.ToString();
}
template <typename T>
::testing::AssertionResult IsOk(const Result<T>& result) {
  return IsOk(result.status());
}

#define ASSERT_OK(expr) ASSERT_TRUE(IsOk((expr)))
#define EXPECT_OK(expr) EXPECT_TRUE(IsOk((expr)))

void RemoveDirRecursive(const std::string& path) {
  if (!FileExists(path)) return;
  Result<std::vector<std::string>> names = ListDirectory(path);
  if (names.ok()) {
    for (const std::string& entry : names.value()) {
      RemoveDirRecursive(path + "/" + entry);
    }
    IgnoreError(RemoveDirectory(path));
    return;
  }
  IgnoreError(RemoveFile(path));
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/sp_shchaos_" + name;
  RemoveDirRecursive(dir);
  SP_CHECK_OK(CreateDirectories(dir));
  return dir;
}

/// Chaos knobs: every acked record durable (so the durable prefix IS
/// the crash-recovery contract), small segments to force rotations,
/// no-op sleeps so retry and heal backoff cost no wall-clock time.
ShardOptions ChaosShardOptions() {
  ShardOptions options;
  options.num_shards = 2;
  options.durability.wal.fsync = FsyncPolicy::kEveryRecord;
  options.durability.wal.segment_bytes = 16 << 10;
  options.durability.wal.retry_sleep = [](uint64_t) {};
  options.heal_retry_sleep = [](uint64_t) {};
  return options;
}

// --- Operation walks --------------------------------------------------------
//
// The same seeded-walk shape as shard_test.cc: one mutation stream in
// data form, replayable against a ShardedEngine (under faults) and a
// plain StoryPivotEngine (the fault-free reference).

enum class OpKind {
  kImport,
  kRegisterSource,
  kAddSnippet,
  kAddSnippets,
  kRemoveSnippet,
  kRemoveSource,
  kRefine,
  kAlign,
};

struct PlanOp {
  OpKind kind = OpKind::kAddSnippet;
  std::string text;
  uint64_t id64 = 0;
  SourceId source = kInvalidSourceId;
  Snippet snippet;
  std::vector<Snippet> batch;
};

struct Plan {
  datagen::Corpus corpus;
  std::vector<PlanOp> ops;
};

Plan MakeWalk(uint64_t seed, size_t total_ops) {
  Plan plan;
  datagen::CorpusConfig config;
  config.seed = seed * 7919 + 11;
  config.num_sources = 4;
  config.num_stories = 8;
  config.target_num_snippets = static_cast<int>(total_ops * 4 + 60);
  plan.corpus = datagen::CorpusGenerator(config).Generate();

  plan.ops.push_back(PlanOp{.kind = OpKind::kImport});
  std::vector<SourceId> live_sources;
  SourceId next_source = 0;
  for (const SourceInfo& source : plan.corpus.sources) {
    plan.ops.push_back(
        PlanOp{.kind = OpKind::kRegisterSource, .text = source.name});
    live_sources.push_back(next_source++);
  }

  Pcg32 rng(seed * 0x9e3779b9ULL + 1, 54);
  size_t next_corpus = 0;
  SnippetId next_id = 0;
  std::vector<std::pair<SnippetId, SourceId>> live;
  auto take = [&](SourceId source) {
    SP_CHECK(next_corpus < plan.corpus.snippets.size());
    Snippet snippet = plan.corpus.snippets[next_corpus++];
    snippet.id = kInvalidSnippetId;
    snippet.source = source;
    live.emplace_back(next_id++, source);
    return snippet;
  };
  auto random_source = [&]() {
    return live_sources[rng.NextBounded(
        static_cast<uint32_t>(live_sources.size()))];
  };
  while (plan.ops.size() < total_ops) {
    const uint32_t roll = rng.NextBounded(100);
    PlanOp op;
    if (roll < 8) {
      op.kind = OpKind::kAlign;
    } else if (roll < 16) {
      op.kind = OpKind::kRefine;
    } else if (roll < 24 && !live.empty()) {
      op.kind = OpKind::kRemoveSnippet;
      const size_t pick = rng.NextBounded(static_cast<uint32_t>(live.size()));
      op.id64 = live[pick].first;
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    } else if (roll < 28 && live_sources.size() > 2) {
      op.kind = OpKind::kRemoveSource;
      const size_t pick =
          rng.NextBounded(static_cast<uint32_t>(live_sources.size()));
      op.source = live_sources[pick];
      live_sources.erase(live_sources.begin() +
                         static_cast<ptrdiff_t>(pick));
      live.erase(std::remove_if(live.begin(), live.end(),
                                [&](const auto& entry) {
                                  return entry.second == op.source;
                                }),
                 live.end());
    } else if (roll < 32 && live_sources.size() < 6) {
      op.kind = OpKind::kRegisterSource;
      op.text = "extra-" + std::to_string(next_source);
      live_sources.push_back(next_source++);
    } else if (roll < 46) {
      op.kind = OpKind::kAddSnippets;
      const size_t batch = 2 + rng.NextBounded(3);
      for (size_t j = 0; j < batch; ++j) {
        op.batch.push_back(take(random_source()));
      }
    } else {
      op.kind = OpKind::kAddSnippet;
      op.snippet = take(random_source());
    }
    plan.ops.push_back(std::move(op));
  }
  return plan;
}

Status Apply(const Plan& plan, const PlanOp& op, ShardedEngine* engine) {
  switch (op.kind) {
    case OpKind::kImport:
      return engine->ImportVocabularies(*plan.corpus.entity_vocabulary,
                                        *plan.corpus.keyword_vocabulary);
    case OpKind::kRegisterSource:
      return engine->RegisterSource(op.text).status();
    case OpKind::kAddSnippet:
      return engine->AddSnippet(op.snippet).status();
    case OpKind::kAddSnippets:
      return engine->AddSnippets(op.batch).status();
    case OpKind::kRemoveSnippet:
      return engine->RemoveSnippet(op.id64);
    case OpKind::kRemoveSource:
      return engine->RemoveSource(op.source);
    case OpKind::kRefine:
      return engine->Refine().status();
    case OpKind::kAlign:
      return engine->Align();
  }
  return Status::Internal("unhandled op");
}

Status Apply(const Plan& plan, const PlanOp& op, StoryPivotEngine* engine) {
  switch (op.kind) {
    case OpKind::kImport:
      return engine->ImportVocabularies(*plan.corpus.entity_vocabulary,
                                        *plan.corpus.keyword_vocabulary);
    case OpKind::kRegisterSource:
      engine->RegisterSource(op.text);
      return Status::OK();
    case OpKind::kAddSnippet:
      return engine->AddSnippet(op.snippet).status();
    case OpKind::kAddSnippets:
      return engine->AddSnippets(op.batch).status();
    case OpKind::kRemoveSnippet:
      return engine->RemoveSnippet(op.id64);
    case OpKind::kRemoveSource:
      return engine->RemoveSource(op.source);
    case OpKind::kRefine:
      engine->Refine();
      return Status::OK();
    case OpKind::kAlign:
      engine->Align();
      return Status::OK();
  }
  return Status::Internal("unhandled op");
}

/// Seeded random parsed queries (raw term ids — no surface-text round
/// trip can mask a divergence).
std::vector<std::pair<ParsedQuery, SearchOptions>> MakeQueries(
    const Plan& plan, uint64_t seed) {
  std::vector<std::pair<ParsedQuery, SearchOptions>> queries;
  Pcg32 rng(seed * 31 + 7, 96);
  const auto entities =
      static_cast<uint32_t>(plan.corpus.entity_vocabulary->size());
  const auto keywords =
      static_cast<uint32_t>(plan.corpus.keyword_vocabulary->size());
  for (int q = 0; q < 4; ++q) {
    ParsedQuery query;
    const size_t num_terms = 1 + rng.NextBounded(3);
    for (size_t t = 0; t < num_terms; ++t) {
      if (rng.NextBounded(3) == 0 && entities > 0) {
        query.terms.push_back(
            {Field::kEntity,
             static_cast<text::TermId>(rng.NextBounded(entities)),
             {},
             "e"});
      } else if (keywords > 0) {
        query.terms.push_back(
            {Field::kKeyword,
             static_cast<text::TermId>(rng.NextBounded(keywords)),
             {},
             "k"});
      }
    }
    SearchOptions options;
    options.k = 1 + rng.NextBounded(10);
    options.mode = rng.NextBounded(2) == 0 ? MatchMode::kAny : MatchMode::kAll;
    queries.emplace_back(std::move(query), options);
  }
  return queries;
}

void ExpectSameHits(const std::vector<StoryHit>& expected,
                    const std::vector<StoryHit>& actual,
                    const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].source, actual[i].source) << label << " hit " << i;
    EXPECT_EQ(expected[i].story, actual[i].story) << label << " hit " << i;
    EXPECT_EQ(expected[i].score, actual[i].score) << label << " hit " << i;
    EXPECT_EQ(expected[i].matched_terms, actual[i].matched_terms)
        << label << " hit " << i;
  }
}

/// Per-RECORD expectations from a fault-free 2-shard master run:
/// fp[l] = state fingerprint after the first l global log records, and
/// records_after_op[i] = log height after the first i plan ops. (Same
/// record-granular technique as shard_test's kill-point sweep: Refine
/// decomposes into 2-3 records, and a fault can land between them.)
struct RecordTable {
  std::vector<uint64_t> fp;
  std::vector<uint64_t> records_after_op;
};

RecordTable BuildRecordTable(const Plan& plan, const std::string& dir) {
  RecordTable table;
  Result<std::unique_ptr<ShardedEngine>> opened =
      ShardedEngine::Open(dir, ChaosShardOptions());
  SP_CHECK_OK(opened.status());
  ShardedEngine& sharded = *opened.value();
  table.fp.push_back(sharded.Fingerprint());
  table.records_after_op.push_back(0);
  for (const PlanOp& op : plan.ops) {
    const uint64_t pre_fp = sharded.Fingerprint();
    const uint64_t pre_lsn = sharded.next_lsn();
    SP_CHECK_OK(Apply(plan, op, &sharded));
    const uint64_t post_fp = sharded.Fingerprint();
    const uint64_t delta = sharded.next_lsn() - pre_lsn;
    SP_CHECK(delta >= 1 && delta <= 3);
    // Intermediate records are counter-sync stubs: state stays at the
    // pre-op fingerprint until the refine record lands.
    if (delta == 3) table.fp.push_back(pre_fp);
    for (uint64_t i = (delta == 3 ? 1 : 0); i < delta; ++i) {
      table.fp.push_back(post_fp);
    }
    table.records_after_op.push_back(sharded.next_lsn());
  }
  SP_CHECK(table.fp.size() == sharded.next_lsn() + 1);
  SP_CHECK_OK(sharded.Close());
  return table;
}

/// Fingerprint of a fresh fault-free UNSHARDED engine fed ops [0, acked).
uint64_t ReferenceFingerprint(const Plan& plan, size_t acked) {
  StoryPivotEngine reference;
  for (size_t i = 0; i < acked; ++i) {
    SP_CHECK_OK(Apply(plan, plan.ops[i], &reference));
  }
  return EngineStateFingerprint(reference);
}

/// Drives healing to completion: waits for the background healer, then
/// polls until no shard is quarantined/healing (bounded — a heal that
/// cannot converge fails the caller's later assertions).
void DriveHealing(ShardedEngine& sharded) {
  for (int round = 0; round < 5; ++round) {
    sharded.WaitForHealerIdle();
    IgnoreError(sharded.PollHealth());
    bool settled = true;
    for (size_t s = 0; s < sharded.num_shards(); ++s) {
      const ShardHealth health = sharded.shard_health(s);
      if (health == ShardHealth::kQuarantined ||
          health == ShardHealth::kHealing) {
        settled = false;
      }
    }
    if (settled || sharded.degraded()) return;
  }
}

/// The per-shard fault sites a sharded schedule may arm. Same LCG
/// derivation as the unsharded chaos suite (tests/chaos_test.cc), same
/// exclusions (the withdraw/repair sites void the contract by design).
const char* const kScheduleSites[] = {
    "wal.append",     "fs.append.write", "fs.append.partial",
    "fs.append.sync", "wal.rotate",      "fs.write.write",
    "fs.write.fsync", "checkpoint.write",
};

void ArmSchedule(uint64_t seed) {
  uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (const char* site : kScheduleSites) {
    const double p = 0.12 * (static_cast<double>(next() % 1000) / 1000.0);
    const bool transient = next() % 10 < 8;
    Registry::Instance().Arm(site, Probability(p, seed, transient));
  }
}

class ShardChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::Instance().DisarmAll(); }
  void TearDown() override { Registry::Instance().DisarmAll(); }
};

// --- Quarantine: blast radius of a single-shard permanent failure ----------

TEST_F(ShardChaosTest, PermanentFailureQuarantinesOnlyThatShard) {
  const Plan plan = MakeWalk(/*seed=*/11, /*total_ops=*/26);
  // Kill append evaluation 21 (a shard-0 record mid-run) and 22 (the
  // same record's append on shard 1) — both the op's first and second
  // per-shard append must quarantine without failing the op.
  for (const uint64_t kill_eval : {uint64_t{21}, uint64_t{22}}) {
    SCOPED_TRACE("kill_eval " + std::to_string(kill_eval));
    Result<std::unique_ptr<ShardedEngine>> opened = ShardedEngine::Open(
        FreshDir("quarantine_" + std::to_string(kill_eval)),
        ChaosShardOptions());
    ASSERT_OK(opened);
    ShardedEngine& sharded = *opened.value();
    StoryPivotEngine reference;

    Registry::Instance().Arm("wal.append",
                             OneShot(kill_eval, /*transient=*/false));
    bool checked_mid_quarantine = false;
    for (const PlanOp& op : plan.ops) {
      // EVERY op acks: the failure is absorbed, not surfaced.
      ASSERT_OK(Apply(plan, op, &sharded));
      ASSERT_OK(Apply(plan, op, &reference));
      // While a shard is quarantined, reads serve the full acked
      // prefix byte-identically to the unsharded reference — the
      // journal keeps the shard's MEMORY state in lockstep even
      // though its durability lags.
      bool quarantined_now = false;
      for (size_t s = 0; s < sharded.num_shards(); ++s) {
        quarantined_now |=
            sharded.shard_health(s) == ShardHealth::kQuarantined;
      }
      EXPECT_EQ(sharded.Fingerprint(), EngineStateFingerprint(reference));
      if (quarantined_now && !checked_mid_quarantine) {
        checked_mid_quarantine = true;
        // Durability control honours the quarantine: a checkpoint
        // would cover non-durable journal entries, so it must refuse;
        // Sync skips the quarantined shard and still succeeds.
        EXPECT_EQ(sharded.Checkpoint().code(),
                  StatusCode::kFailedPrecondition);
        EXPECT_OK(sharded.Sync());
        search::SearchEngine reference_search(&reference);
        for (const auto& [query, options] : MakeQueries(plan, 11)) {
          Result<std::vector<StoryHit>> hits =
              sharded.Search(query, options);
          ASSERT_OK(hits);
          ExpectSameHits(reference_search.Search(query, options),
                         hits.value(), "mid-quarantine search");
        }
      }
    }
    Registry::Instance().DisarmAll();
    EXPECT_FALSE(sharded.degraded());

    // Exactly one shard took the hit; the other never left kHealthy.
    ShardedEngine::Stats stats = sharded.GetStats();
    uint64_t total_quarantines = 0;
    for (const ShardedEngine::ShardStats& shard : stats.shards) {
      total_quarantines += shard.quarantines;
      if (shard.quarantines == 0) {
        EXPECT_EQ(shard.health, ShardHealth::kHealthy);
        EXPECT_TRUE(shard.last_failure.ok());
      } else {
        EXPECT_FALSE(shard.last_failure.ok());
        EXPECT_TRUE(failpoint::IsInjected(shard.last_failure));
      }
    }
    EXPECT_EQ(total_quarantines, 1u);

    // Heal + rejoin: journal drained, every shard back at the global
    // lsn, state still identical to the reference.
    DriveHealing(sharded);
    ASSERT_OK(sharded.PollHealth());
    stats = sharded.GetStats();
    for (size_t s = 0; s < stats.shards.size(); ++s) {
      const ShardedEngine::ShardStats& shard = stats.shards[s];
      EXPECT_EQ(shard.quarantines == 1 ? ShardHealth::kRejoined
                                       : ShardHealth::kHealthy,
                shard.health)
          << "shard " << s;
      EXPECT_EQ(shard.journal_ops, 0u) << "shard " << s;
      EXPECT_EQ(shard.durable_lsn, shard.memory_lsn) << "shard " << s;
      EXPECT_EQ(shard.rejoins, shard.quarantines) << "shard " << s;
      if (shard.quarantines == 1) {
        EXPECT_GE(shard.heal_attempts, 1u);
      }
      EXPECT_EQ(sharded.shard(s).next_lsn(), sharded.next_lsn());
    }
    EXPECT_EQ(sharded.Fingerprint(), EngineStateFingerprint(reference));

    // Post-rejoin the deployment is fully durable again: checkpoint
    // works, and a fresh process sees the complete acked stream.
    ASSERT_OK(sharded.Checkpoint());
    const uint64_t final_lsn = sharded.next_lsn();
    const uint64_t final_fp = sharded.Fingerprint();
    const std::string dir = sharded.dir();
    ASSERT_OK(sharded.Close());
    opened.value().reset();
    ShardOptions reopen_options = ChaosShardOptions();
    reopen_options.num_shards = 0;
    Result<std::unique_ptr<ShardedEngine>> recovered =
        ShardedEngine::Open(dir, reopen_options);
    ASSERT_OK(recovered);
    EXPECT_EQ(recovered.value()->next_lsn(), final_lsn);
    EXPECT_EQ(recovered.value()->Fingerprint(), final_fp);
    ASSERT_OK(recovered.value()->Close());
  }
}

// --- The acceptance sweep: every kill point heals byte-identically ---------

TEST_F(ShardChaosTest, EveryKillPointHealsToUnshardedReference) {
  const Plan plan = MakeWalk(/*seed=*/23, /*total_ops=*/22);
  const uint64_t reference_fp = ReferenceFingerprint(plan, plan.ops.size());

  // Sweep EVERY wal.append evaluation: k walks the full per-shard
  // append stream (owner natives and kShardSync stubs alike) until a
  // run where the one-shot never fires — complete kill-point coverage.
  uint64_t covered = 0;
  for (uint64_t kill_eval = 1;; ++kill_eval) {
    ASSERT_LT(kill_eval, 500u) << "kill sweep failed to terminate";
    SCOPED_TRACE("kill_eval " + std::to_string(kill_eval));
    const std::string dir = FreshDir("kill_sweep");
    Result<std::unique_ptr<ShardedEngine>> opened =
        ShardedEngine::Open(dir, ChaosShardOptions());
    ASSERT_OK(opened);
    ShardedEngine& sharded = *opened.value();
    Registry::Instance().Arm("wal.append",
                             OneShot(kill_eval, /*transient=*/false));
    for (const PlanOp& op : plan.ops) {
      ASSERT_OK(Apply(plan, op, &sharded));
    }
    const bool fired = Registry::Instance().Stats("wal.append").fires > 0;
    Registry::Instance().DisarmAll();

    DriveHealing(sharded);
    ASSERT_OK(sharded.PollHealth());
    ASSERT_FALSE(sharded.degraded());
    const ShardedEngine::Stats stats = sharded.GetStats();
    uint64_t total_quarantines = 0;
    for (size_t s = 0; s < stats.shards.size(); ++s) {
      total_quarantines += stats.shards[s].quarantines;
      EXPECT_TRUE(stats.shards[s].health == ShardHealth::kHealthy ||
                  stats.shards[s].health == ShardHealth::kRejoined)
          << "shard " << s;
      EXPECT_EQ(stats.shards[s].journal_ops, 0u) << "shard " << s;
      EXPECT_EQ(sharded.shard(s).next_lsn(), sharded.next_lsn());
    }
    EXPECT_EQ(total_quarantines > 0, fired);

    // The headline: post-heal state at this kill point is byte-identical
    // to a fault-free UNSHARDED engine fed the same acked prefix (here
    // the whole plan — quarantine acked everything).
    EXPECT_EQ(sharded.Fingerprint(), reference_fp);

    // And the heal is durable: reopen sees the same state.
    ASSERT_OK(sharded.Close());
    opened.value().reset();
    ShardOptions reopen_options = ChaosShardOptions();
    reopen_options.num_shards = 0;
    Result<std::unique_ptr<ShardedEngine>> recovered =
        ShardedEngine::Open(dir, reopen_options);
    ASSERT_OK(recovered);
    EXPECT_EQ(recovered.value()->Fingerprint(), reference_fp);
    ASSERT_OK(recovered.value()->Close());

    if (!fired) break;  // k walked past the last append: sweep complete.
    ++covered;
  }
  // The sweep must have actually swept (2 shards x ~1.2 records/op).
  EXPECT_GT(covered, 40u);
}

// --- Seeded schedules over per-shard fault sites ---------------------------

TEST_F(ShardChaosTest, FiftySeededSchedulesKeepAckedPrefixRecoverable) {
  const Plan plan = MakeWalk(/*seed=*/37, /*total_ops=*/36);
  const RecordTable table =
      BuildRecordTable(plan, FreshDir("sweep_master"));

  int acked_all_runs = 0;
  int quarantine_runs = 0;
  int degraded_runs = 0;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::string dir = FreshDir("sweep");
    ArmSchedule(seed);
    size_t acked = 0;
    bool opened_ok = false;
    {
      Result<std::unique_ptr<ShardedEngine>> opened =
          ShardedEngine::Open(dir, ChaosShardOptions());
      // Creating the deployment writes the manifest + segments under
      // the armed schedule; a run whose create dies is skipped.
      if (!opened.ok()) {
        Registry::Instance().DisarmAll();
        continue;
      }
      opened_ok = true;
      ShardedEngine& sharded = *opened.value();
      for (const PlanOp& op : plan.ops) {
        Status applied = Apply(plan, op, &sharded);
        if (applied.ok()) {
          ++acked;
          continue;
        }
        // With quarantine on, an op only fails once the coordinator
        // poisoned itself (journal overflow, failed rejoin, torn
        // multi-shard op) — the PR-9 fallback. It must bounce all
        // further mutations with kDegraded.
        EXPECT_TRUE(sharded.degraded()) << applied.ToString();
        EXPECT_EQ(sharded.RegisterSource("bounced").status().code(),
                  StatusCode::kDegraded);
        ++degraded_runs;
        break;
      }
      Registry::Instance().DisarmAll();

      uint64_t total_quarantines = 0;
      for (const ShardedEngine::ShardStats& shard :
           sharded.GetStats().shards) {
        total_quarantines += shard.quarantines;
      }
      if (total_quarantines > 0) ++quarantine_runs;

      if (acked == plan.ops.size() && !sharded.degraded()) {
        ++acked_all_runs;
        // Live reads at the acked prefix match the fault-free
        // reference even before healing finishes...
        EXPECT_EQ(sharded.Fingerprint(),
                  table.fp[table.records_after_op[acked]]);
        // ...and healing converges to a fully durable deployment.
        DriveHealing(sharded);
        if (!sharded.degraded()) {
          ASSERT_OK(sharded.PollHealth());
          EXPECT_OK(sharded.Checkpoint());
          for (size_t s = 0; s < sharded.num_shards(); ++s) {
            EXPECT_EQ(sharded.shard(s).next_lsn(), sharded.next_lsn());
          }
        }
      }
      // CRASH: destroy without Close. Any catch-up journal dies with
      // the process — quarantine acks are memory acks whose durability
      // intentionally lags (DESIGN.md §17).
    }
    if (!opened_ok) continue;

    // Recovery lands on SOME record-stream prefix of the acked run —
    // prefix consistency survives every schedule, even those that
    // crashed mid-quarantine or mid-heal.
    ShardOptions reopen_options = ChaosShardOptions();
    reopen_options.num_shards = 0;
    Result<std::unique_ptr<ShardedEngine>> recovered =
        ShardedEngine::Open(dir, reopen_options);
    ASSERT_OK(recovered);
    const uint64_t prefix = recovered.value()->next_lsn();
    ASSERT_LT(prefix, table.fp.size());
    EXPECT_EQ(recovered.value()->Fingerprint(), table.fp[prefix]);
    EXPECT_OK(recovered.value()->RegisterSource("post-recovery").status());
    ASSERT_OK(recovered.value()->Close());
  }
  // The schedule space must cover both the absorbed and the clean
  // outcome, or the sweep is vacuous.
  EXPECT_GT(quarantine_runs, 0);
  EXPECT_GT(acked_all_runs, 0);
}

// --- Fallback: journal overflow degrades to full recovery ------------------

TEST_F(ShardChaosTest, JournalOverflowFallsBackToFullRecovery) {
  const Plan plan = MakeWalk(/*seed=*/41, /*total_ops=*/30);
  const RecordTable table =
      BuildRecordTable(plan, FreshDir("overflow_master"));

  const std::string dir = FreshDir("overflow");
  ShardOptions options = ChaosShardOptions();
  // A journal this small must overflow within a few quarantined ops.
  options.durability.quarantine_max_journal_ops = 4;
  Result<std::unique_ptr<ShardedEngine>> opened =
      ShardedEngine::Open(dir, options);
  ASSERT_OK(opened);
  ShardedEngine& sharded = *opened.value();

  constexpr size_t kCleanOps = 8;
  for (size_t i = 0; i < kCleanOps; ++i) {
    ASSERT_OK(Apply(plan, plan.ops[i], &sharded));
  }
  const uint64_t durable_records = sharded.next_lsn();

  // The next append dies permanently AND the healer is starved (every
  // rebuild's segment read fails), so the journal can only grow.
  Registry::Instance().Arm("wal.append", OneShot(1, /*transient=*/false));
  Registry::Instance().Arm("fs.read.open",
                           failpoint::EveryNth(1, /*transient=*/false));
  size_t acked = kCleanOps;
  Status failure;
  for (size_t i = kCleanOps; i < plan.ops.size(); ++i) {
    failure = Apply(plan, plan.ops[i], &sharded);
    if (!failure.ok()) break;
    ++acked;
  }
  ASSERT_FALSE(failure.ok()) << "journal never overflowed";
  EXPECT_LE(acked, kCleanOps + 5u);  // 4-op journal + the overflowing op.
  EXPECT_TRUE(sharded.degraded());
  EXPECT_EQ(sharded.RegisterSource("bounced").status().code(),
            StatusCode::kDegraded);

  // The starved heal is observable: attempts were made, all failed.
  sharded.WaitForHealerIdle();
  ShardedEngine::Stats stats = sharded.GetStats();
  uint64_t heal_attempts = 0;
  bool saw_heal_error = false;
  for (const ShardedEngine::ShardStats& shard : stats.shards) {
    heal_attempts += shard.heal_attempts;
    saw_heal_error |= !shard.heal_error.ok();
  }
  EXPECT_GE(heal_attempts, 1u);
  EXPECT_TRUE(saw_heal_error);

  // Full recovery: the journal is gone, every shard rewinds to the
  // common durable prefix — exactly the pre-fault record stream.
  Registry::Instance().DisarmAll();
  ASSERT_OK(sharded.Reopen());
  EXPECT_FALSE(sharded.degraded());
  EXPECT_EQ(sharded.next_lsn(), durable_records);
  EXPECT_EQ(sharded.Fingerprint(), table.fp[durable_records]);
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    EXPECT_EQ(sharded.shard_health(s), ShardHealth::kHealthy);
  }

  // And the deployment takes the rest of the plan cleanly.
  for (size_t i = kCleanOps; i < plan.ops.size(); ++i) {
    ASSERT_OK(Apply(plan, plan.ops[i], &sharded));
  }
  EXPECT_EQ(sharded.Fingerprint(),
            ReferenceFingerprint(plan, plan.ops.size()));
  ASSERT_OK(sharded.Close());
}

// --- Healer concurrency (the TSan target) ----------------------------------

TEST_F(ShardChaosTest, RepeatedQuarantineCyclesHealConcurrently) {
  const Plan plan = MakeWalk(/*seed=*/53, /*total_ops=*/60);
  Result<std::unique_ptr<ShardedEngine>> opened =
      ShardedEngine::Open(FreshDir("cycles"), ChaosShardOptions());
  ASSERT_OK(opened);
  ShardedEngine& sharded = *opened.value();
  StoryPivotEngine reference;

  // Six quarantine/heal/rejoin cycles, each racing the background
  // healer against live coordinator mutations: the kill fires early in
  // a slice, so the heal, the journal drain and the rejoin all overlap
  // with subsequent acks. TSan watches the slot-table handoff.
  constexpr size_t kSlice = 10;
  for (size_t cycle = 0; cycle < plan.ops.size() / kSlice; ++cycle) {
    SCOPED_TRACE("cycle " + std::to_string(cycle));
    Registry::Instance().Arm(
        "wal.append", OneShot(1 + cycle % 3, /*transient=*/false));
    for (size_t i = cycle * kSlice; i < (cycle + 1) * kSlice; ++i) {
      ASSERT_OK(Apply(plan, plan.ops[i], &sharded));
      ASSERT_OK(Apply(plan, plan.ops[i], &reference));
    }
    Registry::Instance().DisarmAll();
    DriveHealing(sharded);
    ASSERT_OK(sharded.PollHealth());
    EXPECT_EQ(sharded.Fingerprint(), EngineStateFingerprint(reference));
  }

  ShardedEngine::Stats stats = sharded.GetStats();
  uint64_t total_quarantines = 0;
  uint64_t total_rejoins = 0;
  for (const ShardedEngine::ShardStats& shard : stats.shards) {
    total_quarantines += shard.quarantines;
    total_rejoins += shard.rejoins;
  }
  EXPECT_GE(total_quarantines, 5u);
  EXPECT_EQ(total_rejoins, total_quarantines);
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    EXPECT_EQ(sharded.shard(s).next_lsn(), sharded.next_lsn());
  }
  ASSERT_OK(sharded.Close());
}

// --- WAL-directory registry release on partial open/reopen failure ---------

TEST_F(ShardChaosTest, PartialOpenFailureReleasesAllWalDirClaims) {
  const std::string dir = FreshDir("partial_open");
  {
    Result<std::unique_ptr<ShardedEngine>> created =
        ShardedEngine::Open(dir, ChaosShardOptions());
    ASSERT_OK(created);
    ASSERT_OK(created.value()->Close());
  }

  // Serial recovery, and the SECOND appender open dies: shard-000 has
  // already claimed its WAL directory when shard-001 fails the open.
  // The failed Open must release every claim it took.
  ShardOptions options = ChaosShardOptions();
  options.num_shards = 0;
  options.recovery_threads = 1;
  Registry::Instance().Arm("fs.append.open",
                           OneShot(2, /*transient=*/false));
  Result<std::unique_ptr<ShardedEngine>> failed =
      ShardedEngine::Open(dir, options);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failpoint::IsInjected(failed.status()));
  Registry::Instance().DisarmAll();

  // shard-000's directory must be claimable again — by a bare
  // DurableEngine and by a full ShardedEngine::Open.
  {
    Result<std::unique_ptr<DurableEngine>> direct =
        DurableEngine::Open(dir + "/" + shard::ShardDirName(0));
    ASSERT_OK(direct);
    ASSERT_OK(direct.value()->Close());
  }
  Result<std::unique_ptr<ShardedEngine>> reopened =
      ShardedEngine::Open(dir, options);
  ASSERT_OK(reopened);
  ASSERT_OK(reopened.value()->Close());
}

TEST_F(ShardChaosTest, PartialReopenFailureReleasesAllWalDirClaims) {
  const Plan plan = MakeWalk(/*seed=*/61, /*total_ops=*/16);
  const std::string dir = FreshDir("partial_reopen");
  ShardOptions options = ChaosShardOptions();
  options.recovery_threads = 1;
  // Quarantine off: this test needs the poison path to force a Reopen.
  options.quarantine = false;
  Result<std::unique_ptr<ShardedEngine>> opened =
      ShardedEngine::Open(dir, options);
  ASSERT_OK(opened);
  ShardedEngine& sharded = *opened.value();
  size_t acked = 0;
  Registry::Instance().Arm("wal.append", OneShot(9, /*transient=*/false));
  for (const PlanOp& op : plan.ops) {
    if (!Apply(plan, op, &sharded).ok()) break;
    ++acked;
  }
  ASSERT_TRUE(sharded.degraded());
  Registry::Instance().DisarmAll();

  // Reopen dies after shard-000 was already rebuilt (and re-claimed):
  // the failed Reopen leaves the engine degraded, and a later Reopen
  // must not trip over leaked claims.
  Registry::Instance().Arm("fs.append.open",
                           OneShot(2, /*transient=*/false));
  ASSERT_FALSE(sharded.Reopen().ok());
  EXPECT_TRUE(sharded.degraded());
  Registry::Instance().DisarmAll();

  ASSERT_OK(sharded.Reopen());
  EXPECT_FALSE(sharded.degraded());
  EXPECT_OK(sharded.RegisterSource("post-reopen").status());
  ASSERT_OK(sharded.Close());
}

}  // namespace
}  // namespace storypivot

#endif  // STORYPIVOT_FAILPOINTS
