// Randomised invariant tests: drive an engine through long random
// sequences of mutations (ingest, document removal, snippet removal,
// source add/remove, align, refine) and verify after every phase that all
// internal structures agree with a from-first-principles recomputation.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/engine.h"
#include "datagen/corpus.h"
#include "util/logging.h"
#include "util/rng.h"

namespace storypivot {
namespace {

/// Checks every cross-structure invariant of an engine.
void CheckEngineInvariants(const StoryPivotEngine& engine) {
  size_t snippets_in_partitions = 0;
  for (const StorySet* partition : engine.partitions()) {
    // (1) Assignment maps and story membership agree; aggregates match a
    // recomputation from the member snippets.
    size_t snippets_in_stories = 0;
    for (const auto& [story_id, story] : partition->stories()) {
      ASSERT_FALSE(story.empty()) << "empty stories must be deleted";
      snippets_in_stories += story.size();

      text::TermVector entities, keywords;
      std::set<SourceId> sources;
      Timestamp begin = 0, end = 0;
      bool first = true;
      Timestamp prev_ts = 0;
      for (SnippetId sid : story.snippets()) {
        ASSERT_EQ(partition->StoryOf(sid), story_id);
        const Snippet* snippet = engine.store().Find(sid);
        ASSERT_NE(snippet, nullptr);
        ASSERT_EQ(snippet->source, partition->source());
        // (2) Story members are time-ordered.
        if (!first) {
          EXPECT_LE(prev_ts, snippet->timestamp);
        }
        prev_ts = snippet->timestamp;
        entities.Merge(snippet->entities);
        keywords.Merge(snippet->keywords);
        sources.insert(snippet->source);
        if (first) {
          begin = end = snippet->timestamp;
          first = false;
        } else {
          begin = std::min(begin, snippet->timestamp);
          end = std::max(end, snippet->timestamp);
        }
      }
      // (3) Incremental aggregates equal recomputed aggregates.
      EXPECT_TRUE(story.entities() == entities)
          << "story " << story_id << " entity aggregate drifted";
      EXPECT_TRUE(story.keywords() == keywords)
          << "story " << story_id << " keyword aggregate drifted";
      EXPECT_EQ(story.sources(), sources);
      EXPECT_EQ(story.start_time(), begin);
      EXPECT_EQ(story.end_time(), end);
    }
    // (4) The temporal index covers exactly the assigned snippets.
    EXPECT_EQ(partition->snippet_times().size(), snippets_in_stories);
    for (const auto& [ts, sid] : partition->snippet_times().entries()) {
      const Snippet* snippet = engine.store().Find(sid);
      ASSERT_NE(snippet, nullptr);
      EXPECT_EQ(snippet->timestamp, ts);
      EXPECT_NE(partition->StoryOf(sid), kInvalidStoryId);
    }
    snippets_in_partitions += snippets_in_stories;
  }
  // (5) Every stored snippet is assigned in exactly one partition.
  EXPECT_EQ(engine.store().size(), snippets_in_partitions);

  // (6) Document frequency equals the number of stored snippets (each
  // snippet contributes one "document").
  EXPECT_EQ(engine.document_frequency().num_documents(),
            static_cast<int64_t>(engine.store().size()));
}

/// Checks alignment-result invariants against the engine state.
void CheckAlignmentInvariants(const StoryPivotEngine& engine) {
  ASSERT_TRUE(engine.has_alignment());
  const AlignmentResult& alignment = engine.alignment();

  // (1) Integrated stories exactly partition the per-source stories.
  std::set<std::pair<SourceId, StoryId>> covered;
  for (const IntegratedStory& integrated : alignment.stories) {
    EXPECT_FALSE(integrated.members.empty());
    for (const auto& [source, story_id] : integrated.members) {
      EXPECT_TRUE(covered.insert({source, story_id}).second)
          << "story in two integrated stories";
      const StorySet* partition = engine.partition(source);
      ASSERT_NE(partition, nullptr);
      EXPECT_NE(partition->FindStory(story_id), nullptr);
    }
  }
  size_t total_stories = 0;
  for (const StorySet* partition : engine.partitions()) {
    for (const auto& [story_id, story] : partition->stories()) {
      EXPECT_TRUE(covered.contains({partition->source(), story_id}))
          << "story missing from alignment";
      ++total_stories;
    }
  }
  EXPECT_EQ(covered.size(), total_stories);

  // (2) integrated_of covers every snippet, consistently with members.
  EXPECT_EQ(alignment.integrated_of.size(), engine.store().size());
  for (const auto& [sid, index] : alignment.integrated_of) {
    ASSERT_LT(index, alignment.stories.size());
    EXPECT_TRUE(alignment.stories[index].merged.Contains(sid));
  }

  // (3) Roles exist for every snippet; counterparts are symmetric-ish:
  // a counterpart is in the same integrated story and a different source.
  EXPECT_EQ(alignment.roles.size(), engine.store().size());
  for (const auto& [sid, other] : alignment.counterpart) {
    const Snippet* a = engine.store().Find(sid);
    const Snippet* b = engine.store().Find(other);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a->source, b->source);
    EXPECT_EQ(alignment.integrated_of.at(sid),
              alignment.integrated_of.at(other));
    EXPECT_EQ(alignment.roles.at(sid), SnippetRole::kAligning);
  }
}

struct PropertyParam {
  uint64_t seed;
  bool incremental_alignment;
  IdentificationMode mode;
};

class EngineProperty : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(EngineProperty, RandomOpSequencePreservesInvariants) {
  const PropertyParam& param = GetParam();
  datagen::CorpusConfig corpus_config;
  corpus_config.seed = param.seed;
  corpus_config.num_sources = 4;
  corpus_config.num_stories = 10;
  corpus_config.target_num_snippets = 600;
  datagen::Corpus corpus =
      datagen::CorpusGenerator(corpus_config).Generate();

  EngineConfig config;
  config.mode = param.mode;
  config.incremental_alignment = param.incremental_alignment;
  StoryPivotEngine engine(config);
  SP_CHECK(engine
               .ImportVocabularies(*corpus.entity_vocabulary,
                                   *corpus.keyword_vocabulary)
               .ok());
  for (const SourceInfo& s : corpus.sources) engine.RegisterSource(s.name);

  Pcg32 rng(param.seed, /*stream=*/99);
  size_t next_snippet = 0;
  std::vector<SnippetId> live;

  for (int step = 0; step < 40; ++step) {
    double dice = rng.NextDouble();
    if (dice < 0.55 && next_snippet < corpus.snippets.size()) {
      // Ingest a burst.
      size_t burst = 5 + rng.NextBounded(25);
      for (size_t k = 0; k < burst && next_snippet < corpus.snippets.size();
           ++k) {
        Snippet copy = corpus.snippets[next_snippet++];
        copy.id = kInvalidSnippetId;
        live.push_back(engine.AddSnippet(std::move(copy)).value());
      }
    } else if (dice < 0.75 && !live.empty()) {
      // Remove random snippets (with split checks).
      size_t removals = 1 + rng.NextBounded(5);
      for (size_t k = 0; k < removals && !live.empty(); ++k) {
        size_t pick = rng.NextBounded(static_cast<uint32_t>(live.size()));
        SnippetId victim = live[pick];
        live.erase(live.begin() + pick);
        if (engine.store().Find(victim) != nullptr) {
          ASSERT_TRUE(engine.RemoveSnippet(victim).ok());
        }
      }
    } else if (dice < 0.85) {
      engine.Align();
      CheckAlignmentInvariants(engine);
    } else if (dice < 0.95) {
      engine.Refine();
      CheckAlignmentInvariants(engine);
    }
    if (step % 5 == 0) CheckEngineInvariants(engine);
  }
  CheckEngineInvariants(engine);
  engine.Align();
  CheckAlignmentInvariants(engine);
}

INSTANTIATE_TEST_SUITE_P(
    Sequences, EngineProperty,
    ::testing::Values(
        PropertyParam{1, false, IdentificationMode::kTemporal},
        PropertyParam{2, false, IdentificationMode::kTemporal},
        PropertyParam{3, true, IdentificationMode::kTemporal},
        PropertyParam{4, true, IdentificationMode::kTemporal},
        PropertyParam{5, false, IdentificationMode::kComplete},
        PropertyParam{6, true, IdentificationMode::kComplete}));

}  // namespace
}  // namespace storypivot
