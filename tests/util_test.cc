#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "util/csv.h"
#include "util/failpoint.h"
#include "util/fs.h"
#include "util/hash.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/sync.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace storypivot {
namespace {

// --------------------------- Status / Result ------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("snippet 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "snippet 42");
  EXPECT_EQ(s.ToString(), "NotFound: snippet 42");
}

TEST(StatusTest, AllFactoryFunctionsSetDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::OutOfRange("").code(),
      Status::FailedPrecondition("").code(), Status::Internal("").code(),
      Status::IoError("").code(),         Status::Degraded("").code(),
  };
  EXPECT_EQ(codes.size(), 8u);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeName(StatusCode::kDegraded), "Degraded");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Internal("boom");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

using ResultDeathTest = ::testing::Test;

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r = Status::NotFound("no such row");
  EXPECT_DEATH({ [[maybe_unused]] int v = r.value(); },
               "Result<T>::value\\(\\) on error status: "
               "NotFound: no such row");
}

TEST(ResultDeathTest, DieBadResultAccessMessageFormat) {
  // The message must render as "<CodeName>: <message>" so operators can
  // grep crash logs by status code.
  Result<std::string> r = Status::IoError("disk on fire");
  EXPECT_DEATH({ [[maybe_unused]] auto v = std::move(r).value(); },
               "IoError: disk on fire");
}

TEST(ResultDeathTest, CheckOkAbortsWithFileAndLine) {
  EXPECT_DEATH(SP_CHECK_OK(Status::Internal("bad invariant")),
               "util_test\\.cc.*SP_CHECK_OK failed: Internal: "
               "bad invariant");
}

// ------------------------- status macros -----------------------------------

Status FailWhen(bool fail) {
  if (fail) return Status::InvalidArgument("asked to fail");
  return Status::OK();
}

Status PropagateWith(bool fail, bool* reached_end) {
  RETURN_IF_ERROR(FailWhen(fail));
  *reached_end = true;
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  bool reached_end = false;
  Status status = PropagateWith(true, &reached_end);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(reached_end);
}

TEST(StatusMacrosTest, ReturnIfErrorPassesThroughOk) {
  bool reached_end = false;
  Status status = PropagateWith(false, &reached_end);
  EXPECT_TRUE(status.ok());
  EXPECT_TRUE(reached_end);
}

Result<int> MakeIntResult(bool fail) {
  if (fail) return Status::OutOfRange("no int for you");
  return 7;
}

Result<int> DoubleViaAssignOrReturn(bool fail) {
  ASSIGN_OR_RETURN(int got, MakeIntResult(fail));
  return got * 2;
}

TEST(StatusMacrosTest, AssignOrReturnUnwrapsValue) {
  Result<int> doubled = DoubleViaAssignOrReturn(false);
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value(), 14);
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesError) {
  Result<int> doubled = DoubleViaAssignOrReturn(true);
  EXPECT_FALSE(doubled.ok());
  EXPECT_EQ(doubled.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(doubled.status().message(), "no int for you");
}

Status AssignToExistingLvalue(std::string* out) {
  // ASSIGN_OR_RETURN also works with an existing lvalue target, and the
  // RETURN_IF_ERROR overload set accepts Result expressions directly.
  ASSIGN_OR_RETURN(*out, Result<std::string>(std::string("ok payload")));
  RETURN_IF_ERROR(Result<int>(5));
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnIntoExistingLvalue) {
  std::string out;
  Status status = AssignToExistingLvalue(&out);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(out, "ok payload");
}

TEST(StatusMacrosTest, IgnoreErrorCompilesForStatusAndResult) {
  IgnoreError(Status::Internal("deliberately dropped"));
  IgnoreError(MakeIntResult(true));
}

// --------------------------------- RNG ------------------------------------

TEST(Pcg32Test, DeterministicForSeed) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Pcg32Test, DistinctStreamsDiffer) {
  Pcg32 a(123, 1), b(123, 2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Pcg32Test, NextBoundedStaysInBounds) {
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Pcg32Test, NextBoundedIsRoughlyUniform) {
  Pcg32 rng(7);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9);
    EXPECT_LT(c, kDraws / 10 * 1.1);
  }
}

TEST(Pcg32Test, NextInRangeInclusiveBounds) {
  Pcg32 rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32Test, NextDoubleInUnitInterval) {
  Pcg32 rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Pcg32Test, BernoulliEdgeCases) {
  Pcg32 rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(Pcg32Test, GaussianMoments) {
  Pcg32 rng(19);
  double sum = 0, sq = 0;
  const int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(Pcg32Test, ExponentialMean) {
  Pcg32 rng(23);
  double sum = 0;
  const int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.NextExponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.2);
}

TEST(Pcg32Test, ShufflePreservesElements) {
  Pcg32 rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ZipfDistributionTest, HeadIsHeavier) {
  Pcg32 rng(31);
  ZipfDistribution dist(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[dist.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 2000);  // ~1/H(100) ~= 19% of draws.
}

TEST(ZipfDistributionTest, ZeroExponentIsUniform) {
  Pcg32 rng(37);
  ZipfDistribution dist(10, 0.0);
  std::vector<int> counts(10, 0);
  const int kN = 50000;
  for (int i = 0; i < kN; ++i) ++counts[dist.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, kN / 10, kN / 10 * 0.15);
}

// Property sweep: NextBounded never escapes its bound for many bounds.
class RngBoundSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RngBoundSweep, AlwaysBelowBound) {
  Pcg32 rng(GetParam());
  uint32_t bound = GetParam();
  for (int i = 0; i < 500; ++i) {
    EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(1u, 2u, 3u, 7u, 16u, 100u,
                                           1000u, 1u << 20, 0x80000000u));

// --------------------------------- Hash -----------------------------------

TEST(HashTest, Fnv1aKnownValues) {
  // FNV-1a 64-bit reference values.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(HashTest, Fnv1aDistinguishesStrings) {
  EXPECT_NE(Fnv1a64("ukraine"), Fnv1a64("russia"));
  EXPECT_NE(Fnv1a64("ab"), Fnv1a64("ba"));
}

TEST(HashTest, SplitMixAvalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  int total = 0;
  for (uint64_t x = 1; x < 100; ++x) {
    uint64_t diff = SplitMix64(x) ^ SplitMix64(x ^ 1);
    total += __builtin_popcountll(diff);
  }
  EXPECT_NEAR(total / 99.0, 32.0, 6.0);
}

TEST(HashTest, HashWithSeedIndependence) {
  // The same element under different seeds should look unrelated.
  uint64_t x = 12345;
  std::set<uint64_t> values;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    values.insert(HashWithSeed(x, seed));
  }
  EXPECT_EQ(values.size(), 64u);
}

// -------------------------------- Strings ---------------------------------

TEST(StringsTest, SplitBasic) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitEmptyString) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join(std::vector<std::string>{}, ","), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(ToLower("Ukraine CRISIS 2014"), "ukraine crisis 2014");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("storypivot", "story"));
  EXPECT_FALSE(StartsWith("story", "storypivot"));
  EXPECT_TRUE(EndsWith("alignment.cc", ".cc"));
  EXPECT_FALSE(EndsWith(".cc", "alignment.cc"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
}

TEST(StringsTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("4x", &v));
  EXPECT_FALSE(ParseInt64("99999999999999999999999", &v));
}

TEST(StringsTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

// ---------------------------------- CSV ------------------------------------

TEST(DsvTest, SimpleRoundTrip) {
  DsvWriter writer('\t');
  writer.WriteRow({"a", "b", "c"});
  writer.WriteRow({"1", "2", "3"});
  DsvReader reader('\t');
  auto rows = reader.Parse(writer.contents());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0][1], "b");
  EXPECT_EQ(rows.value()[1][2], "3");
}

TEST(DsvTest, QuotedFieldsRoundTrip) {
  DsvWriter writer(',');
  writer.WriteRow({"plain", "with,comma", "with\"quote", "with\nnewline"});
  DsvReader reader(',');
  auto rows = reader.Parse(writer.contents());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0][1], "with,comma");
  EXPECT_EQ(rows.value()[0][2], "with\"quote");
  EXPECT_EQ(rows.value()[0][3], "with\nnewline");
}

TEST(DsvTest, UnterminatedQuoteIsError) {
  DsvReader reader(',');
  auto rows = reader.Parse("\"oops");
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rows.status().message().find("line 1"), std::string::npos)
      << rows.status().ToString();
}

TEST(DsvTest, UnterminatedQuoteErrorNamesOffendingLine) {
  DsvReader reader(',');
  auto rows = reader.Parse("a,b\nc,d\ne,\"unclosed");
  EXPECT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find("line 3"), std::string::npos)
      << rows.status().ToString();
}

TEST(DsvTest, ReadFileErrorCarriesPathAndLine) {
  std::string path = ::testing::TempDir() + "/sp_dsv_badquote.csv";
  ASSERT_TRUE(WriteStringToFile(path, "x,y\n\"broken").ok());
  DsvReader reader(',');
  auto rows = reader.ReadFile(path);
  ASSERT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find(path), std::string::npos)
      << rows.status().ToString();
  EXPECT_NE(rows.status().message().find("line 2"), std::string::npos)
      << rows.status().ToString();
  std::remove(path.c_str());
}

TEST(DsvTest, CrLfHandling) {
  DsvReader reader(',');
  auto rows = reader.Parse("a,b\r\nc,d\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[1][0], "c");
}

TEST(DsvTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/sp_dsv_test.tsv";
  DsvWriter writer('\t');
  writer.WriteRow({"x", "y"});
  ASSERT_TRUE(writer.Flush(path).ok());
  DsvReader reader('\t');
  auto rows = reader.ReadFile(path);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value()[0][0], "x");
  std::remove(path.c_str());
}

TEST(FileIoTest, MissingFileIsIoError) {
  auto contents = ReadFileToString("/nonexistent/sp/none.txt");
  EXPECT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kIoError);
}

// --------------------------------- Timer -----------------------------------

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GT(timer.ElapsedNanos(), 0);
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
  double before = timer.ElapsedSeconds();
  timer.Restart();
  EXPECT_LE(timer.ElapsedSeconds(), before + 1.0);
}

// ------------------------------ ThreadPool --------------------------------

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  int value = 0;
  // With no workers the task must complete before Submit returns.
  pool.Submit([&value] { value = 42; });
  EXPECT_EQ(value, 42);
  pool.Wait();
}

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ThreadPool pool(threads);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, 16, [&hits](size_t, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelForChunkBoundariesAreDeterministic) {
  // Chunk boundaries depend only on (n, num_chunks), never on the thread
  // count — this is what makes chunk-ordered merges reproducible.
  auto boundaries = [](size_t threads) {
    ThreadPool pool(threads);
    // lockcheck annotations are only required in src/; tests still use
    // the annotated wrappers (splint raw-sync).
    Mutex mu;
    std::vector<std::tuple<size_t, size_t, size_t>> out;
    pool.ParallelFor(103, 7, [&](size_t chunk, size_t begin, size_t end) {
      MutexLock lock(mu);
      out.emplace_back(chunk, begin, end);
    });
    std::sort(out.begin(), out.end());
    return out;
  };
  auto serial = boundaries(1);
  auto parallel = boundaries(4);
  ASSERT_EQ(serial.size(), 7u);
  EXPECT_EQ(serial, parallel);
  // Chunks tile [0, n) in order.
  size_t expected_begin = 0;
  for (const auto& [chunk, begin, end] : serial) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_LE(begin, end);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, 103u);
}

TEST(ThreadPoolTest, ParallelForHandlesDegenerateShapes) {
  ThreadPool pool(2);
  int calls = 0;
  Mutex mu;
  // Empty range: body never runs.
  pool.ParallelFor(0, 4, [&](size_t, size_t, size_t) {
    MutexLock lock(mu);
    ++calls;
  });
  EXPECT_EQ(calls, 0);
  // More chunks than items: clamped to n, every item visited once.
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, 100, [&hits](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, BoundedQueueDoesNotDeadlock) {
  // Submit far more tasks than the queue bound; producers must block and
  // drain rather than drop or deadlock.
  ThreadPool pool(2, /*max_queued=*/4);
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPoolTest, TrySubmitRejectsOnlyWhenQueueIsFull) {
  ThreadPool pool(2, /*max_queued=*/2);
  // Stall BOTH workers so the queue alone absorbs submissions.
  Mutex mu;  // lockcheck: name=util_test.TrySubmit.mu
  CondVar cv;
  int stalled = 0;
  bool release = false;
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&] {
      MutexLock lock(mu);
      ++stalled;
      cv.NotifyAll();
      while (!release) cv.Wait(mu);
    });
  }
  {
    MutexLock lock(mu);
    while (stalled != 2) cv.Wait(mu);
  }
  // Both workers are held and the queue is empty; capacity 2 accepts
  // exactly two tasks, the rest are rejected WITHOUT blocking.
  std::atomic<int> ran{0};
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (pool.TrySubmit(
            [&ran] { ran.fetch_add(1, std::memory_order_relaxed); })) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 2);
  {
    MutexLock lock(mu);
    release = true;
  }
  cv.NotifyAll();
  pool.Wait();
  EXPECT_EQ(ran.load(), 2);
  // With space again, TrySubmit accepts.
  EXPECT_TRUE(pool.TrySubmit([] {}));
}

TEST(ThreadPoolTest, TrySubmitRunsInlineWithoutWorkersOrAfterShutdown) {
  {
    ThreadPool pool(1);  // Inline pool: no workers.
    int value = 0;
    EXPECT_TRUE(pool.TrySubmit([&value] { value = 1; }));
    EXPECT_EQ(value, 1);
  }
  {
    ThreadPool pool(2);
    pool.Shutdown();
    int value = 0;
    EXPECT_TRUE(pool.TrySubmit([&value] { value = 2; }));
    EXPECT_EQ(value, 2);
  }
}

TEST(ThreadPoolTest, ShutdownDrainsPendingWorkBeforeReturning) {
  ThreadPool pool(2, /*max_queued=*/64);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&count] {
      // Slow tasks, so a backlog exists when Shutdown starts.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.Shutdown();
  // Shutdown drains the queue: every already-submitted task has run.
  EXPECT_EQ(count.load(), 64);
  // Idempotent from the owning thread (the destructor relies on this).
  pool.Shutdown();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, DestructorDrainsPendingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2, /*max_queued=*/128);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No Wait(): the destructor must drain, not drop.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SubmitAfterShutdownRunsInline) {
  ThreadPool pool(2);
  pool.Shutdown();
  int value = 0;
  // Workers are gone; the task must run inline on this thread, exactly
  // once, before Submit returns.
  pool.Submit([&value] { value = 42; });
  EXPECT_EQ(value, 42);
}

TEST(ThreadPoolTest, SubmitRacingShutdownRunsEveryTaskExactlyOnce) {
  // A producer thread submits continuously while the owner shuts the
  // pool down; whatever the interleaving, every Submit call must run its
  // task exactly once (queued-then-drained or inline on the producer).
  // Run several rounds so the race lands on both sides of stop_; under
  // the tsan preset this also proves the handoff is data-race-free.
  for (int round = 0; round < 8; ++round) {
    ThreadPool pool(2, /*max_queued=*/8);
    std::atomic<int> ran{0};
    std::atomic<int> submitted{0};
    std::thread producer([&pool, &ran, &submitted] {
      for (int i = 0; i < 200; ++i) {
        pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        submitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
    // Let the producer make some progress, then shut down mid-stream.
    while (submitted.load(std::memory_order_relaxed) < 20) {
      std::this_thread::yield();
    }
    pool.Shutdown();
    // The producer keeps submitting into the stopped pool: those tasks
    // run inline on its thread. Join before counting.
    producer.join();
    EXPECT_EQ(ran.load(), 200) << "round " << round;
  }
}

TEST(HashTest, Crc32MatchesKnownVectors) {
  // IEEE 802.3 check value for the canonical test string.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  // Incremental extension equals one-shot computation.
  uint32_t incremental = ExtendCrc32(ExtendCrc32(0, "1234"), "56789");
  EXPECT_EQ(incremental, Crc32("123456789"));
  // One-bit sensitivity: flipping any bit changes the sum.
  EXPECT_NE(Crc32("123456788"), Crc32("123456789"));
}

TEST(FsTest, WriteReadRoundTripAndAtomicReplace) {
  const std::string path = ::testing::TempDir() + "/sp_fs_roundtrip.txt";
  ASSERT_TRUE(WriteStringToFile(path, "first contents").ok());
  Result<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "first contents");
  // Overwrite is atomic (tmp + rename): no `.tmp` litter afterwards.
  ASSERT_TRUE(WriteStringToFile(path, "second contents").ok());
  EXPECT_EQ(ReadFileToString(path).value(), "second contents");
  EXPECT_FALSE(FileExists(path + ".tmp"));
  Result<uint64_t> size = FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 15u);
  ASSERT_TRUE(RemoveFile(path).ok());
  EXPECT_FALSE(FileExists(path));
}

TEST(FsTest, MissingFilesReportErrors) {
  const std::string path = ::testing::TempDir() + "/sp_fs_does_not_exist";
  EXPECT_FALSE(ReadFileToString(path).ok());
  EXPECT_FALSE(FileSize(path).ok());
  EXPECT_FALSE(RemoveFile(path).ok());
  EXPECT_FALSE(FileExists(path));
}

TEST(FsTest, AppendFilePersistsAcrossReopen) {
  const std::string path = ::testing::TempDir() + "/sp_fs_append.log";
  if (FileExists(path)) {
    ASSERT_TRUE(RemoveFile(path).ok());
  }
  {
    AppendFile file;
    ASSERT_TRUE(file.Open(path).ok());
    ASSERT_TRUE(file.Append("hello ").ok());
    ASSERT_TRUE(file.Sync().ok());
    ASSERT_TRUE(file.Append("world").ok());
    EXPECT_EQ(file.size(), 11u);
    ASSERT_TRUE(file.Close().ok());
  }
  {
    // Reopening continues at the existing length.
    AppendFile file;
    ASSERT_TRUE(file.Open(path).ok());
    EXPECT_EQ(file.size(), 11u);
    ASSERT_TRUE(file.Append("!").ok());
    ASSERT_TRUE(file.Close().ok());
    ASSERT_TRUE(file.Close().ok());  // Idempotent.
  }
  EXPECT_EQ(ReadFileToString(path).value(), "hello world!");
  ASSERT_TRUE(TruncateFile(path, 5).ok());
  EXPECT_EQ(ReadFileToString(path).value(), "hello");
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(FsTest, CreateDirectoriesAndList) {
  const std::string root = ::testing::TempDir() + "/sp_fs_tree";
  const std::string nested = root + "/a/b/c";
  ASSERT_TRUE(CreateDirectories(nested).ok());
  ASSERT_TRUE(CreateDirectories(nested).ok());  // mkdir -p idempotence.
  ASSERT_TRUE(WriteStringToFile(nested + "/zeta", "z").ok());
  ASSERT_TRUE(WriteStringToFile(nested + "/alpha", "a").ok());
  Result<std::vector<std::string>> names = ListDirectory(nested);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), (std::vector<std::string>{"alpha", "zeta"}));
  EXPECT_FALSE(ListDirectory(root + "/missing").ok());
  // rmdir semantics: refuses non-empty, removes empty, NotFound when gone.
  EXPECT_FALSE(RemoveDirectory(nested).ok());
  ASSERT_TRUE(RemoveFile(nested + "/alpha").ok());
  ASSERT_TRUE(RemoveFile(nested + "/zeta").ok());
  EXPECT_TRUE(RemoveDirectory(nested).ok());
  EXPECT_FALSE(FileExists(nested));
  EXPECT_EQ(RemoveDirectory(nested).code(), StatusCode::kNotFound);
}

// --------------------------- Permissive DSV -------------------------------

TEST(DsvPermissiveTest, QuarantinesUnterminatedQuoteAndKeepsGoodRows) {
  DsvReader reader(',');
  PermissiveDsv parsed =
      reader.ParsePermissive("a,b\nc,d\n\"torn quote,e\n");
  // The unterminated quote swallows to end-of-input; the rows before it
  // survive, the torn one is quarantined with its opening line.
  ASSERT_EQ(parsed.rows.size(), 2u);
  EXPECT_EQ(parsed.rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(parsed.rows[1], (std::vector<std::string>{"c", "d"}));
  ASSERT_EQ(parsed.skipped.size(), 1u);
  EXPECT_EQ(parsed.skipped[0].line, 3u);
  EXPECT_NE(parsed.skipped[0].reason.find("unterminated"),
            std::string::npos);
}

TEST(DsvPermissiveTest, RowLinesTrackMultilineQuotedFields) {
  DsvReader reader(',');
  PermissiveDsv parsed =
      reader.ParsePermissive("h1,h2\n\"multi\nline\",x\nlast,y\n");
  ASSERT_EQ(parsed.rows.size(), 3u);
  ASSERT_EQ(parsed.row_lines.size(), 3u);
  EXPECT_EQ(parsed.row_lines[0], 1u);
  EXPECT_EQ(parsed.row_lines[1], 2u);  // Quoted field spans lines 2-3...
  EXPECT_EQ(parsed.row_lines[2], 4u);  // ...so the next row starts at 4.
  EXPECT_TRUE(parsed.skipped.empty());
}

TEST(DsvPermissiveTest, CleanInputHasNoSkips) {
  DsvReader reader('\t');
  PermissiveDsv parsed = reader.ParsePermissive("a\tb\nc\td\n");
  EXPECT_EQ(parsed.rows.size(), 2u);
  EXPECT_TRUE(parsed.skipped.empty());
  // Strict parse agrees on well-formed input.
  Result<std::vector<std::vector<std::string>>> strict =
      reader.Parse("a\tb\nc\td\n");
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict.value(), parsed.rows);
}

// --------------------------- Retry policy ---------------------------------

Status Transient(const std::string& what) {
  return Status::IoError(what + " " +
                         std::string(failpoint::kTransientMarker));
}

TEST(RetryTest, TransientThenSuccess) {
  RetryOptions options;
  options.jitter = false;  // Assert the deterministic base schedule.
  RetryPolicy retry(options);
  std::vector<uint64_t> sleeps;
  retry.set_sleep_fn([&](uint64_t us) { sleeps.push_back(us); });
  int calls = 0;
  Status status = retry.Run("op", [&] {
    return ++calls < 3 ? Transient("flaky") : Status::OK();
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(calls, 3);
  // Exponential: 100us then 200us.
  EXPECT_EQ(sleeps, (std::vector<uint64_t>{100, 200}));
  EXPECT_EQ(retry.stats().retries, 2u);
  EXPECT_EQ(retry.stats().exhausted, 0u);
}

TEST(RetryTest, PermanentErrorIsNotRetried) {
  RetryPolicy retry;
  retry.set_sleep_fn([](uint64_t) {});
  int calls = 0;
  Status status = retry.Run("op", [&] {
    ++calls;
    return Status::IoError("disk on fire");
  });
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retry.stats().retries, 0u);
}

TEST(RetryTest, ExhaustionEscalatesWithAttemptCount) {
  RetryOptions options;
  options.max_attempts = 3;
  RetryPolicy retry(options);
  retry.set_sleep_fn([](uint64_t) {});
  int calls = 0;
  Status status = retry.Run("sync wal", [&] {
    ++calls;
    return Transient("still flaky");
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_NE(std::string(status.message()).find("after 3 attempts"),
            std::string::npos)
      << status.ToString();
  EXPECT_EQ(retry.stats().exhausted, 1u);
}

TEST(RetryTest, BackoffDoublesAndCaps) {
  RetryOptions options;
  options.max_attempts = 8;
  options.initial_backoff_us = 100;
  options.max_backoff_us = 500;
  options.jitter = false;  // Assert the deterministic base schedule.
  RetryPolicy retry(options);
  std::vector<uint64_t> sleeps;
  retry.set_sleep_fn([&](uint64_t us) { sleeps.push_back(us); });
  [[maybe_unused]] Status status =
      retry.Run("op", [] { return Transient("x"); });
  EXPECT_EQ(sleeps,
            (std::vector<uint64_t>{100, 200, 400, 500, 500, 500, 500}));
}

TEST(RetryTest, JitteredBackoffStaysInDecorrelatedBounds) {
  RetryOptions options;
  options.max_attempts = 12;
  options.initial_backoff_us = 100;
  options.max_backoff_us = 50'000;
  options.jitter_seed = 42;  // Deterministic draw under test.
  RetryPolicy retry(options);
  std::vector<uint64_t> sleeps;
  retry.set_sleep_fn([&](uint64_t us) { sleeps.push_back(us); });
  [[maybe_unused]] Status status =
      retry.Run("op", [] { return Transient("x"); });
  ASSERT_EQ(sleeps.size(), 11u);
  // Decorrelated jitter: each sleep is uniform in
  // [initial, min(3 * previous, cap)] (first: previous = initial).
  uint64_t prev = options.initial_backoff_us;
  for (uint64_t us : sleeps) {
    EXPECT_GE(us, options.initial_backoff_us);
    EXPECT_LE(us, std::min<uint64_t>(3 * prev, options.max_backoff_us));
    prev = std::max<uint64_t>(us, options.initial_backoff_us);
  }
}

TEST(RetryTest, JitterIsSeedReproducibleAndPoliciesDecorrelate) {
  auto schedule = [](uint64_t seed) {
    RetryOptions options;
    options.max_attempts = 8;
    options.jitter_seed = seed;
    RetryPolicy retry(options);
    std::vector<uint64_t> sleeps;
    retry.set_sleep_fn([&](uint64_t us) { sleeps.push_back(us); });
    [[maybe_unused]] Status status =
        retry.Run("op", [] { return Transient("x"); });
    return sleeps;
  };
  // Same seed -> same schedule (tests can pin jittered behavior).
  EXPECT_EQ(schedule(7), schedule(7));
  // Distinct seeds -> distinct schedules (the anti-storm property:
  // concurrent writers must not retry in lockstep).
  EXPECT_NE(schedule(7), schedule(8));
  // Auto-seeded policies (seed 0) draw distinct per-policy streams.
  EXPECT_NE(schedule(0), schedule(0));
}

TEST(RetryTest, StatsAccountingOnFinalFailedAttempt) {
  RetryOptions options;
  options.max_attempts = 4;
  options.jitter_seed = 3;
  RetryPolicy retry(options);
  std::vector<uint64_t> sleeps;
  retry.set_sleep_fn([&](uint64_t us) { sleeps.push_back(us); });
  Status status = retry.Run("op", [] { return Transient("x"); });
  EXPECT_FALSE(status.ok());
  // The run exhausted: every attempt ran, every retry slept exactly
  // once, and backoff_us is the sum over the recorded sleeps.
  EXPECT_EQ(retry.stats().runs, 1u);
  EXPECT_EQ(retry.stats().attempts, 4u);
  EXPECT_EQ(retry.stats().retries, 3u);
  EXPECT_EQ(retry.stats().exhausted, 1u);
  uint64_t total = 0;
  for (uint64_t us : sleeps) total += us;
  EXPECT_EQ(retry.stats().backoff_us, total);
}

TEST(RetryTest, FailingBeforeRetryStillCountsTheSleptRetry) {
  RetryPolicy retry;
  std::vector<uint64_t> sleeps;
  retry.set_sleep_fn([&](uint64_t us) { sleeps.push_back(us); });
  Status status = retry.Run(
      "op", [] { return Transient("flaky"); },
      [] { return Status::Internal("cannot rewind"); });
  EXPECT_FALSE(status.ok());
  // The backoff was slept before before_retry aborted the run, so the
  // stats must count it: backoff_us stays the sum over retries.
  EXPECT_EQ(sleeps.size(), 1u);
  EXPECT_EQ(retry.stats().retries, 1u);
  EXPECT_EQ(retry.stats().backoff_us, sleeps[0]);
  EXPECT_EQ(retry.stats().exhausted, 0u);
}

TEST(RetryTest, FailingBeforeRetryHookAbortsTheLoop) {
  RetryPolicy retry;
  retry.set_sleep_fn([](uint64_t) {});
  int calls = 0;
  Status status = retry.Run(
      "op", [&] { ++calls; return Transient("flaky"); },
      [] { return Status::Internal("cannot rewind"); });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(calls, 1);  // The op never re-ran on a broken base.
  EXPECT_NE(std::string(status.message()).find("cannot rewind"),
            std::string::npos);
}

#ifdef STORYPIVOT_FAILPOINTS

// --------------------------- Failpoints -----------------------------------

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::Registry::Instance().DisarmAll(); }
  void TearDown() override { failpoint::Registry::Instance().DisarmAll(); }
};

Status EvalSite(const char* site) {
  SP_FAILPOINT(site);
  return Status::OK();
}

TEST_F(FailpointTest, DisarmedSiteIsOk) {
  EXPECT_TRUE(EvalSite("util_test.never_armed").ok());
}

TEST_F(FailpointTest, EveryNthFiresOnSchedule) {
  failpoint::Registry::Instance().Arm("util_test.nth",
                                      failpoint::EveryNth(3));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(!EvalSite("util_test.nth").ok());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      true, false, false, true}));
  EXPECT_EQ(failpoint::Registry::Instance().Stats("util_test.nth").fires,
            3u);
}

TEST_F(FailpointTest, OneShotFiresExactlyOnce) {
  failpoint::Registry::Instance().Arm("util_test.one",
                                      failpoint::OneShot(2));
  EXPECT_TRUE(EvalSite("util_test.one").ok());
  Status injected = EvalSite("util_test.one");
  EXPECT_EQ(injected.code(), StatusCode::kIoError);
  EXPECT_TRUE(failpoint::IsInjected(injected));
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(EvalSite("util_test.one").ok());
}

TEST_F(FailpointTest, ProbabilityIsDeterministicPerSeed) {
  auto draw = [](uint64_t seed) {
    failpoint::Registry::Instance().Arm(
        "util_test.prob", failpoint::Probability(0.5, seed));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!EvalSite("util_test.prob").ok());
    }
    return fired;
  };
  std::vector<bool> first = draw(7);
  EXPECT_EQ(first, draw(7));       // Same seed, same schedule.
  EXPECT_NE(first, draw(8));       // Different seed, different schedule.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST_F(FailpointTest, TransientMarkerAndNotePropagate) {
  failpoint::Trigger trigger = failpoint::OneShot(1, /*transient=*/true);
  trigger.note = "ENOSPC";
  failpoint::Registry::Instance().Arm("util_test.note", trigger);
  Status injected = EvalSite("util_test.note");
  ASSERT_FALSE(injected.ok());
  EXPECT_TRUE(IsTransient(injected));
  EXPECT_NE(std::string(injected.message()).find("ENOSPC"),
            std::string::npos);
  EXPECT_NE(std::string(injected.message()).find("util_test.note"),
            std::string::npos);
}

TEST_F(FailpointTest, DisarmAllClearsEverything) {
  failpoint::Registry::Instance().Arm("util_test.a", failpoint::EveryNth(1));
  failpoint::Registry::Instance().Arm("util_test.b", failpoint::EveryNth(1));
  EXPECT_EQ(failpoint::Registry::Instance().ArmedSites().size(), 2u);
  EXPECT_FALSE(EvalSite("util_test.a").ok());
  failpoint::Registry::Instance().DisarmAll();
  EXPECT_TRUE(failpoint::Registry::Instance().ArmedSites().empty());
  EXPECT_TRUE(EvalSite("util_test.a").ok());
  EXPECT_TRUE(EvalSite("util_test.b").ok());
}

// --------------------------- fs error paths -------------------------------
//
// Failpoints stand in for the hard-to-provoke real failures (ENOSPC,
// EACCES, fsync loss) so the cleanup contracts get exercised every run.

class FsFailpointTest : public FailpointTest {};

TEST_F(FsFailpointTest, WriteStringToFileCleansUpTempOnFsyncFailure) {
  const std::string path = ::testing::TempDir() + "/sp_fsfp_atomic.txt";
  ASSERT_TRUE(WriteStringToFile(path, "established").ok());

  failpoint::Trigger trigger = failpoint::OneShot(1);
  trigger.note = "ENOSPC";
  failpoint::Registry::Instance().Arm("fs.write.fsync", trigger);
  Status failed = WriteStringToFile(path, "replacement");
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failpoint::IsInjected(failed));
  // The atomic-replace contract: no temp litter, old contents intact.
  EXPECT_FALSE(FileExists(path + ".tmp"));
  EXPECT_EQ(ReadFileToString(path).value(), "established");
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST_F(FsFailpointTest, AppendFileReportsShortWriteAndRewinds) {
  const std::string path = ::testing::TempDir() + "/sp_fsfp_append.log";
  if (FileExists(path)) {
    ASSERT_TRUE(RemoveFile(path).ok());
  }
  AppendFile file;
  ASSERT_TRUE(file.Open(path).ok());
  ASSERT_TRUE(file.Append("durable|").ok());

  failpoint::Registry::Instance().Arm("fs.append.partial",
                                      failpoint::OneShot(1));
  Status failed = file.Append("0123456789");
  ASSERT_FALSE(failed.ok());
  // The error reports how much of the payload actually landed...
  EXPECT_NE(std::string(failed.message()).find("short write"),
            std::string::npos)
      << failed.ToString();
  // ...size() still names the durable prefix, and Rewind drops the torn
  // bytes so the next append continues cleanly.
  EXPECT_EQ(file.size(), 8u);
  ASSERT_TRUE(file.Rewind().ok());
  ASSERT_TRUE(file.Append("recovered").ok());
  ASSERT_TRUE(file.Close().ok());
  EXPECT_EQ(ReadFileToString(path).value(), "durable|recovered");
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST_F(FsFailpointTest, AppendFileTruncateToWithdrawsFullRecord) {
  const std::string path = ::testing::TempDir() + "/sp_fsfp_withdraw.log";
  if (FileExists(path)) {
    ASSERT_TRUE(RemoveFile(path).ok());
  }
  AppendFile file;
  ASSERT_TRUE(file.Open(path).ok());
  ASSERT_TRUE(file.Append("keep").ok());
  ASSERT_TRUE(file.Append("withdraw-me").ok());
  // The record is fully written (e.g. its fsync failed after the write);
  // TruncateTo withdraws it so it cannot resurface at recovery.
  ASSERT_TRUE(file.TruncateTo(4).ok());
  EXPECT_EQ(file.size(), 4u);
  ASSERT_TRUE(file.Append("!").ok());
  ASSERT_TRUE(file.Close().ok());
  EXPECT_EQ(ReadFileToString(path).value(), "keep!");
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST_F(FsFailpointTest, AppendFileOpenFailureWithAccessNote) {
  failpoint::Trigger trigger = failpoint::OneShot(1);
  trigger.note = "EACCES";
  failpoint::Registry::Instance().Arm("fs.append.open", trigger);
  AppendFile file;
  Status failed = file.Open(::testing::TempDir() + "/sp_fsfp_denied.log");
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(std::string(failed.message()).find("EACCES"),
            std::string::npos);
}

TEST_F(FsFailpointTest, SyncDirectoryFailureSurfaces) {
  failpoint::Registry::Instance().Arm("fs.dir.sync", failpoint::OneShot(1));
  Status failed = SyncDirectory(::testing::TempDir());
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failpoint::IsInjected(failed));
  // Disarmed, the same call works.
  failpoint::Registry::Instance().DisarmAll();
  EXPECT_TRUE(SyncDirectory(::testing::TempDir()).ok());
}

#endif  // STORYPIVOT_FAILPOINTS

}  // namespace
}  // namespace storypivot
