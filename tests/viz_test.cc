#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/query.h"
#include "datagen/mh17.h"
#include "viz/ascii.h"

namespace storypivot::viz {
namespace {

class VizFixture : public ::testing::Test {
 protected:
  VizFixture() {
    nyt_ = engine_.RegisterSource("New York Times");
    wsj_ = engine_.RegisterSource("Wall Street Journal");
    text::TermId ua = engine_.entity_vocabulary()->Intern("Ukraine");
    text::TermId crash = engine_.keyword_vocabulary()->Intern("crash");
    auto add = [&](SourceId src, Timestamp ts) {
      Snippet s;
      s.source = src;
      s.timestamp = ts;
      s.description = "Plane crash";
      s.document_url = "http://doc";
      s.entities = text::TermVector::FromEntries({{ua, 1.0}});
      s.keywords = text::TermVector::FromEntries({{crash, 1.0}});
      SP_CHECK_OK(engine_.AddSnippet(std::move(s)));
    };
    add(nyt_, MakeTimestamp(2014, 7, 17));
    add(nyt_, MakeTimestamp(2014, 7, 18));
    add(wsj_, MakeTimestamp(2014, 7, 17, 6));
    engine_.Align();
  }

  StoryPivotEngine engine_;
  SourceId nyt_ = 0, wsj_ = 0;
};

TEST_F(VizFixture, StoryOverviewCardShowsAllFields) {
  StoryQuery query(&engine_);
  auto stories = query.IntegratedStories();
  ASSERT_FALSE(stories.empty());
  std::string card = RenderStoryOverview(stories[0]);
  EXPECT_NE(card.find("New York Times"), std::string::npos);
  EXPECT_NE(card.find("Ukraine"), std::string::npos);
  EXPECT_NE(card.find("crash"), std::string::npos);
  EXPECT_NE(card.find("2014-07-17"), std::string::npos);
  EXPECT_NE(card.find("2014-07-18"), std::string::npos);
}

TEST_F(VizFixture, StoryTableListsStories) {
  StoryQuery query(&engine_);
  std::string table = RenderStoryTable(query.IntegratedStories());
  EXPECT_NE(table.find("Ukraine"), std::string::npos);
  EXPECT_NE(table.find("Sources"), std::string::npos);
}

TEST_F(VizFixture, StoriesPerSourceDrawsTimeline) {
  std::string module = RenderStoriesPerSource(engine_, nyt_);
  EXPECT_NE(module.find("New York Times"), std::string::npos);
  EXPECT_NE(module.find("time axis"), std::string::npos);
  EXPECT_NE(module.find("snippets"), std::string::npos);
  EXPECT_NE(module.find('o'), std::string::npos);  // Snippet marks.
  EXPECT_EQ(RenderStoriesPerSource(engine_, 99), "<unknown source>\n");
}

TEST_F(VizFixture, SnippetsPerStoryGroupsBySource) {
  ASSERT_FALSE(engine_.alignment().stories.empty());
  std::string module =
      RenderSnippetsPerStory(engine_, engine_.alignment().stories[0]);
  EXPECT_NE(module.find("New York Times"), std::string::npos);
  EXPECT_NE(module.find("Wall Street Journal"), std::string::npos);
  EXPECT_NE(module.find("aligning"), std::string::npos);
  // The simultaneous NYT/WSJ reports are counterparts -> marked 'A'.
  EXPECT_NE(module.find('A'), std::string::npos);
}

TEST_F(VizFixture, DocumentTableRendersRows) {
  datagen::Mh17Corpus corpus = datagen::MakeMh17Corpus();
  std::string table = RenderDocumentTable(corpus.documents, engine_);
  EXPECT_NE(table.find("URL"), std::string::npos);
  EXPECT_NE(table.find("nytimes.com"), std::string::npos);
  EXPECT_NE(table.find("online.wsj.com"), std::string::npos);
}

TEST(XyChartTest, PlotsSeriesWithLegend) {
  Series a{"temporal", {{1000, 1.0}, {2000, 2.0}, {4000, 4.0}}};
  Series b{"complete", {{1000, 2.0}, {2000, 8.0}, {4000, 32.0}}};
  std::string chart = RenderXyChart("Performance", "# events", "ms", {a, b},
                                    /*log_x=*/true);
  EXPECT_NE(chart.find("Performance"), std::string::npos);
  EXPECT_NE(chart.find("temporal"), std::string::npos);
  EXPECT_NE(chart.find("complete"), std::string::npos);
  EXPECT_NE(chart.find("log scale"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('+'), std::string::npos);
}

TEST(SparklineTest, RendersBarsAndStats) {
  ActivitySeries series;
  series.origin = MakeTimestamp(2014, 7, 1);
  series.bucket_width = kSecondsPerDay;
  series.counts = {0, 1, 5, 2, 0, 0, 10};
  std::string line = RenderActivitySparkline(series);
  EXPECT_NE(line.find("2014-07-01"), std::string::npos);
  EXPECT_NE(line.find("peak 10"), std::string::npos);
  EXPECT_NE(line.find("18 total"), std::string::npos);
  EXPECT_NE(line.find('@'), std::string::npos);  // The peak bucket.
}

TEST(SparklineTest, DownsamplesLongSeries) {
  ActivitySeries series;
  series.origin = 0;
  series.bucket_width = kSecondsPerDay;
  series.counts.assign(365, 1);
  std::string line = RenderActivitySparkline(series, 60);
  // Bar region must fit in the width budget.
  size_t open = line.find('|');
  size_t close = line.find('|', open + 1);
  ASSERT_NE(open, std::string::npos);
  ASSERT_NE(close, std::string::npos);
  EXPECT_LE(close - open - 1, 61u);
}

TEST(SparklineTest, EmptySeries) {
  ActivitySeries series;
  EXPECT_NE(RenderActivitySparkline(series).find("no activity"),
            std::string::npos);
}

TEST(XyChartTest, HandlesDegenerateInputs) {
  EXPECT_NE(RenderXyChart("t", "x", "y", {}, false).find("no data"),
            std::string::npos);
  Series empty{"none", {}};
  EXPECT_NE(RenderXyChart("t", "x", "y", {empty}, false).find("no points"),
            std::string::npos);
  // A single point must not divide by zero.
  Series one{"one", {{5, 5}}};
  std::string chart = RenderXyChart("t", "x", "y", {one}, false);
  EXPECT_NE(chart.find('*'), std::string::npos);
}

}  // namespace
}  // namespace storypivot::viz
