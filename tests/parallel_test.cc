// Serial-vs-parallel equivalence for the engine's internal parallel
// paths (DESIGN.md §9): batch ingestion via AddSnippets and alignment
// pair scoring must produce bit-identical results for every thread
// count, and a failed batch must leave no trace (all-or-nothing).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "datagen/corpus.h"
#include "model/time.h"
#include "util/logging.h"

namespace storypivot {
namespace {

Snippet MakeSnippet(SourceId source, Timestamp ts,
                    std::vector<std::pair<text::TermId, double>> entities,
                    std::vector<std::pair<text::TermId, double>> keywords) {
  Snippet s;
  s.source = source;
  s.timestamp = ts;
  s.entities = text::TermVector::FromEntries(std::move(entities));
  s.keywords = text::TermVector::FromEntries(std::move(keywords));
  return s;
}

datagen::Corpus TestCorpus() {
  datagen::CorpusConfig config;
  config.seed = 11;
  config.num_sources = 6;
  config.num_stories = 24;
  config.target_num_snippets = 900;
  return datagen::CorpusGenerator(config).Generate();
}

std::unique_ptr<StoryPivotEngine> MakeEngine(const datagen::Corpus& corpus,
                                             size_t num_threads,
                                             bool sketches) {
  EngineConfig config;
  config.num_threads = num_threads;
  config.use_sketches = sketches;
  auto engine = std::make_unique<StoryPivotEngine>(config);
  SP_CHECK_OK(engine->ImportVocabularies(*corpus.entity_vocabulary,
                                         *corpus.keyword_vocabulary));
  for (const SourceInfo& s : corpus.sources) engine->RegisterSource(s.name);
  return engine;
}

/// Feeds the corpus through AddSnippets in fixed-size batches.
void FeedBatched(StoryPivotEngine* engine, const datagen::Corpus& corpus,
                 size_t batch_size) {
  std::vector<Snippet> batch;
  for (const Snippet& snippet : corpus.snippets) {
    batch.push_back(snippet);
    if (batch.size() == batch_size) {
      SP_CHECK_OK(engine->AddSnippets(std::move(batch)));
      batch.clear();
    }
  }
  if (!batch.empty()) SP_CHECK_OK(engine->AddSnippets(std::move(batch)));
}

/// Exact per-source assignment: (source, snippet, story) triples, sorted.
/// Story ids are included verbatim — the determinism contract is
/// bit-identical state, not merely isomorphic clusterings.
std::vector<std::tuple<SourceId, SnippetId, StoryId>> PartitionFingerprint(
    const StoryPivotEngine& engine) {
  std::vector<std::tuple<SourceId, SnippetId, StoryId>> out;
  for (const SourceInfo& info : engine.sources()) {
    const StorySet* partition = engine.partition(info.id);
    SP_CHECK(partition != nullptr);
    for (const auto& [ts, sid] : partition->snippet_times().entries()) {
      out.emplace_back(info.id, sid, partition->StoryOf(sid));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectIdenticalAlignment(const AlignmentResult& a,
                              const AlignmentResult& b) {
  ASSERT_EQ(a.stories.size(), b.stories.size());
  for (size_t i = 0; i < a.stories.size(); ++i) {
    EXPECT_EQ(a.stories[i].id, b.stories[i].id) << "story " << i;
    EXPECT_EQ(a.stories[i].members, b.stories[i].members) << "story " << i;
  }
  EXPECT_EQ(a.integrated_of, b.integrated_of);
  EXPECT_EQ(a.roles, b.roles);
  EXPECT_EQ(a.counterpart, b.counterpart);
  EXPECT_EQ(a.member_index, b.member_index);
  EXPECT_EQ(a.num_pairs_scored, b.num_pairs_scored);
}

class ParallelEquivalence : public ::testing::TestWithParam<bool> {};

TEST_P(ParallelEquivalence, BatchIngestIsThreadCountInvariant) {
  const bool sketches = GetParam();
  datagen::Corpus corpus = TestCorpus();
  auto serial = MakeEngine(corpus, /*num_threads=*/1, sketches);
  auto parallel = MakeEngine(corpus, /*num_threads=*/4, sketches);
  FeedBatched(serial.get(), corpus, /*batch_size=*/128);
  FeedBatched(parallel.get(), corpus, /*batch_size=*/128);

  EXPECT_EQ(PartitionFingerprint(*serial), PartitionFingerprint(*parallel));
  EXPECT_EQ(serial->TotalStories(), parallel->TotalStories());
  EXPECT_EQ(serial->stats().snippets_ingested,
            parallel->stats().snippets_ingested);
  EXPECT_EQ(serial->document_frequency().num_documents(),
            parallel->document_frequency().num_documents());

  // The downstream alignment (itself parallel in one engine) must agree
  // in every field.
  ExpectIdenticalAlignment(serial->Align(), parallel->Align());
}

INSTANTIATE_TEST_SUITE_P(Sketches, ParallelEquivalence,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "WithSketches" : "Plain";
                         });

TEST(ParallelAlignTest, MatchesSerialOnIdenticalState) {
  // Both engines ingest identically (one snippet at a time); only the
  // alignment pass differs in thread count.
  datagen::Corpus corpus = TestCorpus();
  auto serial = MakeEngine(corpus, /*num_threads=*/1, /*sketches=*/false);
  auto parallel = MakeEngine(corpus, /*num_threads=*/4, /*sketches=*/false);
  for (const Snippet& snippet : corpus.snippets) {
    Snippet copy = snippet;
    SP_CHECK_OK(serial->AddSnippet(std::move(copy)));
    copy = snippet;
    SP_CHECK_OK(parallel->AddSnippet(std::move(copy)));
  }
  ASSERT_EQ(PartitionFingerprint(*serial), PartitionFingerprint(*parallel));
  ExpectIdenticalAlignment(serial->Align(), parallel->Align());
}

TEST(AddSnippetsTest, EmptyBatchIsNoOp) {
  StoryPivotEngine engine;
  Result<std::vector<SnippetId>> ids = engine.AddSnippets({});
  ASSERT_TRUE(ids.ok());
  EXPECT_TRUE(ids.value().empty());
  EXPECT_EQ(engine.stats().snippets_ingested, 0u);
}

TEST(AddSnippetsTest, UnregisteredSourceRejectsWholeBatch) {
  StoryPivotEngine engine;
  SourceId src = engine.RegisterSource("s");
  std::vector<Snippet> batch;
  batch.push_back(MakeSnippet(src, 0, {{0, 1.0}}, {{5, 1.0}}));
  batch.push_back(MakeSnippet(src + 7, 10, {{0, 1.0}}, {{5, 1.0}}));
  Result<std::vector<SnippetId>> ids = engine.AddSnippets(std::move(batch));
  EXPECT_FALSE(ids.ok());
  EXPECT_EQ(ids.status().code(), StatusCode::kInvalidArgument);
  // Upfront validation: the valid leading snippet was not ingested.
  EXPECT_EQ(engine.store().size(), 0u);
  EXPECT_EQ(engine.document_frequency().num_documents(), 0);
  EXPECT_EQ(engine.stats().snippets_ingested, 0u);
  EXPECT_EQ(engine.TotalStories(), 0u);
}

TEST(AddSnippetsTest, MidBatchFailureRollsBackEverything) {
  // Regression for the all-or-nothing contract: a store collision in the
  // middle of a batch (duplicate explicit ids) must unwind the snippets
  // and document-frequency rows already written for the batch, leaving
  // pre-batch state untouched.
  StoryPivotEngine engine;
  SourceId src = engine.RegisterSource("s");
  SnippetId keep =
      engine.AddSnippet(MakeSnippet(src, 0, {{0, 1.0}}, {{5, 1.0}})).value();
  const int64_t df_before = engine.document_frequency().num_documents();
  const size_t stories_before = engine.TotalStories();
  const uint64_t ingested_before = engine.stats().snippets_ingested;

  std::vector<Snippet> batch;
  batch.push_back(MakeSnippet(src, 10, {{1, 1.0}}, {{6, 1.0}}));
  batch.back().id = 500;
  batch.push_back(MakeSnippet(src, 20, {{2, 1.0}}, {{7, 1.0}}));
  batch.back().id = 501;
  batch.push_back(MakeSnippet(src, 30, {{3, 1.0}}, {{8, 1.0}}));
  batch.back().id = 500;  // Collides with the first batch member.
  Result<std::vector<SnippetId>> ids = engine.AddSnippets(std::move(batch));
  EXPECT_FALSE(ids.ok());
  EXPECT_EQ(ids.status().code(), StatusCode::kAlreadyExists);

  EXPECT_EQ(engine.store().size(), 1u);
  EXPECT_NE(engine.store().Find(keep), nullptr);
  EXPECT_EQ(engine.store().Find(500), nullptr);
  EXPECT_EQ(engine.store().Find(501), nullptr);
  EXPECT_EQ(engine.document_frequency().num_documents(), df_before);
  EXPECT_EQ(engine.TotalStories(), stories_before);
  EXPECT_EQ(engine.stats().snippets_ingested, ingested_before);
  // The engine remains fully usable after the rollback.
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(src, 40, {{0, 1.0}}, {{5, 1.0}})));
  EXPECT_EQ(engine.store().size(), 2u);
}

}  // namespace
}  // namespace storypivot
