#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "text/annotator.h"
#include "text/gazetteer.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/term_vector.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace storypivot::text {
namespace {

// ------------------------------- Tokenizer ---------------------------------

TEST(TokenizerTest, BasicSplitting) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("The plane crashed near Donetsk.");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "the");
  EXPECT_EQ(tokens[4].text, "donetsk");
}

TEST(TokenizerTest, RecordsCapitalization) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("Ukraine asked help");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_TRUE(tokens[0].capitalized);
  EXPECT_FALSE(tokens[1].capitalized);
}

TEST(TokenizerTest, StripsPossessive) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("Russia's border and the investigators' work");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "russia");
  // "investigators'" loses the trailing apostrophe.
  bool found = false;
  for (const auto& t : tokens) found |= t.text == "investigators";
  EXPECT_TRUE(found);
}

TEST(TokenizerTest, KeepsInternalApostrophe) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("they don't agree");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "don't");
}

TEST(TokenizerTest, OffsetsPointIntoInput) {
  Tokenizer tok;
  std::string input = "alpha beta";
  auto tokens = tok.Tokenize(input);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 6u);
}

TEST(TokenizerTest, DropNumbersOption) {
  TokenizerOptions options;
  options.drop_numbers = true;
  Tokenizer tok(options);
  auto tokens = tok.Tokenize("298 people aboard flight 17");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "people");
}

TEST(TokenizerTest, MinLengthOption) {
  TokenizerOptions options;
  options.min_length = 3;
  Tokenizer tok(options);
  auto tokens = tok.Tokenize("it is an investigation");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].text, "investigation");
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("... --- !!!").empty());
}

// ------------------------------- Stopwords ---------------------------------

TEST(StopwordsTest, CommonWordsAreStopwords) {
  for (const char* w : {"the", "a", "and", "of", "is", "was", "they"}) {
    EXPECT_TRUE(IsStopword(w)) << w;
  }
}

TEST(StopwordsTest, ContentWordsAreNot) {
  for (const char* w : {"plane", "crash", "ukraine", "investigation"}) {
    EXPECT_FALSE(IsStopword(w)) << w;
  }
}

TEST(StopwordsTest, ListIsSortedAndBinarySearchable) {
  const auto& list = StopwordList();
  ASSERT_FALSE(list.empty());
  for (size_t i = 1; i < list.size(); ++i) {
    EXPECT_LT(list[i - 1], list[i]) << "unsorted at " << i;
  }
  for (std::string_view w : list) EXPECT_TRUE(IsStopword(w));
}

// ----------------------------- Porter stemmer ------------------------------

struct StemCase {
  const char* word;
  const char* stem;
};

class PorterStemmerVectors : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemmerVectors, MatchesReference) {
  EXPECT_EQ(PorterStem(GetParam().word), GetParam().stem);
}

// Reference outputs from Porter's original paper / implementation.
INSTANTIATE_TEST_SUITE_P(
    Known, PorterStemmerVectors,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformabli", "conform"},
        StemCase{"radicalli", "radic"}, StemCase{"differentli", "differ"},
        StemCase{"vileli", "vile"}, StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"},
        StemCase{"predication", "predic"}, StemCase{"operator", "oper"},
        StemCase{"feudalism", "feudal"}, StemCase{"decisiveness", "decis"},
        StemCase{"hopefulness", "hope"}, StemCase{"callousness", "callous"},
        StemCase{"formaliti", "formal"}, StemCase{"sensitiviti", "sensit"},
        StemCase{"sensibiliti", "sensibl"}, StemCase{"triplicate", "triplic"},
        StemCase{"formative", "form"}, StemCase{"formalize", "formal"},
        StemCase{"electriciti", "electr"}, StemCase{"electrical", "electr"},
        StemCase{"hopeful", "hope"}, StemCase{"goodness", "good"},
        StemCase{"revival", "reviv"}, StemCase{"allowance", "allow"},
        StemCase{"inference", "infer"}, StemCase{"airliner", "airlin"},
        StemCase{"gyroscopic", "gyroscop"}, StemCase{"adjustable", "adjust"},
        StemCase{"defensible", "defens"}, StemCase{"irritant", "irrit"},
        StemCase{"replacement", "replac"}, StemCase{"adjustment", "adjust"},
        StemCase{"dependent", "depend"}, StemCase{"adoption", "adopt"},
        StemCase{"homologou", "homolog"}, StemCase{"communism", "commun"},
        StemCase{"activate", "activ"}, StemCase{"angulariti", "angular"},
        StemCase{"homologous", "homolog"}, StemCase{"effective", "effect"},
        StemCase{"bowdlerize", "bowdler"}, StemCase{"probate", "probat"},
        StemCase{"rate", "rate"}, StemCase{"cease", "ceas"},
        StemCase{"controll", "control"}, StemCase{"roll", "roll"}));

// Second batch: news-domain words and step-rule edge cases.
INSTANTIATE_TEST_SUITE_P(
    NewsDomain, PorterStemmerVectors,
    ::testing::Values(
        StemCase{"investigation", "investig"},
        StemCase{"investigators", "investig"},
        StemCase{"sanctions", "sanction"}, StemCase{"crashed", "crash"},
        StemCase{"crashes", "crash"}, StemCase{"crashing", "crash"},
        StemCase{"negotiations", "negoti"},
        StemCase{"negotiators", "negoti"},
        StemCase{"separatists", "separatist"},
        StemCase{"evacuation", "evacu"}, StemCase{"militias", "militia"},
        StemCase{"elections", "elect"}, StemCase{"elected", "elect"},
        StemCase{"parliamentary", "parliamentari"},
        StemCase{"economic", "econom"}, StemCase{"economies", "economi"},
        StemCase{"reporting", "report"}, StemCase{"reported", "report"},
        StemCase{"reporters", "report"}, StemCase{"alliances", "allianc"},
        StemCase{"regulators", "regul"}, StemCase{"regulation", "regul"},
        StemCase{"championships", "championship"},
        StemCase{"tournaments", "tournament"},
        StemCase{"epidemics", "epidem"}, StemCase{"hospitals", "hospit"},
        StemCase{"generalization", "gener"},
        StemCase{"organization", "organ"},
        StemCase{"international", "intern"},
        StemCase{"authorities", "author"},
        StemCase{"possibly", "possibli"}, StemCase{"quickly", "quickli"},
        StemCase{"flying", "fly"}, StemCase{"dying", "dy"},
        StemCase{"agreements", "agreement"},
        StemCase{"announcement", "announc"},
        StemCase{"development", "develop"},
        StemCase{"governments", "govern"}, StemCase{"missiles", "missil"},
        StemCase{"witnesses", "wit"}, StemCase{"analyses", "analys"},
        StemCase{"crises", "crise"}, StemCase{"stories", "stori"},
        StemCase{"evolving", "evolv"}, StemCase{"evolution", "evolut"}));

TEST(PorterStemmerTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem("is"), "is");
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem(""), "");
}

TEST(PorterStemmerTest, StemIsIdempotentOnNewsWords) {
  for (const char* w :
       {"investigation", "sanctions", "crashed", "negotiations",
        "separatists", "evacuation", "championship"}) {
    std::string once = PorterStem(w);
    // Stemming the stem may reduce further in rare cases but must not grow.
    EXPECT_LE(PorterStem(once).size(), once.size()) << w;
  }
}

// ------------------------------- Vocabulary --------------------------------

TEST(VocabularyTest, InternAssignsSequentialIds) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.Intern("alpha"), 0u);
  EXPECT_EQ(vocab.Intern("beta"), 1u);
  EXPECT_EQ(vocab.Intern("alpha"), 0u);  // Idempotent.
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(VocabularyTest, LookupWithoutIntern) {
  Vocabulary vocab;
  vocab.Intern("known");
  EXPECT_EQ(vocab.Lookup("known"), 0u);
  EXPECT_EQ(vocab.Lookup("unknown"), kInvalidTermId);
}

TEST(VocabularyTest, TermOfRoundTrip) {
  Vocabulary vocab;
  TermId id = vocab.Intern("ukraine");
  EXPECT_EQ(vocab.TermOf(id), "ukraine");
}

// ------------------------------- TermVector --------------------------------

TEST(TermVectorTest, FromEntriesSortsAndDeduplicates) {
  TermVector v = TermVector::FromEntries({{5, 1.0}, {2, 2.0}, {5, 3.0}});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v.ValueOf(2), 2.0);
  EXPECT_DOUBLE_EQ(v.ValueOf(5), 4.0);
}

TEST(TermVectorTest, AddAndRemove) {
  TermVector v;
  v.Add(3, 1.5);
  v.Add(1, 1.0);
  EXPECT_DOUBLE_EQ(v.ValueOf(3), 1.5);
  v.Add(3, -1.5);  // Cancels out -> entry dropped.
  EXPECT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v.ValueOf(3), 0.0);
}

TEST(TermVectorTest, MergeAndSubtractInverse) {
  TermVector a = TermVector::FromEntries({{1, 2.0}, {3, 1.0}});
  TermVector b = TermVector::FromEntries({{3, 2.0}, {7, 4.0}});
  TermVector merged = a;
  merged.Merge(b);
  EXPECT_DOUBLE_EQ(merged.ValueOf(3), 3.0);
  EXPECT_DOUBLE_EQ(merged.ValueOf(7), 4.0);
  merged.Subtract(b);
  EXPECT_EQ(merged, a);
}

TEST(TermVectorTest, DotAndNorm) {
  TermVector a = TermVector::FromEntries({{1, 3.0}, {2, 4.0}});
  TermVector b = TermVector::FromEntries({{2, 2.0}, {9, 5.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 8.0);
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.Sum(), 7.0);
}

TEST(TermVectorTest, CosineBoundsAndIdentity) {
  TermVector a = TermVector::FromEntries({{1, 1.0}, {2, 2.0}});
  EXPECT_NEAR(a.Cosine(a), 1.0, 1e-12);
  TermVector empty;
  EXPECT_DOUBLE_EQ(a.Cosine(empty), 0.0);
  TermVector disjoint = TermVector::FromEntries({{8, 1.0}});
  EXPECT_DOUBLE_EQ(a.Cosine(disjoint), 0.0);
}

TEST(TermVectorTest, WeightedJaccard) {
  TermVector a = TermVector::FromEntries({{1, 2.0}, {2, 1.0}});
  TermVector b = TermVector::FromEntries({{1, 1.0}, {2, 1.0}});
  // min-sum = 1+1 = 2, max-sum = 2+1 = 3.
  EXPECT_NEAR(a.WeightedJaccard(b), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(a.WeightedJaccard(a), 1.0, 1e-12);
  TermVector empty;
  EXPECT_DOUBLE_EQ(empty.WeightedJaccard(empty), 0.0);
}

TEST(TermVectorTest, SetJaccard) {
  TermVector a = TermVector::FromEntries({{1, 5.0}, {2, 1.0}, {3, 1.0}});
  TermVector b = TermVector::FromEntries({{2, 9.0}, {3, 1.0}, {4, 1.0}});
  EXPECT_NEAR(a.SetJaccard(b), 2.0 / 4.0, 1e-12);
}

TEST(TermVectorTest, TopK) {
  TermVector v =
      TermVector::FromEntries({{1, 1.0}, {2, 5.0}, {3, 3.0}, {4, 5.0}});
  auto top = v.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 2u);  // Ties broken by id.
  EXPECT_EQ(top[1].first, 4u);
}

TEST(TermVectorTest, SimilaritySymmetry) {
  TermVector a = TermVector::FromEntries({{1, 2.0}, {5, 1.0}, {9, 4.0}});
  TermVector b = TermVector::FromEntries({{1, 1.0}, {9, 2.0}, {11, 3.0}});
  EXPECT_DOUBLE_EQ(a.Cosine(b), b.Cosine(a));
  EXPECT_DOUBLE_EQ(a.WeightedJaccard(b), b.WeightedJaccard(a));
  EXPECT_DOUBLE_EQ(a.Dot(b), b.Dot(a));
}

// --------------------------------- TF-IDF ----------------------------------

TEST(DocumentFrequencyTest, TracksAddAndRemove) {
  DocumentFrequency df;
  TermVector d1 = TermVector::FromEntries({{0, 2.0}, {1, 1.0}});
  TermVector d2 = TermVector::FromEntries({{1, 3.0}});
  df.AddDocument(d1);
  df.AddDocument(d2);
  EXPECT_EQ(df.num_documents(), 2);
  EXPECT_EQ(df.FrequencyOf(0), 1);
  EXPECT_EQ(df.FrequencyOf(1), 2);
  df.RemoveDocument(d1);
  EXPECT_EQ(df.num_documents(), 1);
  EXPECT_EQ(df.FrequencyOf(0), 0);
  EXPECT_EQ(df.FrequencyOf(1), 1);
}

TEST(DocumentFrequencyTest, RareTermsGetHigherIdf) {
  DocumentFrequency df;
  for (int i = 0; i < 10; ++i) {
    TermVector d = TermVector::FromEntries(
        {{0, 1.0}, {static_cast<TermId>(i + 1), 1.0}});
    df.AddDocument(d);
  }
  EXPECT_GT(df.Idf(1), df.Idf(0));   // Term 0 is in every document.
  EXPECT_GT(df.Idf(999), df.Idf(1)); // Unseen term is rarest of all.
}

TEST(TfIdfTest, WeightingAndNormalization) {
  DocumentFrequency df;
  df.AddDocument(TermVector::FromEntries({{0, 1.0}, {1, 1.0}}));
  df.AddDocument(TermVector::FromEntries({{0, 1.0}}));
  TermVector doc = TermVector::FromEntries({{0, 2.0}, {1, 1.0}});
  TermVector weighted = TfIdfWeighted(doc, df);
  EXPECT_NEAR(weighted.Norm(), 1.0, 1e-9);
  // Term 1 is rarer, so (relative to raw counts) it gains weight.
  EXPECT_GT(weighted.ValueOf(1), 0.0);
}

TEST(TfIdfTest, NoNormalizeOption) {
  DocumentFrequency df;
  df.AddDocument(TermVector::FromEntries({{0, 1.0}}));
  TfIdfOptions options;
  options.l2_normalize = false;
  TermVector weighted =
      TfIdfWeighted(TermVector::FromEntries({{0, 1.0}}), df, options);
  EXPECT_GT(weighted.ValueOf(0), 0.0);
}

// -------------------------------- Gazetteer --------------------------------

TEST(GazetteerTest, SingleWordEntity) {
  Vocabulary vocab;
  Gazetteer gaz(&vocab);
  TermId ukraine = gaz.AddEntity("Ukraine");
  Tokenizer tok;
  auto mentions = gaz.FindMentions(tok.Tokenize("Fighting in Ukraine."));
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].entity, ukraine);
}

TEST(GazetteerTest, MultiWordLongestMatch) {
  Vocabulary vocab;
  Gazetteer gaz(&vocab);
  TermId malaysia = gaz.AddEntity("Malaysia");
  TermId airline = gaz.AddEntity("Malaysia Airlines");
  Tokenizer tok;
  auto mentions =
      gaz.FindMentions(tok.Tokenize("A Malaysia Airlines jet crashed"));
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].entity, airline);
  EXPECT_NE(mentions[0].entity, malaysia);
  EXPECT_EQ(mentions[0].token_end - mentions[0].token_begin, 2u);
}

TEST(GazetteerTest, AliasesResolveToCanonical) {
  Vocabulary vocab;
  Gazetteer gaz(&vocab);
  TermId un = gaz.AddEntity("United Nations");
  gaz.AddAlias(un, "UN");
  Tokenizer tok;
  auto mentions = gaz.FindMentions(tok.Tokenize("The UN said on Friday"));
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].entity, un);
}

TEST(GazetteerTest, NonOverlappingMentions) {
  Vocabulary vocab;
  Gazetteer gaz(&vocab);
  gaz.AddEntity("Russia");
  gaz.AddEntity("Ukraine");
  Tokenizer tok;
  auto mentions =
      gaz.FindMentions(tok.Tokenize("Russia and Ukraine and Russia"));
  EXPECT_EQ(mentions.size(), 3u);
}

TEST(GazetteerTest, NoFalseMatches) {
  Vocabulary vocab;
  Gazetteer gaz(&vocab);
  gaz.AddEntity("Malaysia Airlines");
  Tokenizer tok;
  // "Malaysia" alone (without "Airlines") must not match the 2-word alias.
  auto mentions = gaz.FindMentions(tok.Tokenize("Malaysia is a country"));
  EXPECT_TRUE(mentions.empty());
}

// -------------------------------- Annotator --------------------------------

TEST(AnnotatorTest, SeparatesEntitiesFromKeywords) {
  Vocabulary entity_vocab, keyword_vocab;
  Gazetteer gaz(&entity_vocab);
  TermId ukraine = gaz.AddEntity("Ukraine");
  AnnotationPipeline pipeline(&gaz, &keyword_vocab);
  Annotation ann =
      pipeline.Annotate("The plane crashed over Ukraine on Thursday.");
  EXPECT_DOUBLE_EQ(ann.entities.ValueOf(ukraine), 1.0);
  // "crashed" is stemmed to "crash" and must be a keyword, not an entity.
  TermId crash = keyword_vocab.Lookup("crash");
  ASSERT_NE(crash, kInvalidTermId);
  EXPECT_GT(ann.keywords.ValueOf(crash), 0.0);
  // Stopwords never become keywords.
  EXPECT_EQ(keyword_vocab.Lookup("the"), kInvalidTermId);
}

TEST(AnnotatorTest, EntityTokensNotDoubleCounted) {
  Vocabulary entity_vocab, keyword_vocab;
  Gazetteer gaz(&entity_vocab);
  gaz.AddEntity("Ukraine");
  AnnotationPipeline pipeline(&gaz, &keyword_vocab);
  Annotation ann = pipeline.Annotate("Ukraine Ukraine Ukraine");
  EXPECT_DOUBLE_EQ(ann.entities.Sum(), 3.0);
  EXPECT_TRUE(ann.keywords.empty());
}

TEST(AnnotatorTest, CountsRepeatedKeywords) {
  Vocabulary entity_vocab, keyword_vocab;
  Gazetteer gaz(&entity_vocab);
  AnnotationPipeline pipeline(&gaz, &keyword_vocab);
  Annotation ann = pipeline.Annotate("crash after crash after crash");
  TermId crash = keyword_vocab.Lookup("crash");
  ASSERT_NE(crash, kInvalidTermId);
  EXPECT_DOUBLE_EQ(ann.keywords.ValueOf(crash), 3.0);
}

TEST(AnnotatorTest, TokenCountReported) {
  Vocabulary entity_vocab, keyword_vocab;
  Gazetteer gaz(&entity_vocab);
  AnnotationPipeline pipeline(&gaz, &keyword_vocab);
  Annotation ann = pipeline.Annotate("one two three");
  EXPECT_EQ(ann.num_tokens, 3u);
}

}  // namespace
}  // namespace storypivot::text
