#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>

#include "datagen/corpus.h"
#include "datagen/gdelt_export.h"
#include "datagen/mh17.h"
#include "datagen/word_lists.h"
#include "datagen/world.h"

namespace storypivot::datagen {
namespace {

// -------------------------------- WorldModel -------------------------------

TEST(WorldModelTest, EntityUniverseHasRequestedSize) {
  text::Vocabulary entities, keywords;
  WorldConfig config;
  config.num_entities = 120;
  config.num_communities = 10;
  WorldModel world(config, &entities, &keywords);
  EXPECT_EQ(world.entity_names().size(), 120u);
  EXPECT_EQ(entities.size(), 120u);
  // Every entity name is distinct.
  std::set<std::string> names(world.entity_names().begin(),
                              world.entity_names().end());
  EXPECT_EQ(names.size(), 120u);
}

TEST(WorldModelTest, CommunitiesPartitionEntities) {
  text::Vocabulary entities, keywords;
  WorldConfig config;
  config.num_entities = 100;
  config.num_communities = 9;
  WorldModel world(config, &entities, &keywords);
  ASSERT_EQ(world.communities().size(), 9u);
  std::set<text::TermId> seen;
  size_t total = 0;
  for (const auto& community : world.communities()) {
    EXPECT_FALSE(community.empty());
    total += community.size();
    seen.insert(community.begin(), community.end());
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(seen.size(), 100u);  // No entity in two communities.
}

TEST(WorldModelTest, TopicsDrawFromDomains) {
  text::Vocabulary entities, keywords;
  WorldConfig config;
  config.topics_per_domain = 3;
  WorldModel world(config, &entities, &keywords);
  EXPECT_EQ(world.topics().size(), Domains().size() * 3);
  for (const Topic& topic : world.topics()) {
    EXPECT_FALSE(topic.words.empty());
    EXPECT_EQ(topic.words.size(), topic.surfaces.size());
    EXPECT_EQ(topic.words.size(), topic.weights.size());
    EXPECT_GE(topic.domain, 0);
    EXPECT_LT(topic.domain, static_cast<int>(Domains().size()));
  }
}

TEST(WorldModelTest, GazetteerRecognisesWorldEntities) {
  text::Vocabulary entities, keywords;
  WorldModel world({}, &entities, &keywords);
  text::Gazetteer gazetteer(&entities);
  world.PopulateGazetteer(&gazetteer);
  text::Tokenizer tokenizer;
  // "Ukraine" is the first country seed.
  auto mentions =
      gazetteer.FindMentions(tokenizer.Tokenize("crisis in Ukraine today"));
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(entities.TermOf(mentions[0].entity), "Ukraine");
}

TEST(WorldModelTest, DeterministicForSeed) {
  auto build = [] {
    auto entities = std::make_unique<text::Vocabulary>();
    auto keywords = std::make_unique<text::Vocabulary>();
    WorldConfig config;
    config.seed = 77;
    WorldModel world(config, entities.get(), keywords.get());
    return world.entity_names();
  };
  EXPECT_EQ(build(), build());
}

// ---------------------------- CorpusGenerator ------------------------------

class CorpusFixture : public ::testing::Test {
 protected:
  static CorpusConfig SmallConfig() {
    CorpusConfig config;
    config.seed = 9;
    config.num_sources = 5;
    config.num_stories = 12;
    config.target_num_snippets = 800;
    return config;
  }
};

TEST_F(CorpusFixture, SnippetCountNearTarget) {
  Corpus corpus = CorpusGenerator(SmallConfig()).Generate();
  EXPECT_GT(corpus.snippets.size(), 500u);
  EXPECT_LT(corpus.snippets.size(), 1200u);
  EXPECT_EQ(corpus.sources.size(), 5u);
  EXPECT_EQ(corpus.truth_stories.size(), 12u);
}

TEST_F(CorpusFixture, SnippetsAreWellFormed) {
  Corpus corpus = CorpusGenerator(SmallConfig()).Generate();
  for (const Snippet& s : corpus.snippets) {
    EXPECT_LT(s.source, corpus.sources.size());
    EXPECT_GE(s.truth_story, 0);
    EXPECT_LT(s.truth_story,
              static_cast<int64_t>(corpus.truth_stories.size()));
    EXPECT_FALSE(s.entities.empty());
    EXPECT_FALSE(s.keywords.empty());
    EXPECT_FALSE(s.description.empty());
    // All term ids resolve in the corpus vocabularies.
    for (const auto& [term, count] : s.entities.entries()) {
      EXPECT_LT(term, corpus.entity_vocabulary->size());
    }
    for (const auto& [term, count] : s.keywords.entries()) {
      EXPECT_LT(term, corpus.keyword_vocabulary->size());
    }
  }
}

TEST_F(CorpusFixture, SnippetsCarryEventTypes) {
  Corpus corpus = CorpusGenerator(SmallConfig()).Generate();
  std::set<std::string> types;
  for (const Snippet& s : corpus.snippets) {
    EXPECT_FALSE(s.event_type.empty());
    types.insert(s.event_type);
  }
  // Several domains are in play, and types are capitalised domain names.
  EXPECT_GE(types.size(), 3u);
  EXPECT_TRUE(types.begin()->size() > 0 &&
              std::isupper(static_cast<unsigned char>((*types.begin())[0])));
}

TEST_F(CorpusFixture, ArrivalsSortedAndLagEventTimes) {
  Corpus corpus = CorpusGenerator(SmallConfig()).Generate();
  ASSERT_EQ(corpus.arrivals.size(), corpus.snippets.size());
  for (size_t i = 1; i < corpus.arrivals.size(); ++i) {
    EXPECT_LE(corpus.arrivals[i - 1], corpus.arrivals[i]);
  }
  // Publication never precedes the event by more than the timestamp jitter.
  for (size_t i = 0; i < corpus.snippets.size(); ++i) {
    EXPECT_GE(corpus.arrivals[i] + 24 * kSecondsPerHour,
              corpus.snippets[i].timestamp);
  }
  // Event timestamps are NOT sorted in arrival order (out-of-order is the
  // point of §2.4).
  bool out_of_order = false;
  for (size_t i = 1; i < corpus.snippets.size(); ++i) {
    if (corpus.snippets[i].timestamp < corpus.snippets[i - 1].timestamp) {
      out_of_order = true;
      break;
    }
  }
  EXPECT_TRUE(out_of_order);
}

TEST_F(CorpusFixture, TimestampsWithinConfiguredRange) {
  CorpusConfig config = SmallConfig();
  Corpus corpus = CorpusGenerator(config).Generate();
  for (const Snippet& s : corpus.snippets) {
    EXPECT_GE(s.timestamp, config.start_time - kSecondsPerDay);
    EXPECT_LE(s.timestamp, config.end_time + kSecondsPerDay);
  }
}

TEST_F(CorpusFixture, EverySourceReportsSomething) {
  Corpus corpus = CorpusGenerator(SmallConfig()).Generate();
  std::set<SourceId> reporting;
  for (const Snippet& s : corpus.snippets) reporting.insert(s.source);
  EXPECT_EQ(reporting.size(), corpus.sources.size());
}

TEST_F(CorpusFixture, StoriesSpreadOverSources) {
  // Head stories should be covered by several sources (alignment needs
  // cross-source counterparts).
  Corpus corpus = CorpusGenerator(SmallConfig()).Generate();
  std::map<int64_t, std::set<SourceId>> sources_of_story;
  for (const Snippet& s : corpus.snippets) {
    sources_of_story[s.truth_story].insert(s.source);
  }
  EXPECT_GE(sources_of_story.at(0).size(), 3u);
}

TEST_F(CorpusFixture, DeterministicForSeed) {
  Corpus a = CorpusGenerator(SmallConfig()).Generate();
  Corpus b = CorpusGenerator(SmallConfig()).Generate();
  ASSERT_EQ(a.snippets.size(), b.snippets.size());
  for (size_t i = 0; i < a.snippets.size(); ++i) {
    EXPECT_EQ(a.snippets[i].timestamp, b.snippets[i].timestamp);
    EXPECT_EQ(a.snippets[i].truth_story, b.snippets[i].truth_story);
    EXPECT_TRUE(a.snippets[i].entities == b.snippets[i].entities);
    EXPECT_TRUE(a.snippets[i].keywords == b.snippets[i].keywords);
  }
}

TEST_F(CorpusFixture, DifferentSeedsDiffer) {
  CorpusConfig other = SmallConfig();
  other.seed = 10;
  Corpus a = CorpusGenerator(SmallConfig()).Generate();
  Corpus b = CorpusGenerator(other).Generate();
  bool differs = a.snippets.size() != b.snippets.size();
  for (size_t i = 0; !differs && i < a.snippets.size(); ++i) {
    differs = a.snippets[i].timestamp != b.snippets[i].timestamp;
  }
  EXPECT_TRUE(differs);
}

TEST_F(CorpusFixture, RawTextModeEmitsDocuments) {
  CorpusConfig config = SmallConfig();
  config.target_num_snippets = 100;
  config.emit_raw_text = true;
  Corpus corpus = CorpusGenerator(config).Generate();
  ASSERT_EQ(corpus.documents.size(), corpus.snippets.size());
  for (size_t i = 0; i < corpus.documents.size(); ++i) {
    EXPECT_FALSE(corpus.documents[i].paragraphs.empty());
    EXPECT_EQ(corpus.documents[i].source, corpus.snippets[i].source);
    EXPECT_EQ(corpus.documents[i].truth_story,
              corpus.snippets[i].truth_story);
  }
}

TEST_F(CorpusFixture, EpisodeDriftChangesContent) {
  // Within a multi-episode story, the first and last episode keyword
  // pools must differ (story evolution).
  CorpusConfig config = SmallConfig();
  config.max_episodes = 4;
  config.mean_story_duration_days = 60;
  Corpus corpus = CorpusGenerator(config).Generate();
  bool found_drift = false;
  for (const TruthStory& story : corpus.truth_stories) {
    if (story.episodes.size() < 3) continue;
    std::set<text::TermId> first(story.episodes.front().word_pool.begin(),
                                 story.episodes.front().word_pool.end());
    std::set<text::TermId> last(story.episodes.back().word_pool.begin(),
                                story.episodes.back().word_pool.end());
    std::vector<text::TermId> inter;
    std::set_intersection(first.begin(), first.end(), last.begin(),
                          last.end(), std::back_inserter(inter));
    if (inter.size() < first.size()) found_drift = true;
  }
  EXPECT_TRUE(found_drift);
}

TEST(GdeltPresetTest, MatchesPaperCard) {
  CorpusConfig preset = GdeltScalePreset();
  EXPECT_EQ(preset.num_sources, 50);
  EXPECT_EQ(preset.num_entities, 500);
  EXPECT_EQ(preset.start_time, MakeTimestamp(2014, 6, 1));
  EXPECT_EQ(preset.end_time, MakeTimestamp(2014, 12, 1));
  EXPECT_EQ(preset.target_num_snippets, 10'000'000);
}

// ------------------------------ GDELT export -------------------------------

TEST(GdeltExportTest, TsvRoundTrip) {
  CorpusConfig config;
  config.seed = 13;
  config.num_sources = 3;
  config.num_stories = 5;
  config.target_num_snippets = 120;
  Corpus corpus = CorpusGenerator(config).Generate();
  std::string tsv = ExportTsv(corpus);
  Result<ImportedCorpus> imported = ImportTsv(tsv);
  ASSERT_TRUE(imported.ok());
  const ImportedCorpus& in = imported.value();
  ASSERT_EQ(in.snippets.size(), corpus.snippets.size());
  EXPECT_EQ(in.sources.size(), corpus.sources.size());
  for (size_t i = 0; i < in.snippets.size(); ++i) {
    const Snippet& a = corpus.snippets[i];
    const Snippet& b = in.snippets[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.truth_story, b.truth_story);
    // Timestamps round-trip at minute precision.
    EXPECT_LE(std::abs(a.timestamp - b.timestamp), 60);
    EXPECT_EQ(a.event_type, b.event_type);
    EXPECT_EQ(a.entities.size(), b.entities.size());
    EXPECT_EQ(a.keywords.size(), b.keywords.size());
    // Entity *names* round-trip even though ids may be re-assigned.
    for (const auto& [term, count] : a.entities.entries()) {
      const std::string& name = corpus.entity_vocabulary->TermOf(term);
      text::TermId new_id = in.entity_vocabulary->Lookup(name);
      ASSERT_NE(new_id, text::kInvalidTermId);
      EXPECT_GT(b.entities.ValueOf(new_id), 0.0);
    }
  }
}

TEST(GdeltExportTest, ImportRejectsMalformedRows) {
  EXPECT_FALSE(ImportTsv("").ok());
  // Header only: no rows is fine.
  Result<ImportedCorpus> empty =
      ImportTsv("id\tsource\tevent_date\tentities\tkeywords\tdescription"
                "\turl\ttruth\n");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().snippets.empty());
  // Wrong column count.
  EXPECT_FALSE(
      ImportTsv("id\tsource\tevent_type\tevent_date\tentities\tkeywords"
                "\tdescription\turl\ttruth\n1\tNYT\n")
          .ok());
  // Bad date.
  EXPECT_FALSE(
      ImportTsv("id\tsource\tevent_type\tevent_date\tentities\tkeywords"
                "\tdescription\turl\ttruth\n1\tNYT\tAccident"
                "\tnot-a-date\t\t\t\t\t0\n")
          .ok());
}

TEST(GdeltExportTest, PermissiveImportQuarantinesWithLineNumbers) {
  const std::string header =
      "id\tsource\tevent_type\tevent_date\tentities\tkeywords"
      "\tdescription\turl\ttruth\n";
  const std::string tsv =
      header +
      "1\tNYT\tAccident\t2014-07-17 13:20\tMH17\tcrash:2\td\tu\t0\n" +
      "oops\tNYT\tAccident\t2014-07-17 13:20\tMH17\tcrash:1\td\tu\t0\n" +
      "3\tBBC\n" +
      "4\tBBC\tAccident\tnot-a-date\tMH17\tcrash:1\td\tu\t1\n" +
      "5\tBBC\tAccident\t2014-07-18 09:00\tMH17\tcrash:3\td\tu\t0\n";
  ImportReport report;
  Result<ImportedCorpus> imported = ImportTsvPermissive(tsv, &report);
  ASSERT_TRUE(imported.ok());
  // Good rows import; each bad row is reported with its FILE line.
  EXPECT_EQ(imported.value().snippets.size(), 2u);
  EXPECT_EQ(report.rows_seen, 5u);
  EXPECT_EQ(report.rows_imported, 2u);
  ASSERT_EQ(report.skipped.size(), 3u);
  EXPECT_EQ(report.skipped[0].line, 3u);
  EXPECT_NE(report.skipped[0].reason.find("bad id"), std::string::npos);
  EXPECT_EQ(report.skipped[1].line, 4u);
  EXPECT_NE(report.skipped[1].reason.find("expected 9 fields"),
            std::string::npos);
  EXPECT_EQ(report.skipped[2].line, 5u);
  EXPECT_NE(report.skipped[2].reason.find("bad date"), std::string::npos);
  // Quarantined rows leave no trace: only one source (NYT from row 1 was
  // valid; the bad NYT/BBC rows interned nothing... BBC appears via the
  // valid row 6).
  EXPECT_EQ(imported.value().sources.size(), 2u);
}

TEST(GdeltExportTest, PermissiveImportStillRejectsEmptyInput) {
  ImportReport report;
  EXPECT_FALSE(ImportTsvPermissive("", &report).ok());
}

TEST(GdeltExportTest, PermissiveMatchesStrictOnCleanInput) {
  CorpusConfig config;
  config.seed = 14;
  config.num_sources = 2;
  config.num_stories = 3;
  config.target_num_snippets = 60;
  Corpus corpus = CorpusGenerator(config).Generate();
  std::string tsv = ExportTsv(corpus);
  ImportReport report;
  Result<ImportedCorpus> permissive = ImportTsvPermissive(tsv, &report);
  Result<ImportedCorpus> strict = ImportTsv(tsv);
  ASSERT_TRUE(permissive.ok());
  ASSERT_TRUE(strict.ok());
  EXPECT_TRUE(report.skipped.empty());
  EXPECT_EQ(report.rows_imported, report.rows_seen);
  ASSERT_EQ(permissive.value().snippets.size(),
            strict.value().snippets.size());
  for (size_t i = 0; i < strict.value().snippets.size(); ++i) {
    EXPECT_EQ(permissive.value().snippets[i].id,
              strict.value().snippets[i].id);
  }
}

// --------------------------------- MH17 ------------------------------------

TEST(Mh17Test, CorpusIsWellFormed) {
  Mh17Corpus corpus = MakeMh17Corpus();
  EXPECT_EQ(corpus.sources.size(), 2u);
  EXPECT_GE(corpus.documents.size(), 10u);
  std::set<int64_t> stories;
  for (const Document& doc : corpus.documents) {
    EXPECT_LT(doc.source, corpus.sources.size());
    EXPECT_FALSE(doc.title.empty());
    EXPECT_FALSE(doc.paragraphs.empty());
    EXPECT_FALSE(doc.url.empty());
    EXPECT_GE(doc.truth_story, 0);
    EXPECT_FALSE(doc.event_type.empty());
    stories.insert(doc.truth_story);
    EXPECT_GE(doc.timestamp, MakeTimestamp(2014, 7, 1));
    EXPECT_LE(doc.timestamp, MakeTimestamp(2014, 12, 1));
  }
  EXPECT_GE(stories.size(), 4u);  // Crash, inquiry, antitrust, doctors.
}

TEST(Mh17Test, GazetteerCoversKeyEntities) {
  Mh17Corpus corpus = MakeMh17Corpus();
  text::Vocabulary vocab;
  text::Gazetteer gazetteer(&vocab);
  PopulateMh17Gazetteer(corpus, &gazetteer);
  text::Tokenizer tokenizer;
  auto mentions = gazetteer.FindMentions(tokenizer.Tokenize(
      "The U.S. said the Malaysia Airlines jet crashed over Ukraine"));
  // U.S. alias -> United States, Malaysia Airlines, Ukraine.
  EXPECT_EQ(mentions.size(), 3u);
}

TEST(Mh17Test, BothSourcesCoverTheCrashStory) {
  Mh17Corpus corpus = MakeMh17Corpus();
  std::set<SourceId> crash_sources;
  for (const Document& doc : corpus.documents) {
    if (doc.truth_story == 0) crash_sources.insert(doc.source);
  }
  EXPECT_EQ(crash_sources.size(), 2u);
}

}  // namespace
}  // namespace storypivot::datagen
