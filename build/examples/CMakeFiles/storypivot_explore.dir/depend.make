# Empty dependencies file for storypivot_explore.
# This may be replaced when dependencies are built.
