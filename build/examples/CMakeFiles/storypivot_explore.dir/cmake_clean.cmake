file(REMOVE_RECURSE
  "CMakeFiles/storypivot_explore.dir/storypivot_explore.cpp.o"
  "CMakeFiles/storypivot_explore.dir/storypivot_explore.cpp.o.d"
  "storypivot_explore"
  "storypivot_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storypivot_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
