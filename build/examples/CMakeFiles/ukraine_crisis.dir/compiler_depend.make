# Empty compiler generated dependencies file for ukraine_crisis.
# This may be replaced when dependencies are built.
