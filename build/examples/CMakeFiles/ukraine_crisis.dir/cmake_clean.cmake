file(REMOVE_RECURSE
  "CMakeFiles/ukraine_crisis.dir/ukraine_crisis.cpp.o"
  "CMakeFiles/ukraine_crisis.dir/ukraine_crisis.cpp.o.d"
  "ukraine_crisis"
  "ukraine_crisis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ukraine_crisis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
