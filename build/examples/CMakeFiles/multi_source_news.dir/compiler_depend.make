# Empty compiler generated dependencies file for multi_source_news.
# This may be replaced when dependencies are built.
