file(REMOVE_RECURSE
  "CMakeFiles/multi_source_news.dir/multi_source_news.cpp.o"
  "CMakeFiles/multi_source_news.dir/multi_source_news.cpp.o.d"
  "multi_source_news"
  "multi_source_news.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_source_news.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
