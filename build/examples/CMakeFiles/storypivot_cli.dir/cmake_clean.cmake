file(REMOVE_RECURSE
  "CMakeFiles/storypivot_cli.dir/storypivot_cli.cpp.o"
  "CMakeFiles/storypivot_cli.dir/storypivot_cli.cpp.o.d"
  "storypivot_cli"
  "storypivot_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storypivot_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
