# Empty dependencies file for storypivot_cli.
# This may be replaced when dependencies are built.
