
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/corpus.cc" "src/datagen/CMakeFiles/sp_datagen.dir/corpus.cc.o" "gcc" "src/datagen/CMakeFiles/sp_datagen.dir/corpus.cc.o.d"
  "/root/repo/src/datagen/gdelt_export.cc" "src/datagen/CMakeFiles/sp_datagen.dir/gdelt_export.cc.o" "gcc" "src/datagen/CMakeFiles/sp_datagen.dir/gdelt_export.cc.o.d"
  "/root/repo/src/datagen/mh17.cc" "src/datagen/CMakeFiles/sp_datagen.dir/mh17.cc.o" "gcc" "src/datagen/CMakeFiles/sp_datagen.dir/mh17.cc.o.d"
  "/root/repo/src/datagen/word_lists.cc" "src/datagen/CMakeFiles/sp_datagen.dir/word_lists.cc.o" "gcc" "src/datagen/CMakeFiles/sp_datagen.dir/word_lists.cc.o.d"
  "/root/repo/src/datagen/world.cc" "src/datagen/CMakeFiles/sp_datagen.dir/world.cc.o" "gcc" "src/datagen/CMakeFiles/sp_datagen.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/sp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sp_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
