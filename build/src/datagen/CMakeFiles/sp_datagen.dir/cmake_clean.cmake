file(REMOVE_RECURSE
  "CMakeFiles/sp_datagen.dir/corpus.cc.o"
  "CMakeFiles/sp_datagen.dir/corpus.cc.o.d"
  "CMakeFiles/sp_datagen.dir/gdelt_export.cc.o"
  "CMakeFiles/sp_datagen.dir/gdelt_export.cc.o.d"
  "CMakeFiles/sp_datagen.dir/mh17.cc.o"
  "CMakeFiles/sp_datagen.dir/mh17.cc.o.d"
  "CMakeFiles/sp_datagen.dir/word_lists.cc.o"
  "CMakeFiles/sp_datagen.dir/word_lists.cc.o.d"
  "CMakeFiles/sp_datagen.dir/world.cc.o"
  "CMakeFiles/sp_datagen.dir/world.cc.o.d"
  "libsp_datagen.a"
  "libsp_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
