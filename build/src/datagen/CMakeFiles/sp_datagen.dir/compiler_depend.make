# Empty compiler generated dependencies file for sp_datagen.
# This may be replaced when dependencies are built.
