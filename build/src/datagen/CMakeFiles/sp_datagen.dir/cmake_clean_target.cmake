file(REMOVE_RECURSE
  "libsp_datagen.a"
)
