file(REMOVE_RECURSE
  "CMakeFiles/sp_eval.dir/diagnostics.cc.o"
  "CMakeFiles/sp_eval.dir/diagnostics.cc.o.d"
  "CMakeFiles/sp_eval.dir/experiment.cc.o"
  "CMakeFiles/sp_eval.dir/experiment.cc.o.d"
  "CMakeFiles/sp_eval.dir/metrics.cc.o"
  "CMakeFiles/sp_eval.dir/metrics.cc.o.d"
  "libsp_eval.a"
  "libsp_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
