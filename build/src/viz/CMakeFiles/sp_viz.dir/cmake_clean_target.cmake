file(REMOVE_RECURSE
  "libsp_viz.a"
)
