file(REMOVE_RECURSE
  "CMakeFiles/sp_viz.dir/ascii.cc.o"
  "CMakeFiles/sp_viz.dir/ascii.cc.o.d"
  "CMakeFiles/sp_viz.dir/json_export.cc.o"
  "CMakeFiles/sp_viz.dir/json_export.cc.o.d"
  "libsp_viz.a"
  "libsp_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
