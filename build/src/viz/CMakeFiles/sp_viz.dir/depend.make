# Empty dependencies file for sp_viz.
# This may be replaced when dependencies are built.
