# Empty compiler generated dependencies file for sp_sketch.
# This may be replaced when dependencies are built.
