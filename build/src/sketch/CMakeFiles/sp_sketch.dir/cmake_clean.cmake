file(REMOVE_RECURSE
  "CMakeFiles/sp_sketch.dir/lsh_index.cc.o"
  "CMakeFiles/sp_sketch.dir/lsh_index.cc.o.d"
  "CMakeFiles/sp_sketch.dir/minhash.cc.o"
  "CMakeFiles/sp_sketch.dir/minhash.cc.o.d"
  "libsp_sketch.a"
  "libsp_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
