file(REMOVE_RECURSE
  "libsp_sketch.a"
)
