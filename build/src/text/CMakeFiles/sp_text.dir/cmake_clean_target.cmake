file(REMOVE_RECURSE
  "libsp_text.a"
)
