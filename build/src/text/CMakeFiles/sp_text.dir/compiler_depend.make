# Empty compiler generated dependencies file for sp_text.
# This may be replaced when dependencies are built.
