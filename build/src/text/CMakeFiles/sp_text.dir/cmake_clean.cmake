file(REMOVE_RECURSE
  "CMakeFiles/sp_text.dir/annotator.cc.o"
  "CMakeFiles/sp_text.dir/annotator.cc.o.d"
  "CMakeFiles/sp_text.dir/gazetteer.cc.o"
  "CMakeFiles/sp_text.dir/gazetteer.cc.o.d"
  "CMakeFiles/sp_text.dir/knowledge_base.cc.o"
  "CMakeFiles/sp_text.dir/knowledge_base.cc.o.d"
  "CMakeFiles/sp_text.dir/porter_stemmer.cc.o"
  "CMakeFiles/sp_text.dir/porter_stemmer.cc.o.d"
  "CMakeFiles/sp_text.dir/stopwords.cc.o"
  "CMakeFiles/sp_text.dir/stopwords.cc.o.d"
  "CMakeFiles/sp_text.dir/term_vector.cc.o"
  "CMakeFiles/sp_text.dir/term_vector.cc.o.d"
  "CMakeFiles/sp_text.dir/tfidf.cc.o"
  "CMakeFiles/sp_text.dir/tfidf.cc.o.d"
  "CMakeFiles/sp_text.dir/tokenizer.cc.o"
  "CMakeFiles/sp_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/sp_text.dir/vocabulary.cc.o"
  "CMakeFiles/sp_text.dir/vocabulary.cc.o.d"
  "libsp_text.a"
  "libsp_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
