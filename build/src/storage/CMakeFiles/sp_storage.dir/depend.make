# Empty dependencies file for sp_storage.
# This may be replaced when dependencies are built.
