
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bucketed_index.cc" "src/storage/CMakeFiles/sp_storage.dir/bucketed_index.cc.o" "gcc" "src/storage/CMakeFiles/sp_storage.dir/bucketed_index.cc.o.d"
  "/root/repo/src/storage/inverted_index.cc" "src/storage/CMakeFiles/sp_storage.dir/inverted_index.cc.o" "gcc" "src/storage/CMakeFiles/sp_storage.dir/inverted_index.cc.o.d"
  "/root/repo/src/storage/snippet_store.cc" "src/storage/CMakeFiles/sp_storage.dir/snippet_store.cc.o" "gcc" "src/storage/CMakeFiles/sp_storage.dir/snippet_store.cc.o.d"
  "/root/repo/src/storage/temporal_index.cc" "src/storage/CMakeFiles/sp_storage.dir/temporal_index.cc.o" "gcc" "src/storage/CMakeFiles/sp_storage.dir/temporal_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/sp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sp_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
