file(REMOVE_RECURSE
  "libsp_storage.a"
)
