file(REMOVE_RECURSE
  "CMakeFiles/sp_storage.dir/bucketed_index.cc.o"
  "CMakeFiles/sp_storage.dir/bucketed_index.cc.o.d"
  "CMakeFiles/sp_storage.dir/inverted_index.cc.o"
  "CMakeFiles/sp_storage.dir/inverted_index.cc.o.d"
  "CMakeFiles/sp_storage.dir/snippet_store.cc.o"
  "CMakeFiles/sp_storage.dir/snippet_store.cc.o.d"
  "CMakeFiles/sp_storage.dir/temporal_index.cc.o"
  "CMakeFiles/sp_storage.dir/temporal_index.cc.o.d"
  "libsp_storage.a"
  "libsp_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
