
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/story.cc" "src/model/CMakeFiles/sp_model.dir/story.cc.o" "gcc" "src/model/CMakeFiles/sp_model.dir/story.cc.o.d"
  "/root/repo/src/model/time.cc" "src/model/CMakeFiles/sp_model.dir/time.cc.o" "gcc" "src/model/CMakeFiles/sp_model.dir/time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/sp_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
