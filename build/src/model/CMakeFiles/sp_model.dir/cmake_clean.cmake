file(REMOVE_RECURSE
  "CMakeFiles/sp_model.dir/story.cc.o"
  "CMakeFiles/sp_model.dir/story.cc.o.d"
  "CMakeFiles/sp_model.dir/time.cc.o"
  "CMakeFiles/sp_model.dir/time.cc.o.d"
  "libsp_model.a"
  "libsp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
