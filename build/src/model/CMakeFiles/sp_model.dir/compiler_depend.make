# Empty compiler generated dependencies file for sp_model.
# This may be replaced when dependencies are built.
