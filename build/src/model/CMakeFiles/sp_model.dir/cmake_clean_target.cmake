file(REMOVE_RECURSE
  "libsp_model.a"
)
