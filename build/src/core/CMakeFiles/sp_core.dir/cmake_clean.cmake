file(REMOVE_RECURSE
  "CMakeFiles/sp_core.dir/aligner.cc.o"
  "CMakeFiles/sp_core.dir/aligner.cc.o.d"
  "CMakeFiles/sp_core.dir/dedup.cc.o"
  "CMakeFiles/sp_core.dir/dedup.cc.o.d"
  "CMakeFiles/sp_core.dir/engine.cc.o"
  "CMakeFiles/sp_core.dir/engine.cc.o.d"
  "CMakeFiles/sp_core.dir/identifier.cc.o"
  "CMakeFiles/sp_core.dir/identifier.cc.o.d"
  "CMakeFiles/sp_core.dir/incremental.cc.o"
  "CMakeFiles/sp_core.dir/incremental.cc.o.d"
  "CMakeFiles/sp_core.dir/query.cc.o"
  "CMakeFiles/sp_core.dir/query.cc.o.d"
  "CMakeFiles/sp_core.dir/refiner.cc.o"
  "CMakeFiles/sp_core.dir/refiner.cc.o.d"
  "CMakeFiles/sp_core.dir/similarity.cc.o"
  "CMakeFiles/sp_core.dir/similarity.cc.o.d"
  "CMakeFiles/sp_core.dir/snapshot.cc.o"
  "CMakeFiles/sp_core.dir/snapshot.cc.o.d"
  "CMakeFiles/sp_core.dir/story_set.cc.o"
  "CMakeFiles/sp_core.dir/story_set.cc.o.d"
  "CMakeFiles/sp_core.dir/trends.cc.o"
  "CMakeFiles/sp_core.dir/trends.cc.o.d"
  "libsp_core.a"
  "libsp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
