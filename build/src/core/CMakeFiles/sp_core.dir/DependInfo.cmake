
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aligner.cc" "src/core/CMakeFiles/sp_core.dir/aligner.cc.o" "gcc" "src/core/CMakeFiles/sp_core.dir/aligner.cc.o.d"
  "/root/repo/src/core/dedup.cc" "src/core/CMakeFiles/sp_core.dir/dedup.cc.o" "gcc" "src/core/CMakeFiles/sp_core.dir/dedup.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/sp_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/sp_core.dir/engine.cc.o.d"
  "/root/repo/src/core/identifier.cc" "src/core/CMakeFiles/sp_core.dir/identifier.cc.o" "gcc" "src/core/CMakeFiles/sp_core.dir/identifier.cc.o.d"
  "/root/repo/src/core/incremental.cc" "src/core/CMakeFiles/sp_core.dir/incremental.cc.o" "gcc" "src/core/CMakeFiles/sp_core.dir/incremental.cc.o.d"
  "/root/repo/src/core/query.cc" "src/core/CMakeFiles/sp_core.dir/query.cc.o" "gcc" "src/core/CMakeFiles/sp_core.dir/query.cc.o.d"
  "/root/repo/src/core/refiner.cc" "src/core/CMakeFiles/sp_core.dir/refiner.cc.o" "gcc" "src/core/CMakeFiles/sp_core.dir/refiner.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/core/CMakeFiles/sp_core.dir/similarity.cc.o" "gcc" "src/core/CMakeFiles/sp_core.dir/similarity.cc.o.d"
  "/root/repo/src/core/snapshot.cc" "src/core/CMakeFiles/sp_core.dir/snapshot.cc.o" "gcc" "src/core/CMakeFiles/sp_core.dir/snapshot.cc.o.d"
  "/root/repo/src/core/story_set.cc" "src/core/CMakeFiles/sp_core.dir/story_set.cc.o" "gcc" "src/core/CMakeFiles/sp_core.dir/story_set.cc.o.d"
  "/root/repo/src/core/trends.cc" "src/core/CMakeFiles/sp_core.dir/trends.cc.o" "gcc" "src/core/CMakeFiles/sp_core.dir/trends.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/sp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/sp_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sp_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
