file(REMOVE_RECURSE
  "CMakeFiles/core_alignment_test.dir/core_alignment_test.cc.o"
  "CMakeFiles/core_alignment_test.dir/core_alignment_test.cc.o.d"
  "core_alignment_test"
  "core_alignment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_alignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
