file(REMOVE_RECURSE
  "CMakeFiles/core_similarity_test.dir/core_similarity_test.cc.o"
  "CMakeFiles/core_similarity_test.dir/core_similarity_test.cc.o.d"
  "core_similarity_test"
  "core_similarity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_similarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
