# Empty compiler generated dependencies file for knowledge_base_test.
# This may be replaced when dependencies are built.
