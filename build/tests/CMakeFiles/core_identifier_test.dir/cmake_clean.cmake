file(REMOVE_RECURSE
  "CMakeFiles/core_identifier_test.dir/core_identifier_test.cc.o"
  "CMakeFiles/core_identifier_test.dir/core_identifier_test.cc.o.d"
  "core_identifier_test"
  "core_identifier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_identifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
