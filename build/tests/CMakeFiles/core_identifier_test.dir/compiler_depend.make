# Empty compiler generated dependencies file for core_identifier_test.
# This may be replaced when dependencies are built.
