file(REMOVE_RECURSE
  "CMakeFiles/trends_test.dir/trends_test.cc.o"
  "CMakeFiles/trends_test.dir/trends_test.cc.o.d"
  "trends_test"
  "trends_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trends_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
