file(REMOVE_RECURSE
  "CMakeFiles/bench_thresholds.dir/bench_thresholds.cc.o"
  "CMakeFiles/bench_thresholds.dir/bench_thresholds.cc.o.d"
  "bench_thresholds"
  "bench_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
