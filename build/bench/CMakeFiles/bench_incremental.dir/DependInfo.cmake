
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_incremental.cc" "bench/CMakeFiles/bench_incremental.dir/bench_incremental.cc.o" "gcc" "bench/CMakeFiles/bench_incremental.dir/bench_incremental.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/sp_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/sp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/sp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/sp_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sp_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/sp_viz.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
