// Serving-tier bench (DESIGN.md §14): closed-loop readers against the
// epoch-pinned Server, sweeping reader count x read/write mix.
//
// Before any timing, the harness asserts correctness: a pinned
// ReadSnapshot must answer every workload query byte-identically to a
// fresh serial engine fed exactly the same acked operation prefix. Only
// then does it measure:
//
//   * read_only  — R closed-loop readers, no writer. Epochs never
//     advance, so the hot-query cache converges to ~100% hits.
//   * read_write — the same readers while the single writer streams
//     snippet batches, publishing a new epoch per acked batch. Every
//     epoch change invalidates the cache for free (epoch-prefixed
//     keys), so this measures the steady-state mix of fresh ranks and
//     hits under snapshot churn.
//
// Emits BENCH_serve.json. Run with --smoke for the CI-sized variant
// (small corpus, two reader counts, short cells, same assertions).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "cow/stats.h"
#include "search/search_engine.h"
#include "serve/read_snapshot.h"
#include "serve/serving_engine.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"

namespace storypivot::bench {
namespace {

using search::SearchOptions;
using search::StoryHit;

// Scratch WAL directories live under one removable root (same idiom as
// bench_recovery / bench_faults), deleted at the end of Main() — a bench
// run must not leave litter in the working directory.
constexpr const char kScratchRoot[] = "bench_serve_tmp";

std::string FreshDir(const std::string& name) {
  std::string dir = std::string(kScratchRoot) + "/wal_" + name;
  if (FileExists(dir)) {
    Result<std::vector<std::string>> names = ListDirectory(dir);
    SP_CHECK_OK(names);
    for (const std::string& entry : names.value()) {
      SP_CHECK_OK(RemoveFile(dir + "/" + entry));
    }
  }
  SP_CHECK_OK(CreateDirectories(dir));
  return dir;
}

void RemoveDirRecursive(const std::string& path) {
  if (!FileExists(path)) return;
  Result<std::vector<std::string>> names = ListDirectory(path);
  if (names.ok()) {  // A directory: empty it, then rmdir.
    for (const std::string& entry : names.value()) {
      RemoveDirRecursive(path + "/" + entry);
    }
    IgnoreError(RemoveDirectory(path));
    return;
  }
  IgnoreError(RemoveFile(path));
}

/// First half of the corpus (id-cleared) is the warmup batch every cell
/// ingests up front; the second half is what the writer streams during
/// read_write cells.
struct SplitCorpus {
  std::vector<Snippet> warmup;
  std::vector<Snippet> pending;
};

SplitCorpus Split(const datagen::Corpus& corpus) {
  SplitCorpus split;
  const size_t half = corpus.snippets.size() / 2;
  for (size_t i = 0; i < corpus.snippets.size(); ++i) {
    Snippet copy = corpus.snippets[i];
    copy.id = kInvalidSnippetId;
    (i < half ? split.warmup : split.pending).push_back(std::move(copy));
  }
  return split;
}

/// The acked prefix every cell starts from: vocabularies, sources, the
/// warmup half as ONE batch, one Align. Returns the streamable rest.
std::vector<Snippet> IngestWarmup(const datagen::Corpus& corpus,
                                  persist::DurableEngine* durable) {
  SP_CHECK_OK(durable->ImportVocabularies(*corpus.entity_vocabulary,
                                          *corpus.keyword_vocabulary));
  for (const SourceInfo& source : corpus.sources) {
    SP_CHECK_OK(durable->RegisterSource(source.name));
  }
  SplitCorpus split = Split(corpus);
  SP_CHECK_OK(durable->AddSnippets(std::move(split.warmup)));
  SP_CHECK_OK(durable->Align());
  return std::move(split.pending);
}

/// Deterministic free-text workload: surfaces of terms that occur in
/// the warmup prefix, ranked by document frequency and strided so the
/// mix spans hot and selective terms (same scheme as bench_search).
std::vector<std::string> MakeWorkload(const StoryPivotEngine& engine,
                                      const search::SearchEngine& searcher,
                                      size_t count) {
  auto surfaces_by_df = [&](search::Field field,
                            const text::Vocabulary& vocabulary) {
    std::vector<std::pair<size_t, text::TermId>> terms;
    for (text::TermId id = 0; id < vocabulary.size(); ++id) {
      size_t df = searcher.index().DocumentFrequency(field, id);
      if (df > 0) terms.push_back({df, id});
    }
    std::sort(terms.begin(), terms.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    return terms;
  };
  auto entities =
      surfaces_by_df(search::Field::kEntity, engine.entity_vocabulary());
  auto keywords =
      surfaces_by_df(search::Field::kKeyword, engine.keyword_vocabulary());
  SP_CHECK(!entities.empty() && keywords.size() >= 2);

  std::vector<std::string> workload;
  for (size_t q = 0; q < count; ++q) {
    std::string query =
        engine.entity_vocabulary().TermOf(entities[(q * 7) % entities.size()]
                                              .second);
    for (size_t j = 0; j < 2; ++j) {
      query += ' ';
      query += engine.keyword_vocabulary().TermOf(
          keywords[(q * 5 + j * 3) % keywords.size()].second);
    }
    workload.push_back(std::move(query));
  }
  return workload;
}

/// The bench's correctness gate: every workload query answered from a
/// pinned snapshot must equal a fresh serial engine fed the same acked
/// prefix. Runs before any timing; a mismatch aborts the bench.
void AssertSnapshotMatchesSerialEngine(const datagen::Corpus& corpus,
                                       const std::vector<std::string>& workload,
                                       const SearchOptions& options,
                                       serve::ServingEngine* serving) {
  StoryPivotEngine serial;
  search::SearchEngine serial_search(&serial);
  SP_CHECK_OK(serial.ImportVocabularies(*corpus.entity_vocabulary,
                                        *corpus.keyword_vocabulary));
  for (const SourceInfo& source : corpus.sources) {
    serial.RegisterSource(source.name);
  }
  SP_CHECK_OK(serial.AddSnippets(Split(corpus).warmup));
  (void)serial.Align();

  std::shared_ptr<const serve::ReadSnapshot> snapshot =
      serving->epochs().Pin();
  SP_CHECK(snapshot != nullptr);
  size_t nonempty = 0;
  for (const std::string& query : workload) {
    std::vector<StoryHit> pinned = snapshot->Search(query, options);
    std::vector<StoryHit> serial_hits = serial_search.Search(query, options);
    SP_CHECK(pinned == serial_hits);
    if (!pinned.empty()) ++nonempty;
  }
  SP_CHECK(nonempty > 0);
  std::printf("equality gate: %zu queries, %zu non-empty, pinned snapshot "
              "== serial engine at acked prefix\n",
              workload.size(), nonempty);
}

struct CellResult {
  std::string mix;
  size_t readers = 0;
  uint64_t policy_ops = 1;
  uint64_t ok = 0;
  uint64_t shed = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double cache_hit_rate = 0.0;
  uint64_t epochs_published = 0;
  uint64_t epochs_reclaimed = 0;
  size_t snippets_ingested = 0;
  // Capture observability (ISSUE PR 8): cost of keeping readers fresh.
  uint64_t captures = 0;
  double mean_capture_ms = 0.0;
  uint64_t bytes_copied = 0;
  uint64_t last_bytes_shared = 0;
  uint64_t cache_evicted_by_epoch = 0;
};

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  std::sort(sorted->begin(), sorted->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted->size()));
  if (idx >= sorted->size()) idx = sorted->size() - 1;
  return (*sorted)[idx];
}

CellResult RunCell(const datagen::Corpus& corpus,
                   const std::vector<std::string>& workload,
                   const SearchOptions& options, const std::string& mix,
                   size_t readers, double seconds, size_t write_batch,
                   serve::PublishPolicy policy = {}) {
  const std::string dir =
      FreshDir(mix + "_" + std::to_string(readers) + "_p" +
               std::to_string(policy.every_ops));
  serve::ServerOptions server_options;
  server_options.num_threads = 4;
  server_options.max_queued = 1024;
  server_options.cache_capacity = 256;
  persist::DurabilityOptions durability;
  durability.checkpoint_every_ops = 1 << 20;  // no mid-cell checkpoints
  Result<std::unique_ptr<serve::ServingEngine>> opened =
      serve::ServingEngine::Open(dir, server_options, durability, {},
                                 policy);
  SP_CHECK_OK(opened);
  serve::ServingEngine& serving = *opened.value();

  std::vector<Snippet> pending = IngestWarmup(corpus, &serving.durable());

  struct Tally {
    uint64_t ok = 0;
    uint64_t shed = 0;
    std::vector<double> latencies_ms;
  };
  std::atomic<bool> stop{false};
  std::vector<Tally> tallies(readers);
  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      Tally& tally = tallies[r];
      size_t next = r;  // offset per reader so caches are shared, not lockstep
      while (!stop.load(std::memory_order_relaxed)) {
        serve::QueryRequest request;
        request.query = workload[next++ % workload.size()];
        request.options = options;
        WallTimer timer;
        Result<serve::QueryResponse> response = serving.Query(request);
        if (response.ok()) {
          ++tally.ok;
          tally.latencies_ms.push_back(timer.ElapsedMillis());
        } else {
          ++tally.shed;
        }
      }
    });
  }

  WallTimer wall;
  size_t ingested = 0;
  if (mix == "read_write") {
    // The single writer: stream the held-back half, one acked batch =
    // one published epoch. Wraps around (fresh ids) if it drains early.
    size_t cursor = 0;
    while (wall.ElapsedSeconds() < seconds) {
      size_t n = std::min(write_batch, pending.size() - cursor);
      std::vector<Snippet> chunk;
      chunk.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        Snippet copy = pending[cursor + i];
        copy.id = kInvalidSnippetId;
        chunk.push_back(std::move(copy));
      }
      SP_CHECK_OK(serving.durable().AddSnippets(std::move(chunk)));
      ingested += n;
      cursor = (cursor + n) % pending.size();
    }
  } else {
    while (wall.ElapsedSeconds() < seconds) {
      std::this_thread::yield();
    }
  }
  serving.Flush();  // Publish any batched tail so readers saw it all.
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : threads) thread.join();
  const double elapsed = wall.ElapsedSeconds();

  CellResult cell;
  cell.mix = mix;
  cell.readers = readers;
  cell.policy_ops = policy.every_ops;
  std::vector<double> latencies;
  for (Tally& tally : tallies) {
    cell.ok += tally.ok;
    cell.shed += tally.shed;
    latencies.insert(latencies.end(), tally.latencies_ms.begin(),
                     tally.latencies_ms.end());
  }
  cell.qps = static_cast<double>(cell.ok) / elapsed;
  cell.p50_ms = Percentile(&latencies, 0.50);
  cell.p99_ms = Percentile(&latencies, 0.99);
  serve::Server::Stats server_stats = serving.server().GetStats();
  uint64_t lookups = server_stats.cache.hits + server_stats.cache.misses;
  cell.cache_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(server_stats.cache.hits) /
                         static_cast<double>(lookups);
  serve::EpochManager::Stats epoch_stats = serving.epochs().GetStats();
  cell.epochs_published = epoch_stats.published;
  cell.epochs_reclaimed = epoch_stats.reclaimed;
  cell.snippets_ingested = ingested;
  cell.captures = epoch_stats.captures;
  cell.mean_capture_ms =
      epoch_stats.captures == 0
          ? 0.0
          : epoch_stats.total_capture_ms /
                static_cast<double>(epoch_stats.captures);
  cell.bytes_copied = epoch_stats.total_bytes_copied;
  cell.last_bytes_shared = epoch_stats.last_bytes_shared;
  cell.cache_evicted_by_epoch = server_stats.cache.evicted_by_epoch;
  return cell;
}

// ------------------------ Publish-cost sweep (PR 8) ------------------------

/// One measured point of the capture-cost curve: at `snippets` resident,
/// the mean wall cost of publishing after ONE acked op, via the COW
/// capture (O(delta)) and via the PR-7 deep copy (O(corpus)).
struct PublishCostPoint {
  size_t snippets = 0;
  double incremental_ms = 0.0;
  double deep_ms = 0.0;
  double speedup = 0.0;
  uint64_t bytes_copied_per_op = 0;
  uint64_t snapshot_approx_bytes = 0;
};

/// Grows a plain (WAL-free) engine through the checkpoint sizes and at
/// each one measures per-op capture cost both ways. The deep capture is
/// what ServingEngine did before PR 8 on EVERY acked op; the sweep shows
/// the O(corpus) -> O(delta) crossover the COW subsystem buys.
std::vector<PublishCostPoint> MeasurePublishCost(
    const std::vector<size_t>& checkpoints, int reps) {
  const size_t max_snippets = checkpoints.back();
  datagen::CorpusConfig config =
      Fig7CorpusConfig(static_cast<int>(max_snippets) + reps *
                       static_cast<int>(checkpoints.size()));
  config.num_stories =
      std::max(10, static_cast<int>(max_snippets) / 50);
  datagen::Corpus corpus = datagen::CorpusGenerator(config).Generate();

  StoryPivotEngine engine;
  search::SearchEngine searcher(&engine);
  SP_CHECK_OK(engine.ImportVocabularies(*corpus.entity_vocabulary,
                                        *corpus.keyword_vocabulary));
  for (const SourceInfo& source : corpus.sources) {
    engine.RegisterSource(source.name);
  }

  serve::CaptureContext context;
  std::vector<PublishCostPoint> points;
  size_t cursor = 0;
  for (size_t target : checkpoints) {
    // Bulk-ingest up to the checkpoint (large batches: this is setup,
    // not the measured path), keeping `reps` snippets for the per-op
    // capture loop below.
    while (cursor + static_cast<size_t>(reps) < target &&
           cursor < corpus.snippets.size()) {
      const size_t n =
          std::min<size_t>(5000, target - reps - cursor);
      std::vector<Snippet> batch;
      batch.reserve(n);
      for (size_t i = 0; i < n; ++i, ++cursor) {
        Snippet copy = corpus.snippets[cursor];
        copy.id = kInvalidSnippetId;
        batch.push_back(std::move(copy));
      }
      SP_CHECK_OK(engine.AddSnippets(std::move(batch)));
    }

    PublishCostPoint point;
    // Steady-state warmup: the context caches the text state and the
    // first capture pays any one-time sharing setup.
    (void)serve::ReadSnapshot::Capture(engine, searcher.index(), &context);

    // Incremental: one acked op, one COW capture — the PR-8 serving
    // loop. The captured snapshots stay alive for the whole rep loop,
    // like a reader pinning every epoch at once.
    std::vector<std::unique_ptr<serve::ReadSnapshot>> pinned;
    const cow::CopyCounters before = cow::ReadCopyCounters();
    double incremental_total = 0.0;
    for (int r = 0; r < reps && cursor < corpus.snippets.size();
         ++r, ++cursor) {
      Snippet copy = corpus.snippets[cursor];
      copy.id = kInvalidSnippetId;
      SP_CHECK_OK(engine.AddSnippet(std::move(copy)));
      WallTimer timer;
      pinned.push_back(
          serve::ReadSnapshot::Capture(engine, searcher.index(), &context));
      incremental_total += timer.ElapsedMillis();
    }
    const cow::CopyCounters after = cow::ReadCopyCounters();
    point.snippets = searcher.index().num_documents();
    point.incremental_ms =
        incremental_total / static_cast<double>(pinned.size());
    point.bytes_copied_per_op =
        (after.bytes - before.bytes) / pinned.size();
    point.snapshot_approx_bytes = pinned.back()->ApproxBytes();

    // Deep: the PR-7 per-op publish, cloning everything each time.
    const int deep_reps = 3;
    double deep_total = 0.0;
    for (int r = 0; r < deep_reps; ++r) {
      WallTimer timer;
      auto deep = serve::ReadSnapshot::CaptureDeep(engine, searcher.index());
      deep_total += timer.ElapsedMillis();
    }
    point.deep_ms = deep_total / deep_reps;
    point.speedup =
        point.incremental_ms > 0.0 ? point.deep_ms / point.incremental_ms
                                   : 0.0;
    points.push_back(point);
  }
  return points;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const int target_snippets = smoke ? 1200 : 8000;
  const double seconds = smoke ? 0.3 : 2.0;
  const size_t num_queries = smoke ? 12 : 32;
  const size_t write_batch = 64;
  const std::vector<size_t> reader_counts =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4, 8};

  datagen::CorpusConfig config = Fig7CorpusConfig(target_snippets);
  config.num_stories = std::max(10, target_snippets / 50);
  datagen::Corpus corpus = datagen::CorpusGenerator(config).Generate();

  // Build one serving stack just for the equality gate and workload
  // derivation; the timed cells each get a fresh directory.
  SearchOptions options;
  options.k = 10;
  std::vector<std::string> workload;
  {
    const std::string dir = FreshDir("gate");
    Result<std::unique_ptr<serve::ServingEngine>> opened =
        serve::ServingEngine::Open(dir);
    SP_CHECK_OK(opened);
    serve::ServingEngine& serving = *opened.value();
    IngestWarmup(corpus, &serving.durable());
    workload =
        MakeWorkload(serving.durable().engine(), serving.search(),
                     num_queries);
    AssertSnapshotMatchesSerialEngine(corpus, workload, options, &serving);
  }

  // Publish-cost curve (ISSUE PR 8): per-op capture cost, COW vs deep,
  // while the corpus grows 10x (to 1e5 snippets in the full run).
  const std::vector<size_t> checkpoints =
      smoke ? std::vector<size_t>{150, 500, 1500}
            : std::vector<size_t>{10000, 30000, 100000};
  const int capture_reps = smoke ? 8 : 16;
  std::printf("\nPublish cost: per-acked-op capture, COW vs deep copy\n");
  std::printf("%10s %14s %12s %9s %14s\n", "snippets", "incremental ms",
              "deep ms", "speedup", "copied B/op");
  std::vector<PublishCostPoint> curve =
      MeasurePublishCost(checkpoints, capture_reps);
  for (const PublishCostPoint& point : curve) {
    std::printf("%10zu %14.4f %12.3f %8.1fx %14llu\n", point.snippets,
                point.incremental_ms, point.deep_ms, point.speedup,
                static_cast<unsigned long long>(point.bytes_copied_per_op));
  }
  if (smoke) {
    // CI gate: COW capture cost must stay flat (bounded ratio) across
    // the 10x corpus growth. The floor damps sub-20us timer noise.
    const double base = std::max(curve.front().incremental_ms, 0.02);
    SP_CHECK(curve.back().incremental_ms <= 8.0 * base);
  } else {
    // Acceptance gate: at 1e5 snippets the per-op COW capture is at
    // least 10x cheaper than the PR-7 deep-copy publish.
    SP_CHECK(curve.back().snippets >= 100000 - 100);
    SP_CHECK(curve.back().speedup >= 10.0);
  }

  std::printf("\nServing tier: %d snippets (half warmup), %.1fs cells, "
              "top-%zu\n",
              target_snippets, seconds, options.k);
  std::printf("%11s %8s %7s %10s %9s %9s %7s %7s %7s %9s %11s\n", "mix",
              "readers", "N ops", "QPS", "p50 ms", "p99 ms", "hit%",
              "epochs", "shed", "ingested", "capture ms");
  std::vector<CellResult> cells;
  auto run_row = [&](const char* mix, size_t readers,
                     serve::PublishPolicy policy) {
    CellResult cell = RunCell(corpus, workload, options, mix, readers,
                              seconds, write_batch, policy);
    std::printf(
        "%11s %8zu %7llu %10.0f %9.3f %9.3f %6.1f%% %7llu %7llu %9zu "
        "%11.4f\n",
        cell.mix.c_str(), cell.readers,
        static_cast<unsigned long long>(cell.policy_ops), cell.qps,
        cell.p50_ms, cell.p99_ms, 100.0 * cell.cache_hit_rate,
        static_cast<unsigned long long>(cell.epochs_published),
        static_cast<unsigned long long>(cell.shed), cell.snippets_ingested,
        cell.mean_capture_ms);
    cells.push_back(std::move(cell));
  };
  for (const char* mix : {"read_only", "read_write"}) {
    for (size_t readers : reader_counts) {
      run_row(mix, readers, serve::PublishPolicy{});
    }
  }
  // Publication-policy contrast: the same write mix, batched N=16. Fewer
  // epochs -> fewer cache invalidations, at bounded staleness.
  serve::PublishPolicy batched;
  batched.every_ops = 16;
  for (size_t readers : reader_counts) {
    run_row("read_write", readers, batched);
  }

  std::string json = StrFormat(
      "{\"bench\":\"serve\",\"smoke\":%s,\"snippets\":%d,"
      "\"cell_seconds\":%.1f,\"k\":%zu,\"workload_queries\":%zu,"
      "\"equality_gate\":\"pinned snapshot == serial engine at acked "
      "prefix\",\"publish_cost\":[",
      smoke ? "true" : "false", target_snippets, seconds, options.k,
      workload.size());
  for (size_t i = 0; i < curve.size(); ++i) {
    const PublishCostPoint& point = curve[i];
    json += StrFormat(
        "%s{\"snippets\":%zu,\"capture_incremental_ms\":%.4f,"
        "\"capture_deep_ms\":%.3f,\"speedup\":%.1f,"
        "\"bytes_copied_per_op\":%llu,\"snapshot_approx_bytes\":%llu}",
        i == 0 ? "" : ",", point.snippets, point.incremental_ms,
        point.deep_ms, point.speedup,
        static_cast<unsigned long long>(point.bytes_copied_per_op),
        static_cast<unsigned long long>(point.snapshot_approx_bytes));
  }
  json += StrFormat("],\"capture_speedup_at_max\":%.1f,\"cells\":[",
                    curve.back().speedup);
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    json += StrFormat(
        "%s{\"mix\":\"%s\",\"readers\":%zu,\"publish_every_ops\":%llu,"
        "\"qps\":%.0f,"
        "\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"cache_hit_rate\":%.3f,"
        "\"epochs_published\":%llu,\"epochs_reclaimed\":%llu,"
        "\"shed\":%llu,\"snippets_ingested\":%zu,"
        "\"captures\":%llu,\"mean_capture_ms\":%.4f,"
        "\"bytes_copied\":%llu,\"last_bytes_shared\":%llu,"
        "\"cache_evicted_by_epoch\":%llu}",
        i == 0 ? "" : ",", cell.mix.c_str(), cell.readers,
        static_cast<unsigned long long>(cell.policy_ops), cell.qps,
        cell.p50_ms, cell.p99_ms, cell.cache_hit_rate,
        static_cast<unsigned long long>(cell.epochs_published),
        static_cast<unsigned long long>(cell.epochs_reclaimed),
        static_cast<unsigned long long>(cell.shed), cell.snippets_ingested,
        static_cast<unsigned long long>(cell.captures),
        cell.mean_capture_ms,
        static_cast<unsigned long long>(cell.bytes_copied),
        static_cast<unsigned long long>(cell.last_bytes_shared),
        static_cast<unsigned long long>(cell.cache_evicted_by_epoch));
  }
  json += "]}\n";
  SP_CHECK_OK(WriteStringToFile("BENCH_serve.json", json));
  std::printf("\nwrote BENCH_serve.json\n");
  RemoveDirRecursive(kScratchRoot);
  return 0;
}

}  // namespace
}  // namespace storypivot::bench

int main(int argc, char** argv) {
  return storypivot::bench::Main(argc, argv);
}
