// Serving-tier bench (DESIGN.md §14): closed-loop readers against the
// epoch-pinned Server, sweeping reader count x read/write mix.
//
// Before any timing, the harness asserts correctness: a pinned
// ReadSnapshot must answer every workload query byte-identically to a
// fresh serial engine fed exactly the same acked operation prefix. Only
// then does it measure:
//
//   * read_only  — R closed-loop readers, no writer. Epochs never
//     advance, so the hot-query cache converges to ~100% hits.
//   * read_write — the same readers while the single writer streams
//     snippet batches, publishing a new epoch per acked batch. Every
//     epoch change invalidates the cache for free (epoch-prefixed
//     keys), so this measures the steady-state mix of fresh ranks and
//     hits under snapshot churn.
//
// Emits BENCH_serve.json. Run with --smoke for the CI-sized variant
// (small corpus, two reader counts, short cells, same assertions).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "search/search_engine.h"
#include "serve/serving_engine.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"

namespace storypivot::bench {
namespace {

using search::SearchOptions;
using search::StoryHit;

std::string FreshDir(const std::string& name) {
  std::string dir = "bench_serve_wal_" + name;
  if (FileExists(dir)) {
    Result<std::vector<std::string>> names = ListDirectory(dir);
    SP_CHECK_OK(names.status());
    for (const std::string& entry : names.value()) {
      SP_CHECK_OK(RemoveFile(dir + "/" + entry));
    }
  }
  SP_CHECK_OK(CreateDirectories(dir));
  return dir;
}

/// First half of the corpus (id-cleared) is the warmup batch every cell
/// ingests up front; the second half is what the writer streams during
/// read_write cells.
struct SplitCorpus {
  std::vector<Snippet> warmup;
  std::vector<Snippet> pending;
};

SplitCorpus Split(const datagen::Corpus& corpus) {
  SplitCorpus split;
  const size_t half = corpus.snippets.size() / 2;
  for (size_t i = 0; i < corpus.snippets.size(); ++i) {
    Snippet copy = corpus.snippets[i];
    copy.id = kInvalidSnippetId;
    (i < half ? split.warmup : split.pending).push_back(std::move(copy));
  }
  return split;
}

/// The acked prefix every cell starts from: vocabularies, sources, the
/// warmup half as ONE batch, one Align. Returns the streamable rest.
std::vector<Snippet> IngestWarmup(const datagen::Corpus& corpus,
                                  persist::DurableEngine* durable) {
  SP_CHECK_OK(durable->ImportVocabularies(*corpus.entity_vocabulary,
                                          *corpus.keyword_vocabulary));
  for (const SourceInfo& source : corpus.sources) {
    SP_CHECK_OK(durable->RegisterSource(source.name).status());
  }
  SplitCorpus split = Split(corpus);
  SP_CHECK_OK(durable->AddSnippets(std::move(split.warmup)).status());
  SP_CHECK_OK(durable->Align());
  return std::move(split.pending);
}

/// Deterministic free-text workload: surfaces of terms that occur in
/// the warmup prefix, ranked by document frequency and strided so the
/// mix spans hot and selective terms (same scheme as bench_search).
std::vector<std::string> MakeWorkload(const StoryPivotEngine& engine,
                                      const search::SearchEngine& searcher,
                                      size_t count) {
  auto surfaces_by_df = [&](search::Field field,
                            const text::Vocabulary& vocabulary) {
    std::vector<std::pair<size_t, text::TermId>> terms;
    for (text::TermId id = 0; id < vocabulary.size(); ++id) {
      size_t df = searcher.index().DocumentFrequency(field, id);
      if (df > 0) terms.push_back({df, id});
    }
    std::sort(terms.begin(), terms.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    return terms;
  };
  auto entities =
      surfaces_by_df(search::Field::kEntity, engine.entity_vocabulary());
  auto keywords =
      surfaces_by_df(search::Field::kKeyword, engine.keyword_vocabulary());
  SP_CHECK(!entities.empty() && keywords.size() >= 2);

  std::vector<std::string> workload;
  for (size_t q = 0; q < count; ++q) {
    std::string query =
        engine.entity_vocabulary().TermOf(entities[(q * 7) % entities.size()]
                                              .second);
    for (size_t j = 0; j < 2; ++j) {
      query += ' ';
      query += engine.keyword_vocabulary().TermOf(
          keywords[(q * 5 + j * 3) % keywords.size()].second);
    }
    workload.push_back(std::move(query));
  }
  return workload;
}

/// The bench's correctness gate: every workload query answered from a
/// pinned snapshot must equal a fresh serial engine fed the same acked
/// prefix. Runs before any timing; a mismatch aborts the bench.
void AssertSnapshotMatchesSerialEngine(const datagen::Corpus& corpus,
                                       const std::vector<std::string>& workload,
                                       const SearchOptions& options,
                                       serve::ServingEngine* serving) {
  StoryPivotEngine serial;
  search::SearchEngine serial_search(&serial);
  SP_CHECK_OK(serial.ImportVocabularies(*corpus.entity_vocabulary,
                                        *corpus.keyword_vocabulary));
  for (const SourceInfo& source : corpus.sources) {
    serial.RegisterSource(source.name);
  }
  SP_CHECK_OK(serial.AddSnippets(Split(corpus).warmup).status());
  (void)serial.Align();

  std::shared_ptr<const serve::ReadSnapshot> snapshot =
      serving->epochs().Pin();
  SP_CHECK(snapshot != nullptr);
  size_t nonempty = 0;
  for (const std::string& query : workload) {
    std::vector<StoryHit> pinned = snapshot->Search(query, options);
    std::vector<StoryHit> serial_hits = serial_search.Search(query, options);
    SP_CHECK(pinned == serial_hits);
    if (!pinned.empty()) ++nonempty;
  }
  SP_CHECK(nonempty > 0);
  std::printf("equality gate: %zu queries, %zu non-empty, pinned snapshot "
              "== serial engine at acked prefix\n",
              workload.size(), nonempty);
}

struct CellResult {
  std::string mix;
  size_t readers = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double cache_hit_rate = 0.0;
  uint64_t epochs_published = 0;
  uint64_t epochs_reclaimed = 0;
  size_t snippets_ingested = 0;
};

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  std::sort(sorted->begin(), sorted->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted->size()));
  if (idx >= sorted->size()) idx = sorted->size() - 1;
  return (*sorted)[idx];
}

CellResult RunCell(const datagen::Corpus& corpus,
                   const std::vector<std::string>& workload,
                   const SearchOptions& options, const std::string& mix,
                   size_t readers, double seconds, size_t write_batch) {
  const std::string dir =
      FreshDir(mix + "_" + std::to_string(readers));
  serve::ServerOptions server_options;
  server_options.num_threads = 4;
  server_options.max_queued = 1024;
  server_options.cache_capacity = 256;
  persist::DurabilityOptions durability;
  durability.checkpoint_every_ops = 1 << 20;  // no mid-cell checkpoints
  Result<std::unique_ptr<serve::ServingEngine>> opened =
      serve::ServingEngine::Open(dir, server_options, durability);
  SP_CHECK_OK(opened.status());
  serve::ServingEngine& serving = *opened.value();

  std::vector<Snippet> pending = IngestWarmup(corpus, &serving.durable());

  struct Tally {
    uint64_t ok = 0;
    uint64_t shed = 0;
    std::vector<double> latencies_ms;
  };
  std::atomic<bool> stop{false};
  std::vector<Tally> tallies(readers);
  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      Tally& tally = tallies[r];
      size_t next = r;  // offset per reader so caches are shared, not lockstep
      while (!stop.load(std::memory_order_relaxed)) {
        serve::QueryRequest request;
        request.query = workload[next++ % workload.size()];
        request.options = options;
        WallTimer timer;
        Result<serve::QueryResponse> response = serving.Query(request);
        if (response.ok()) {
          ++tally.ok;
          tally.latencies_ms.push_back(timer.ElapsedMillis());
        } else {
          ++tally.shed;
        }
      }
    });
  }

  WallTimer wall;
  size_t ingested = 0;
  if (mix == "read_write") {
    // The single writer: stream the held-back half, one acked batch =
    // one published epoch. Wraps around (fresh ids) if it drains early.
    size_t cursor = 0;
    while (wall.ElapsedSeconds() < seconds) {
      size_t n = std::min(write_batch, pending.size() - cursor);
      std::vector<Snippet> chunk;
      chunk.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        Snippet copy = pending[cursor + i];
        copy.id = kInvalidSnippetId;
        chunk.push_back(std::move(copy));
      }
      SP_CHECK_OK(serving.durable().AddSnippets(std::move(chunk)).status());
      ingested += n;
      cursor = (cursor + n) % pending.size();
    }
  } else {
    while (wall.ElapsedSeconds() < seconds) {
      std::this_thread::yield();
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : threads) thread.join();
  const double elapsed = wall.ElapsedSeconds();

  CellResult cell;
  cell.mix = mix;
  cell.readers = readers;
  std::vector<double> latencies;
  for (Tally& tally : tallies) {
    cell.ok += tally.ok;
    cell.shed += tally.shed;
    latencies.insert(latencies.end(), tally.latencies_ms.begin(),
                     tally.latencies_ms.end());
  }
  cell.qps = static_cast<double>(cell.ok) / elapsed;
  cell.p50_ms = Percentile(&latencies, 0.50);
  cell.p99_ms = Percentile(&latencies, 0.99);
  serve::Server::Stats server_stats = serving.server().GetStats();
  uint64_t lookups = server_stats.cache.hits + server_stats.cache.misses;
  cell.cache_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(server_stats.cache.hits) /
                         static_cast<double>(lookups);
  serve::EpochManager::Stats epoch_stats = serving.epochs().GetStats();
  cell.epochs_published = epoch_stats.published;
  cell.epochs_reclaimed = epoch_stats.reclaimed;
  cell.snippets_ingested = ingested;
  return cell;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const int target_snippets = smoke ? 1200 : 8000;
  const double seconds = smoke ? 0.3 : 2.0;
  const size_t num_queries = smoke ? 12 : 32;
  const size_t write_batch = 64;
  const std::vector<size_t> reader_counts =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4, 8};

  datagen::CorpusConfig config = Fig7CorpusConfig(target_snippets);
  config.num_stories = std::max(10, target_snippets / 50);
  datagen::Corpus corpus = datagen::CorpusGenerator(config).Generate();

  // Build one serving stack just for the equality gate and workload
  // derivation; the timed cells each get a fresh directory.
  SearchOptions options;
  options.k = 10;
  std::vector<std::string> workload;
  {
    const std::string dir = FreshDir("gate");
    Result<std::unique_ptr<serve::ServingEngine>> opened =
        serve::ServingEngine::Open(dir);
    SP_CHECK_OK(opened.status());
    serve::ServingEngine& serving = *opened.value();
    IngestWarmup(corpus, &serving.durable());
    workload =
        MakeWorkload(serving.durable().engine(), serving.search(),
                     num_queries);
    AssertSnapshotMatchesSerialEngine(corpus, workload, options, &serving);
  }

  std::printf("\nServing tier: %d snippets (half warmup), %.1fs cells, "
              "top-%zu\n",
              target_snippets, seconds, options.k);
  std::printf("%11s %8s %10s %9s %9s %7s %7s %7s %9s\n", "mix", "readers",
              "QPS", "p50 ms", "p99 ms", "hit%", "epochs", "shed",
              "ingested");
  std::vector<CellResult> cells;
  for (const char* mix : {"read_only", "read_write"}) {
    for (size_t readers : reader_counts) {
      CellResult cell = RunCell(corpus, workload, options, mix, readers,
                                seconds, write_batch);
      std::printf("%11s %8zu %10.0f %9.3f %9.3f %6.1f%% %7llu %7llu %9zu\n",
                  cell.mix.c_str(), cell.readers, cell.qps, cell.p50_ms,
                  cell.p99_ms, 100.0 * cell.cache_hit_rate,
                  static_cast<unsigned long long>(cell.epochs_published),
                  static_cast<unsigned long long>(cell.shed),
                  cell.snippets_ingested);
      cells.push_back(std::move(cell));
    }
  }

  std::string json = StrFormat(
      "{\"bench\":\"serve\",\"smoke\":%s,\"snippets\":%d,"
      "\"cell_seconds\":%.1f,\"k\":%zu,\"workload_queries\":%zu,"
      "\"equality_gate\":\"pinned snapshot == serial engine at acked "
      "prefix\",\"cells\":[",
      smoke ? "true" : "false", target_snippets, seconds, options.k,
      workload.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    json += StrFormat(
        "%s{\"mix\":\"%s\",\"readers\":%zu,\"qps\":%.0f,"
        "\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"cache_hit_rate\":%.3f,"
        "\"epochs_published\":%llu,\"epochs_reclaimed\":%llu,"
        "\"shed\":%llu,\"snippets_ingested\":%zu}",
        i == 0 ? "" : ",", cell.mix.c_str(), cell.readers, cell.qps,
        cell.p50_ms, cell.p99_ms, cell.cache_hit_rate,
        static_cast<unsigned long long>(cell.epochs_published),
        static_cast<unsigned long long>(cell.epochs_reclaimed),
        static_cast<unsigned long long>(cell.shed), cell.snippets_ingested);
  }
  json += "]}\n";
  SP_CHECK_OK(WriteStringToFile("BENCH_serve.json", json));
  std::printf("\nwrote BENCH_serve.json\n");
  return 0;
}

}  // namespace
}  // namespace storypivot::bench

int main(int argc, char** argv) {
  return storypivot::bench::Main(argc, argv);
}
