// Ablations A-sources and F1-refine: story alignment scalability with the
// number of sources, and the quality contribution of the refinement step
// (Fig. 1c/1d). Also compares the LSH candidate path against all-pairs.

#include <cstdio>

#include "bench/bench_util.h"
#include "util/timer.h"

namespace storypivot::bench {
namespace {

void SourceScaling() {
  std::printf("-- A-sources: alignment cost & quality vs #sources --\n\n");
  std::vector<eval::ExperimentRow> rows;
  viz::Series align_ms{"align ms", {}};
  viz::Series quality{"SA-F1", {}};
  double max_ms = 1.0;
  for (int sources : {2, 4, 8, 16, 32, 64}) {
    eval::ExperimentConfig config;
    config.corpus = Fig7CorpusConfig(6000);
    config.corpus.num_sources = sources;
    config.run_refinement = false;
    config.label = "sources=" + std::to_string(sources);
    eval::ExperimentRow row = eval::RunExperiment(config);
    align_ms.points.push_back({static_cast<double>(sources),
                               row.align_time_ms});
    max_ms = std::max(max_ms, row.align_time_ms);
    quality.points.push_back({static_cast<double>(sources),
                              row.sa_pairwise.f1});
    rows.push_back(std::move(row));
  }
  for (auto& [x, y] : align_ms.points) y /= max_ms;
  std::printf("%s\n", eval::FormatRows(rows).c_str());
  std::printf("%s\n",
              viz::RenderXyChart("Alignment vs #sources (n=6000 fixed)",
                                 "# sources", "SA-F1 / scaled align time",
                                 {quality, align_ms}, /*log_x=*/true)
                  .c_str());
}

void RefinementGain() {
  std::printf("-- F1-refine: refinement's effect (Fig. 1d) --\n\n");
  std::vector<eval::ExperimentRow> rows;
  for (uint64_t seed : {2014u, 2015u, 2016u}) {
    for (bool refine : {false, true}) {
      eval::ExperimentConfig config;
      config.corpus = Fig7CorpusConfig(4000);
      config.corpus.seed = seed;
      // A noisier corpus so identification makes the mistakes that
      // refinement exists to correct.
      config.corpus.entity_noise = 0.2;
      config.corpus.keyword_noise = 0.25;
      config.run_refinement = refine;
      config.label = "seed=" + std::to_string(seed) +
                     (refine ? " +refine" : " baseline");
      rows.push_back(eval::RunExperiment(config));
    }
  }
  std::printf("%s\n", eval::FormatRows(rows).c_str());
}

void LshVersusAllPairs() {
  std::printf("-- alignment candidate generation: all-pairs vs LSH --\n\n");
  for (bool lsh : {false, true}) {
    eval::ExperimentConfig config;
    config.corpus = Fig7CorpusConfig(8000);
    config.corpus.num_sources = 20;
    config.engine.alignment.use_lsh = lsh;
    // Force the LSH path on by dropping its activation floor.
    config.engine.alignment.lsh_min_stories = lsh ? 0 : (1u << 30);
    config.run_refinement = false;
    config.label = lsh ? "align via LSH sketches" : "align all-pairs";
    eval::ExperimentRow row = eval::RunExperiment(config);
    std::printf("%-26s align=%8.1f ms  SA-F1=%.3f  SA-B3=%.3f\n",
                config.label.c_str(), row.align_time_ms,
                row.sa_pairwise.f1, row.sa_bcubed.f1);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace storypivot::bench

int main() {
  std::printf("== bench_alignment: cross-source story alignment ==\n\n");
  storypivot::bench::SourceScaling();
  storypivot::bench::RefinementGain();
  storypivot::bench::LshVersusAllPairs();
  return 0;
}
