// Ablation A-stream (§2.4 dynamics): near-real-time integration. Feeds a
// corpus in *publication* order (event timestamps arrive out of order),
// measures per-event identification latency percentiles as the system
// grows, the cost of periodic re-alignment, and document removal.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "util/logging.h"
#include "util/timer.h"

namespace storypivot::bench {
namespace {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * (values.size() - 1));
  return values[idx];
}

void Run() {
  std::printf("== A-stream: out-of-order streaming integration ==\n\n");
  datagen::CorpusConfig corpus_config = Fig7CorpusConfig(12000);
  corpus_config.mean_report_delay_hours = 36;  // Strong reordering.
  datagen::Corpus corpus =
      datagen::CorpusGenerator(corpus_config).Generate();

  // How shuffled is the stream? Count inversions vs event-time order
  // among adjacent arrivals.
  size_t inversions = 0;
  for (size_t i = 1; i < corpus.snippets.size(); ++i) {
    if (corpus.snippets[i].timestamp < corpus.snippets[i - 1].timestamp) {
      ++inversions;
    }
  }
  std::printf("stream: %zu snippets, %.1f%% adjacent arrivals out of "
              "event-time order\n\n",
              corpus.snippets.size(),
              100.0 * inversions / corpus.snippets.size());

  StoryPivotEngine engine;
  SP_CHECK(engine
               .ImportVocabularies(*corpus.entity_vocabulary,
                                   *corpus.keyword_vocabulary)
               .ok());
  for (const SourceInfo& s : corpus.sources) engine.RegisterSource(s.name);

  std::vector<double> latencies_us;
  latencies_us.reserve(corpus.snippets.size());
  const size_t checkpoint = corpus.snippets.size() / 4;
  size_t next_checkpoint = checkpoint;
  std::printf("%10s %12s %12s %12s %12s %10s\n", "ingested", "p50 us/ev",
              "p95 us/ev", "p99 us/ev", "align ms", "stories");
  for (size_t i = 0; i < corpus.snippets.size(); ++i) {
    Snippet copy = corpus.snippets[i];
    copy.id = kInvalidSnippetId;
    WallTimer timer;
    SP_CHECK_OK(engine.AddSnippet(std::move(copy)));
    latencies_us.push_back(timer.ElapsedNanos() / 1e3);
    if (i + 1 == next_checkpoint || i + 1 == corpus.snippets.size()) {
      WallTimer align_timer;
      engine.Align();
      std::printf("%10zu %12.1f %12.1f %12.1f %12.1f %10zu\n", i + 1,
                  Percentile(latencies_us, 0.50),
                  Percentile(latencies_us, 0.95),
                  Percentile(latencies_us, 0.99),
                  align_timer.ElapsedMillis(),
                  engine.alignment().stories.size());
      next_checkpoint += checkpoint;
    }
  }

  eval::QualityScores scores = eval::ScoreEngine(engine);
  std::printf("\nfinal quality under streaming: SI-F1=%.3f SA-F1=%.3f "
              "NMI=%.3f\n",
              scores.si_pairwise.f1, scores.sa_pairwise.f1, scores.sa_nmi);

  // Dynamic removal: drop 5% of documents and measure.
  std::vector<std::string> urls;
  engine.store().ForEach([&](const Snippet& snippet) {
    urls.push_back(snippet.document_url);
  });
  std::sort(urls.begin(), urls.end());
  urls.erase(std::unique(urls.begin(), urls.end()), urls.end());
  size_t to_remove = urls.size() / 20;
  WallTimer removal_timer;
  for (size_t i = 0; i < to_remove; ++i) {
    SP_CHECK_OK(engine.RemoveDocument(urls[i * 20]));
  }
  std::printf("removed %zu documents in %.1f ms (%.1f us/doc, with story "
              "split checks)\n",
              to_remove, removal_timer.ElapsedMillis(),
              removal_timer.ElapsedMillis() * 1000.0 / to_remove);
  engine.Align();
  scores = eval::ScoreEngine(engine);
  std::printf("quality after removals: SA-F1=%.3f\n", scores.sa_pairwise.f1);

  // ---- Batched ingestion (AddSnippets, DESIGN.md §9): arrivals grouped
  // into fixed-size batches, serial vs pooled identification. On
  // single-core runners the two columns should roughly coincide.
  std::printf("\n-- batched ingestion: AddSnippets(512) --\n");
  for (size_t threads : {size_t{1}, size_t{4}}) {
    EngineConfig config;
    config.num_threads = threads;
    StoryPivotEngine batched(config);
    SP_CHECK(batched
                 .ImportVocabularies(*corpus.entity_vocabulary,
                                     *corpus.keyword_vocabulary)
                 .ok());
    for (const SourceInfo& s : corpus.sources) {
      batched.RegisterSource(s.name);
    }
    WallTimer ingest_timer;
    std::vector<Snippet> batch;
    for (const Snippet& snippet : corpus.snippets) {
      batch.push_back(snippet);
      batch.back().id = kInvalidSnippetId;
      if (batch.size() == 512) {
        SP_CHECK_OK(batched.AddSnippets(std::move(batch)));
        batch.clear();
      }
    }
    if (!batch.empty()) SP_CHECK_OK(batched.AddSnippets(std::move(batch)));
    double ingest_ms = ingest_timer.ElapsedMillis();
    std::printf("  threads=%zu: %8.1f ms (%7.0f snippets/s), %zu stories\n",
                threads, ingest_ms,
                corpus.snippets.size() / (ingest_ms / 1000.0),
                batched.TotalStories());
  }

  // ---- Incremental vs batch re-alignment cadence (§2.4): align after
  // every batch of 200 arrivals, with and without the maintained
  // alignment graph.
  std::printf("\n-- periodic re-alignment: batch vs incremental --\n");
  for (bool incremental : {false, true}) {
    EngineConfig config;
    config.incremental_alignment = incremental;
    StoryPivotEngine periodic(config);
    SP_CHECK(periodic
                 .ImportVocabularies(*corpus.entity_vocabulary,
                                     *corpus.keyword_vocabulary)
                 .ok());
    for (const SourceInfo& s : corpus.sources) {
      periodic.RegisterSource(s.name);
    }
    WallTimer align_total;
    double align_ms = 0.0;
    size_t aligns = 0;
    for (size_t i = 0; i < corpus.snippets.size(); ++i) {
      Snippet copy = corpus.snippets[i];
      copy.id = kInvalidSnippetId;
      SP_CHECK_OK(periodic.AddSnippet(std::move(copy)));
      if ((i + 1) % 200 == 0) {
        WallTimer t;
        periodic.Align();
        align_ms += t.ElapsedMillis();
        ++aligns;
      }
    }
    periodic.Align();
    eval::QualityScores q = eval::ScoreEngine(periodic);
    std::printf(
        "  %-12s %4zu aligns, %8.1f ms total (%6.2f ms/align), "
        "SA-F1=%.3f\n",
        incremental ? "incremental" : "batch", aligns, align_ms,
        align_ms / aligns, q.sa_pairwise.f1);
  }
}

}  // namespace
}  // namespace storypivot::bench

int main() {
  storypivot::bench::Run();
  return 0;
}
