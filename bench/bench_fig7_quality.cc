// Reproduces the *Quality* panel of the paper's statistics module
// (Fig. 7): F-measure vs #events for the selectable SI method (temporal /
// complete) and SA method (alignment with / without refinement).
//
// Expected shape: the temporal method's F-measure holds or improves with
// scale, while the complete baseline degrades as stories evolve and old
// snippets attract unrelated events ("complete mechanisms overfit
// stories", §2.2). Story alignment lifts quality above per-source
// identification at every scale.

#include <cstdio>

#include "bench/bench_util.h"

namespace storypivot::bench {
namespace {

void Run() {
  std::printf("== Fig. 7 / Quality: F-measure vs #events ==\n\n");

  std::vector<eval::ExperimentRow> rows;
  viz::Series t_si{"temporal SI-F1", {}};
  viz::Series c_si{"complete SI-F1", {}};
  viz::Series t_sa{"temporal SA-F1", {}};
  viz::Series c_sa{"complete SA-F1", {}};
  viz::Series t_ref{"temporal SA-F1+refine", {}};

  for (int n : EventSweep()) {
    for (auto mode :
         {IdentificationMode::kTemporal, IdentificationMode::kComplete}) {
      const bool temporal = mode == IdentificationMode::kTemporal;
      eval::ExperimentConfig config;
      config.corpus = Fig7CorpusConfig(n);
      config.engine.mode = mode;
      config.run_refinement = false;
      config.label = std::string(temporal ? "temporal" : "complete") +
                     " n=" + std::to_string(n);
      eval::ExperimentRow row = eval::RunExperiment(config);
      double x = static_cast<double>(row.num_events);
      if (temporal) {
        t_si.points.push_back({x, row.si_pairwise.f1});
        t_sa.points.push_back({x, row.sa_pairwise.f1});
      } else {
        c_si.points.push_back({x, row.si_pairwise.f1});
        c_sa.points.push_back({x, row.sa_pairwise.f1});
      }
      rows.push_back(std::move(row));

      if (temporal) {
        eval::ExperimentConfig refined = config;
        refined.run_refinement = true;
        refined.label = "temporal+refine n=" + std::to_string(n);
        eval::ExperimentRow refined_row = eval::RunExperiment(refined);
        t_ref.points.push_back(
            {static_cast<double>(refined_row.num_events),
             refined_row.sa_pairwise.f1});
        rows.push_back(std::move(refined_row));
      }
    }
  }

  std::printf("%s\n", eval::FormatRows(rows).c_str());
  std::printf("%s\n",
              viz::RenderXyChart("Story identification quality (F-measure)",
                                 "# events", "pairwise F1", {t_si, c_si},
                                 /*log_x=*/true)
                  .c_str());
  std::printf("%s\n",
              viz::RenderXyChart(
                  "Story alignment quality (F-measure)", "# events",
                  "pairwise F1", {t_sa, c_sa, t_ref}, /*log_x=*/true)
                  .c_str());
}

}  // namespace
}  // namespace storypivot::bench

int main() {
  storypivot::bench::Run();
  return 0;
}
