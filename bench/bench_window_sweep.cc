// Ablation A-window + Fig. 2 modes: sweep the sliding-window half-width w
// of temporal story identification from hours to months and measure both
// cost (comparisons, ingest time) and quality. The complete baseline is
// the w -> infinity limit; tiny windows fragment stories, huge windows
// converge to complete's overfitting — the sweep exposes the sweet spot
// the paper's 'temporal' mode exploits.

#include <cstdio>

#include "bench/bench_util.h"

namespace storypivot::bench {
namespace {

void Run() {
  std::printf("== A-window / Fig. 2: sliding-window half-width sweep ==\n\n");
  const int kEvents = 6000;
  const double windows_days[] = {0.25, 1, 3, 7, 14, 30, 90};

  std::vector<eval::ExperimentRow> rows;
  viz::Series quality{"SA-F1", {}};
  viz::Series si_quality{"SI-F1", {}};
  viz::Series cost{"ingest s (scaled)", {}};

  double max_ingest = 0;
  for (double w : windows_days) {
    eval::ExperimentConfig config;
    config.corpus = Fig7CorpusConfig(kEvents);
    config.engine.mode = IdentificationMode::kTemporal;
    config.engine.identifier.window =
        static_cast<Timestamp>(w * kSecondsPerDay);
    config.run_refinement = false;
    char label[64];
    std::snprintf(label, sizeof(label), "temporal w=%gd", w);
    config.label = label;
    eval::ExperimentRow row = eval::RunExperiment(config);
    max_ingest = std::max(max_ingest, row.ingest_time_ms);
    quality.points.push_back({w * 4, row.sa_pairwise.f1});
    si_quality.points.push_back({w * 4, row.si_pairwise.f1});
    cost.points.push_back({w * 4, row.ingest_time_ms});
    rows.push_back(std::move(row));
  }
  // The complete baseline as the "infinite window" reference point.
  {
    eval::ExperimentConfig config;
    config.corpus = Fig7CorpusConfig(kEvents);
    config.engine.mode = IdentificationMode::kComplete;
    config.run_refinement = false;
    config.label = "complete (w=inf)";
    rows.push_back(eval::RunExperiment(config));
  }

  // Scale the cost curve into [0,1] so the chart shares an axis.
  for (auto& [x, y] : cost.points) y /= std::max(1.0, max_ingest);

  std::printf("%s\n", eval::FormatRows(rows).c_str());
  std::printf(
      "%s\n",
      viz::RenderXyChart("Window sweep at n=6000 (x = 4*days, log scale)",
                         "window", "F1 / scaled cost",
                         {si_quality, quality, cost}, /*log_x=*/true)
          .c_str());
  std::printf(
      "reading: F1 climbs as the window covers a story's evolution, then\n"
      "degrades toward the complete baseline once stale snippets re-enter\n"
      "the candidate set; cost grows with the window throughout.\n");
}

}  // namespace
}  // namespace storypivot::bench

int main() {
  storypivot::bench::Run();
  return 0;
}
