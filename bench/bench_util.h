#ifndef STORYPIVOT_BENCH_BENCH_UTIL_H_
#define STORYPIVOT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "viz/ascii.h"

namespace storypivot::bench {

/// Standard #events sweep used by the Fig. 7 reproductions. Sizes are
/// small enough that the whole bench suite runs in well under a minute per
/// binary while still showing the asymptotic separation of the modes.
inline std::vector<int> EventSweep() { return {1000, 2000, 4000, 8000, 16000}; }

/// Base corpus configuration for the Fig. 7 experiments: a scaled-down
/// version of the paper's GDELT June-December 2014 dataset (the full-size
/// card is printed separately by the performance bench).
inline datagen::CorpusConfig Fig7CorpusConfig(int target_snippets) {
  datagen::CorpusConfig config = datagen::GdeltScalePreset();
  // Scale the world down with the snippet budget so stories stay dense
  // enough to detect; sources stay at 10 for bench speed.
  config.num_sources = 10;
  config.num_entities = 200;
  config.num_communities = 25;
  config.num_stories = 40;
  config.target_num_snippets = target_snippets;
  return config;
}

/// Prints the dataset-information card of the statistics module (Fig. 7).
inline void PrintDatasetCard(const datagen::CorpusConfig& config,
                             const char* name) {
  std::printf("Dataset Information\n");
  std::printf("  Dataset     %s\n", name);
  std::printf("  # Sources   %d\n", config.num_sources);
  std::printf("  # Entities  %d\n", config.num_entities);
  std::printf("  # Snippets  %d (target)\n", config.target_num_snippets);
  std::printf("  Start Date  %s\n", FormatDate(config.start_time).c_str());
  std::printf("  End Date    %s\n\n", FormatDate(config.end_time).c_str());
}

}  // namespace storypivot::bench

#endif  // STORYPIVOT_BENCH_BENCH_UTIL_H_
