// Search bench (DESIGN.md §11): what the inverted index buys over the
// index-free scan path, on corpora large enough that the scan cost is
// the story count, not constant factors. Two experiments per corpus
// size:
//
//   1. Ranked free-text search: BM25 top-k through RankStories (postings
//      walk + MaxScore pruning) vs RankStoriesScan (every story of every
//      partition, plus a store pass for document frequencies). Results
//      are checked bit-identical before timing.
//   2. Boolean entity lookup: StoryQuery::FindByEntity through the
//      StoryIndex route vs the forced full-partition scan.
//
// Emits BENCH_search.json. Run with --smoke for the CI-sized variant
// (one small corpus, few repetitions, same assertions).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "core/query.h"
#include "search/search_engine.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"

namespace storypivot::bench {
namespace {

using search::Field;
using search::ParsedQuery;
using search::QueryTerm;
using search::SearchOptions;
using search::StoryHit;

struct SweepResult {
  int snippets = 0;
  size_t stories = 0;
  size_t queries = 0;
  double indexed_ms_per_query = 0.0;
  double scan_ms_per_query = 0.0;
  double speedup = 0.0;
  double find_indexed_ms_per_query = 0.0;
  double find_scan_ms_per_query = 0.0;
  double find_speedup = 0.0;
};

/// Deterministic query workload: vocabulary terms that actually occur,
/// ordered by descending document frequency, combined round-robin into
/// multi-term queries (one entity + two keywords) spanning frequent and
/// rare terms.
std::vector<ParsedQuery> MakeQueries(const StoryPivotEngine& engine,
                                     const search::SearchEngine& searcher,
                                     size_t count) {
  auto terms_by_df = [&](Field field, const text::Vocabulary& vocabulary) {
    std::vector<std::pair<size_t, text::TermId>> terms;
    for (text::TermId id = 0; id < vocabulary.size(); ++id) {
      size_t df = searcher.index().DocumentFrequency(field, id);
      if (df > 0) terms.push_back({df, id});
    }
    std::sort(terms.begin(), terms.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    return terms;
  };
  std::vector<std::pair<size_t, text::TermId>> entities =
      terms_by_df(Field::kEntity, engine.entity_vocabulary());
  std::vector<std::pair<size_t, text::TermId>> keywords =
      terms_by_df(Field::kKeyword, engine.keyword_vocabulary());
  SP_CHECK(!entities.empty() && keywords.size() >= 2);

  std::vector<ParsedQuery> queries;
  for (size_t q = 0; q < count; ++q) {
    ParsedQuery parsed;
    // Stride through the df-ranked lists so queries mix frequent terms
    // (expensive postings) with rare ones (selective).
    const auto& entity = entities[(q * 7) % entities.size()];
    parsed.terms.push_back({Field::kEntity, entity.second, {},
                            engine.entity_vocabulary().TermOf(entity.second)});
    for (size_t j = 0; j < 2; ++j) {
      const auto& keyword = keywords[(q * 5 + j * 3) % keywords.size()];
      if (keyword.second == parsed.terms.back().term &&
          parsed.terms.back().field == Field::kKeyword) {
        continue;
      }
      parsed.terms.push_back(
          {Field::kKeyword, keyword.second, {},
           engine.keyword_vocabulary().TermOf(keyword.second)});
    }
    queries.push_back(std::move(parsed));
  }
  return queries;
}

SweepResult RunSweep(int target_snippets, int repetitions,
                     size_t num_queries) {
  datagen::CorpusConfig config = Fig7CorpusConfig(target_snippets);
  // Many small stories: scan cost is per story, so this is the regime an
  // index must win in.
  config.num_stories = target_snippets / 25;
  datagen::Corpus corpus = datagen::CorpusGenerator(config).Generate();

  StoryPivotEngine engine;
  SP_CHECK_OK(engine.ImportVocabularies(*corpus.entity_vocabulary,
                                        *corpus.keyword_vocabulary));
  for (const SourceInfo& s : corpus.sources) engine.RegisterSource(s.name);
  for (const Snippet& snippet : corpus.snippets) {
    Snippet copy = snippet;
    copy.id = kInvalidSnippetId;
    SP_CHECK_OK(engine.AddSnippet(std::move(copy)));
  }
  search::SearchEngine searcher(&engine);

  SweepResult result;
  result.snippets = static_cast<int>(corpus.snippets.size());
  result.stories = engine.TotalStories();
  result.queries = num_queries;

  std::vector<ParsedQuery> queries =
      MakeQueries(engine, searcher, num_queries);
  SearchOptions options;
  options.k = 10;

  // Correctness before speed: both paths must agree on every query.
  for (const ParsedQuery& query : queries) {
    std::vector<StoryHit> indexed = searcher.Search(query, options);
    std::vector<StoryHit> scanned = searcher.SearchScan(query, options);
    SP_CHECK(indexed == scanned);
  }

  WallTimer timer;
  for (int rep = 0; rep < repetitions; ++rep) {
    for (const ParsedQuery& query : queries) {
      std::vector<StoryHit> hits = searcher.Search(query, options);
      SP_CHECK(hits.size() <= options.k);
    }
  }
  result.indexed_ms_per_query =
      timer.ElapsedMillis() / static_cast<double>(repetitions * num_queries);

  timer.Restart();
  for (const ParsedQuery& query : queries) {
    std::vector<StoryHit> hits = searcher.SearchScan(query, options);
    SP_CHECK(hits.size() <= options.k);
  }
  result.scan_ms_per_query =
      timer.ElapsedMillis() / static_cast<double>(num_queries);
  result.speedup = result.scan_ms_per_query / result.indexed_ms_per_query;

  // Boolean Find* route: same queries' entity terms by name.
  StoryQuery indexed_query(&engine);
  indexed_query.set_index(&searcher);
  StoryQuery scan_query(&engine);
  scan_query.set_index(&searcher);
  scan_query.set_force_scan(true);
  std::vector<std::string> names;
  for (const ParsedQuery& query : queries) {
    names.push_back(query.terms.front().surface);
  }

  timer.Restart();
  for (int rep = 0; rep < repetitions; ++rep) {
    for (const std::string& name : names) {
      std::vector<StoryOverview> found = indexed_query.FindByEntity(name);
      SP_CHECK(found.size() <= kDefaultMaxResults);
    }
  }
  result.find_indexed_ms_per_query =
      timer.ElapsedMillis() / static_cast<double>(repetitions * names.size());

  timer.Restart();
  for (const std::string& name : names) {
    std::vector<StoryOverview> found = scan_query.FindByEntity(name);
    SP_CHECK(found.size() <= kDefaultMaxResults);
  }
  result.find_scan_ms_per_query =
      timer.ElapsedMillis() / static_cast<double>(names.size());
  result.find_speedup =
      result.find_scan_ms_per_query / result.find_indexed_ms_per_query;
  return result;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::vector<int> sizes = smoke ? std::vector<int>{2000}
                                 : std::vector<int>{10000, 20000};
  const int repetitions = smoke ? 3 : 20;
  const size_t num_queries = smoke ? 10 : 25;

  std::printf("Ranked search: BM25 top-10, indexed vs full scan\n");
  std::printf("%9s %8s %8s %12s %12s %8s %12s %12s %8s\n", "snippets",
              "stories", "queries", "indexed ms", "scan ms", "speedup",
              "find idx ms", "find scan", "speedup");
  std::vector<SweepResult> sweeps;
  for (int size : sizes) {
    SweepResult r = RunSweep(size, repetitions, num_queries);
    std::printf("%9d %8zu %8zu %12.4f %12.4f %7.1fx %12.4f %12.4f %7.1fx\n",
                r.snippets, r.stories, r.queries, r.indexed_ms_per_query,
                r.scan_ms_per_query, r.speedup, r.find_indexed_ms_per_query,
                r.find_scan_ms_per_query, r.find_speedup);
    sweeps.push_back(r);
  }

  std::string json =
      StrFormat("{\"bench\":\"search\",\"smoke\":%s,\"k\":10,\"sweeps\":[",
                smoke ? "true" : "false");
  for (size_t i = 0; i < sweeps.size(); ++i) {
    const SweepResult& r = sweeps[i];
    json += StrFormat(
        "%s{\"snippets\":%d,\"stories\":%zu,\"queries\":%zu,"
        "\"indexed_ms_per_query\":%.4f,\"scan_ms_per_query\":%.4f,"
        "\"speedup\":%.1f,\"find_entity_indexed_ms\":%.4f,"
        "\"find_entity_scan_ms\":%.4f,\"find_entity_speedup\":%.1f}",
        i == 0 ? "" : ",", r.snippets, r.stories, r.queries,
        r.indexed_ms_per_query, r.scan_ms_per_query, r.speedup,
        r.find_indexed_ms_per_query, r.find_scan_ms_per_query,
        r.find_speedup);
  }
  json += "]}\n";
  SP_CHECK_OK(WriteStringToFile("BENCH_search.json", json));
  std::printf("\nwrote BENCH_search.json\n");
  return 0;
}

}  // namespace
}  // namespace storypivot::bench

int main(int argc, char** argv) {
  return storypivot::bench::Main(argc, argv);
}
