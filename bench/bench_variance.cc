// Robustness check for the Fig. 7 claims: re-runs the temporal-vs-complete
// comparison over several corpus seeds and reports mean +/- stddev for the
// headline metrics, so the reproduction's conclusions are visibly not a
// single-seed artifact.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace storypivot::bench {
namespace {

struct Moments {
  double mean = 0.0;
  double stddev = 0.0;
};

Moments ComputeMoments(const std::vector<double>& values) {
  Moments out;
  if (values.empty()) return out;
  for (double v : values) out.mean += v;
  out.mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - out.mean) * (v - out.mean);
  out.stddev = values.size() > 1
                   ? std::sqrt(var / static_cast<double>(values.size() - 1))
                   : 0.0;
  return out;
}

void Run() {
  std::printf("== seed variance of the Fig. 7 comparison (n=3000) ==\n\n");
  const std::vector<uint64_t> seeds = {11, 22, 33, 44, 55};

  struct Accumulator {
    std::vector<double> si_f1, sa_f1, si_precision, ingest_ms;
  };
  Accumulator temporal, complete;

  for (uint64_t seed : seeds) {
    for (auto mode :
         {IdentificationMode::kTemporal, IdentificationMode::kComplete}) {
      eval::ExperimentConfig config;
      config.corpus = Fig7CorpusConfig(3000);
      config.corpus.seed = seed;
      config.engine.mode = mode;
      config.run_refinement = false;
      eval::ExperimentRow row = eval::RunExperiment(config);
      Accumulator& acc =
          mode == IdentificationMode::kTemporal ? temporal : complete;
      acc.si_f1.push_back(row.si_pairwise.f1);
      acc.sa_f1.push_back(row.sa_pairwise.f1);
      acc.si_precision.push_back(row.si_pairwise.precision);
      acc.ingest_ms.push_back(row.ingest_time_ms);
    }
  }

  auto print = [](const char* metric, const Accumulator& t,
                  const Accumulator& c,
                  std::vector<double> Accumulator::* field) {
    Moments mt = ComputeMoments(t.*field);
    Moments mc = ComputeMoments(c.*field);
    std::printf("%-14s temporal %8.3f +/- %6.3f   complete %8.3f +/- "
                "%6.3f\n",
                metric, mt.mean, mt.stddev, mc.mean, mc.stddev);
  };
  std::printf("over %zu seeds:\n", seeds.size());
  print("SI-F1", temporal, complete, &Accumulator::si_f1);
  print("SI-precision", temporal, complete, &Accumulator::si_precision);
  print("SA-F1", temporal, complete, &Accumulator::sa_f1);
  print("ingest ms", temporal, complete, &Accumulator::ingest_ms);

  // The two headline orderings, checked per seed.
  int sa_wins = 0, precision_wins = 0, speed_wins = 0;
  for (size_t i = 0; i < seeds.size(); ++i) {
    if (temporal.sa_f1[i] > complete.sa_f1[i]) ++sa_wins;
    if (temporal.si_precision[i] > complete.si_precision[i]) {
      ++precision_wins;
    }
    if (temporal.ingest_ms[i] < complete.ingest_ms[i]) ++speed_wins;
  }
  std::printf(
      "\nper-seed wins for temporal: SA-F1 %d/%zu, SI-precision %d/%zu, "
      "speed %d/%zu\n",
      sa_wins, seeds.size(), precision_wins, seeds.size(), speed_wins,
      seeds.size());
}

}  // namespace
}  // namespace storypivot::bench

int main() {
  storypivot::bench::Run();
  return 0;
}
