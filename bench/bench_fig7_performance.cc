// Reproduces the *Performance* panel of the paper's statistics module
// (Fig. 7): story-identification execution time vs #events, for the
// temporal and complete SI methods, plus the story-alignment (SA) cost.
//
// The paper plots execution time in ms against the number of events on a
// GDELT extraction (50 sources / 500 entities / Jun-Dec 2014 / 10M
// snippets). We run the same generator at bench-scale; absolute numbers
// differ from the authors' testbed, but the shape — temporal flat-ish and
// cheap, complete superlinear and increasingly expensive — is the claim
// under reproduction.

#include <cstdio>

#include "bench/bench_util.h"

namespace storypivot::bench {
namespace {

void Run() {
  std::printf("== Fig. 7 / Performance: execution time vs #events ==\n\n");
  PrintDatasetCard(datagen::GdeltScalePreset(),
                   "GDELT (paper card; bench runs scaled-down snapshots)");

  std::vector<eval::ExperimentRow> rows;
  viz::Series temporal_series{"temporal ms/event", {}};
  viz::Series complete_series{"complete ms/event", {}};
  viz::Series align_series{"SA align ms/event", {}};

  for (int n : EventSweep()) {
    for (auto mode :
         {IdentificationMode::kTemporal, IdentificationMode::kComplete}) {
      eval::ExperimentConfig config;
      config.corpus = Fig7CorpusConfig(n);
      config.engine.mode = mode;
      config.run_refinement = false;
      bool temporal = mode == IdentificationMode::kTemporal;
      config.label =
          std::string(temporal ? "temporal w=7d" : "complete") + " n=" +
          std::to_string(n);
      eval::ExperimentRow row = eval::RunExperiment(config);
      if (temporal) {
        temporal_series.points.push_back(
            {static_cast<double>(row.num_events), row.per_event_ms});
        align_series.points.push_back(
            {static_cast<double>(row.num_events),
             row.align_time_ms / static_cast<double>(row.num_events)});
      } else {
        complete_series.points.push_back(
            {static_cast<double>(row.num_events), row.per_event_ms});
      }
      rows.push_back(std::move(row));
    }
  }

  std::printf("%s\n", eval::FormatRows(rows).c_str());
  std::printf("%s\n",
              viz::RenderXyChart(
                  "Execution time per event (SI method sweep)", "# events",
                  "ms/event",
                  {temporal_series, complete_series, align_series},
                  /*log_x=*/true)
                  .c_str());

  // Headline ratio at the largest scale.
  const eval::ExperimentRow* biggest_t = nullptr;
  const eval::ExperimentRow* biggest_c = nullptr;
  for (const eval::ExperimentRow& row : rows) {
    if (row.label.find("temporal") != std::string::npos) {
      biggest_t = &row;
    } else {
      biggest_c = &row;
    }
  }
  if (biggest_t != nullptr && biggest_c != nullptr &&
      biggest_t->ingest_time_ms > 0) {
    std::printf(
        "at n=%zu: complete/temporal ingest-time ratio = %.1fx, "
        "comparison ratio = %.1fx\n",
        biggest_t->num_events,
        biggest_c->ingest_time_ms / biggest_t->ingest_time_ms,
        static_cast<double>(biggest_c->comparisons) /
            static_cast<double>(biggest_t->comparisons));
  }
}

}  // namespace
}  // namespace storypivot::bench

int main() {
  storypivot::bench::Run();
  return 0;
}
