// Ablation A-incr: incremental story construction (§2.2, following
// "Incremental Record Linkage") versus periodically re-clustering from
// scratch. The demo keeps stories live while documents stream in; a
// batch system would rebuild. This bench quantifies the gap: cumulative
// work across checkpoints and the quality of the incrementally maintained
// stories versus a fresh rebuild at each checkpoint.

#include <cstdio>

#include "bench/bench_util.h"
#include "util/logging.h"
#include "util/timer.h"

namespace storypivot::bench {
namespace {

std::unique_ptr<StoryPivotEngine> FreshEngine(
    const datagen::Corpus& corpus) {
  auto engine = std::make_unique<StoryPivotEngine>();
  SP_CHECK(engine
               ->ImportVocabularies(*corpus.entity_vocabulary,
                                    *corpus.keyword_vocabulary)
               .ok());
  for (const SourceInfo& s : corpus.sources) engine->RegisterSource(s.name);
  return engine;
}

void Ingest(StoryPivotEngine& engine, const datagen::Corpus& corpus,
            size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    Snippet copy = corpus.snippets[i];
    copy.id = kInvalidSnippetId;
    SP_CHECK_OK(engine.AddSnippet(std::move(copy)));
  }
}

void Run() {
  std::printf("== A-incr: incremental maintenance vs rebuild ==\n\n");
  datagen::Corpus corpus =
      datagen::CorpusGenerator(Fig7CorpusConfig(8000)).Generate();
  const size_t n = corpus.snippets.size();
  const int kCheckpoints = 4;

  std::unique_ptr<StoryPivotEngine> incremental = FreshEngine(corpus);
  double incremental_total_ms = 0.0;
  double rebuild_total_ms = 0.0;

  std::printf("%12s %16s %16s %12s %12s\n", "events", "incr total ms",
              "rebuild total ms", "incr SA-F1", "rebuild F1");
  for (int c = 1; c <= kCheckpoints; ++c) {
    size_t end = n * c / kCheckpoints;
    size_t begin = n * (c - 1) / kCheckpoints;

    // Incremental: only the new slice is processed.
    WallTimer incr_timer;
    Ingest(*incremental, corpus, begin, end);
    incremental->Align();
    incremental_total_ms += incr_timer.ElapsedMillis();

    // Rebuild: a fresh engine re-processes everything seen so far.
    WallTimer rebuild_timer;
    std::unique_ptr<StoryPivotEngine> rebuild = FreshEngine(corpus);
    Ingest(*rebuild, corpus, 0, end);
    rebuild->Align();
    rebuild_total_ms += rebuild_timer.ElapsedMillis();

    eval::QualityScores incr_scores = eval::ScoreEngine(*incremental);
    eval::QualityScores rebuild_scores = eval::ScoreEngine(*rebuild);
    std::printf("%12zu %16.1f %16.1f %12.3f %12.3f\n", end,
                incremental_total_ms, rebuild_total_ms,
                incr_scores.sa_pairwise.f1, rebuild_scores.sa_pairwise.f1);
  }
  std::printf(
      "\ncumulative speedup of incremental maintenance: %.2fx\n"
      "(quality matches the rebuild — incremental merge handling keeps\n"
      "story sets equivalent to one-shot clustering of the same stream)\n",
      rebuild_total_ms / std::max(1.0, incremental_total_ms));

  // Merge/split dynamics: how often does the incremental path restructure
  // stories? Approximate by watching the story count trajectory.
  std::printf("\n-- story-count trajectory under incremental ingest --\n");
  std::unique_ptr<StoryPivotEngine> traced = FreshEngine(corpus);
  size_t step = n / 8;
  for (size_t i = 0; i < n; ++i) {
    Snippet copy = corpus.snippets[i];
    copy.id = kInvalidSnippetId;
    SP_CHECK_OK(traced->AddSnippet(std::move(copy)));
    if ((i + 1) % step == 0) {
      std::printf("  after %6zu events: %5zu per-source stories\n", i + 1,
                  traced->TotalStories());
    }
  }
}

}  // namespace
}  // namespace storypivot::bench

int main() {
  storypivot::bench::Run();
  return 0;
}
