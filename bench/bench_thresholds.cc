// Ablation A-thresholds: sensitivity of detection quality to the two
// central thresholds — the identification assign threshold (when does a
// snippet join a story?) and the alignment threshold (when do two stories
// integrate?). DESIGN.md §4 calls these out as the tuned knobs; this
// bench shows how wide the good regions are, which is what makes the
// defaults (and the prose preset) defensible.

#include <cstdio>

#include "bench/bench_util.h"
#include "util/strings.h"

namespace storypivot::bench {
namespace {

void AssignThresholdSweep() {
  std::printf("-- identification assign-threshold sweep (n=5000) --\n\n");
  viz::Series si{"SI-F1", {}};
  viz::Series stories{"stories/true-story", {}};
  std::vector<eval::ExperimentRow> rows;
  for (double threshold : {0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40,
                           0.50, 0.60}) {
    eval::ExperimentConfig config;
    config.corpus = Fig7CorpusConfig(5000);
    config.engine.similarity.assign_threshold = threshold;
    // Keep merge above assign.
    config.engine.similarity.merge_threshold =
        std::max(0.55, threshold + 0.1);
    config.run_refinement = false;
    config.label = StrFormat("assign=%.2f", threshold);
    eval::ExperimentRow row = eval::RunExperiment(config);
    si.points.push_back({threshold * 100, row.si_pairwise.f1});
    stories.points.push_back(
        {threshold * 100,
         static_cast<double>(row.stories_per_source_total) /
             (10.0 * row.truth_stories)});
    rows.push_back(std::move(row));
  }
  std::printf("%s\n", eval::FormatRows(rows).c_str());
  std::printf("%s\n",
              viz::RenderXyChart(
                  "Assign threshold sweep (x = 100*threshold)", "threshold",
                  "SI-F1 / story ratio", {si, stories}, /*log_x=*/false)
                  .c_str());
}

void AlignThresholdSweep() {
  std::printf("-- alignment threshold sweep (n=5000) --\n\n");
  viz::Series sa{"SA-F1", {}};
  viz::Series precision{"SA-precision", {}};
  viz::Series recall{"SA-recall", {}};
  std::vector<eval::ExperimentRow> rows;
  for (double threshold : {0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.50,
                           0.60, 0.75}) {
    eval::ExperimentConfig config;
    config.corpus = Fig7CorpusConfig(5000);
    config.engine.alignment.align_threshold = threshold;
    config.run_refinement = false;
    config.label = StrFormat("align=%.2f", threshold);
    eval::ExperimentRow row = eval::RunExperiment(config);
    sa.points.push_back({threshold * 100, row.sa_pairwise.f1});
    precision.points.push_back(
        {threshold * 100, row.sa_pairwise.precision});
    recall.points.push_back({threshold * 100, row.sa_pairwise.recall});
    rows.push_back(std::move(row));
  }
  std::printf("%s\n", eval::FormatRows(rows).c_str());
  std::printf("%s\n",
              viz::RenderXyChart(
                  "Align threshold sweep (x = 100*threshold)", "threshold",
                  "P / R / F1", {sa, precision, recall}, /*log_x=*/false)
                  .c_str());
  std::printf(
      "reading: low thresholds over-chain clusters through union-find\n"
      "(precision collapses); high thresholds leave sources unaligned\n"
      "(recall falls). The default 0.40 sits on the F1 plateau.\n");
}

}  // namespace
}  // namespace storypivot::bench

int main() {
  std::printf("== A-thresholds: sensitivity of the central thresholds ==\n\n");
  storypivot::bench::AssignThresholdSweep();
  storypivot::bench::AlignThresholdSweep();
  return 0;
}
