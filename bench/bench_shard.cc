// Sharding bench (DESIGN.md §16): what the sharded coordinator costs on
// the ingest path and what parallel recovery buys on restart. Three
// experiments over one Fig. 7 corpus:
//
//   1. Sharded batch ingest + cross-shard alignment for N in {1, 2, 4}
//      shards, with the determinism cross-check: every shard count must
//      produce the exact fingerprint of the plain in-memory engine on
//      the same op stream.
//   2. Restart latency per shard count with recovery_threads=1 (serial
//      replay) vs recovery_threads=N (one replay thread per shard) —
//      the near-linear-in-shards speedup is the point of the subsystem.
//   3. Recovered-state verification: every recovery must land on the
//      ingest-time fingerprint and op count.
//
// On hosts with >= 4 hardware threads the 4-shard parallel recovery is
// required to be >= 2x faster than serial; with fewer threads only the
// determinism contract is asserted (a single core cannot show the
// speedup, only the correctness). `hardware_threads` is recorded in
// BENCH_shard.json so readers can tell which regime produced the
// numbers.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "core/snapshot.h"
#include "persist/durable_engine.h"
#include "shard/sharded_engine.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"

namespace storypivot::bench {
namespace {

constexpr const char kScratchRoot[] = "bench_shard_tmp";
constexpr size_t kBatchSize = 512;

void RemoveDirRecursive(const std::string& path) {
  if (!FileExists(path)) return;
  Result<std::vector<std::string>> names = ListDirectory(path);
  if (names.ok()) {  // A directory: empty it, then rmdir.
    for (const std::string& entry : names.value()) {
      RemoveDirRecursive(path + "/" + entry);
    }
    IgnoreError(RemoveDirectory(path));
    return;
  }
  IgnoreError(RemoveFile(path));
}

std::string FreshDir(const std::string& name) {
  std::string dir = std::string(kScratchRoot) + "/" + name;
  RemoveDirRecursive(dir);
  SP_CHECK_OK(CreateDirectories(dir));
  return dir;
}

struct ShardRun {
  size_t shards = 0;
  double ingest_ms = 0.0;
  double align_ms = 0.0;
  double recover_serial_ms = 0.0;
  double recover_parallel_ms = 0.0;
  uint64_t fingerprint = 0;
  uint64_t ops = 0;
};

shard::ShardOptions MakeOptions(size_t shards, size_t recovery_threads) {
  shard::ShardOptions options;
  options.num_shards = shards;
  options.recovery_threads = recovery_threads;
  // Recovery replays the full WAL either way; on-rotate keeps the
  // ingest phase from being an fsync bench.
  options.durability.wal.fsync = persist::FsyncPolicy::kOnRotate;
  return options;
}

/// Builds an N-shard deployment in `dir` from the corpus (batched
/// ingest + one alignment), closes it, and reports timings plus the
/// final fingerprint.
ShardRun BuildDeployment(const datagen::Corpus& corpus,
                         const std::string& dir, size_t shards) {
  Result<std::unique_ptr<shard::ShardedEngine>> opened =
      shard::ShardedEngine::Open(dir, MakeOptions(shards, shards));
  SP_CHECK_OK(opened.status());
  shard::ShardedEngine& sharded = *opened.value();

  ShardRun r;
  r.shards = shards;
  WallTimer ingest_timer;
  SP_CHECK_OK(sharded.ImportVocabularies(*corpus.entity_vocabulary,
                                         *corpus.keyword_vocabulary));
  for (const SourceInfo& source : corpus.sources) {
    SP_CHECK_OK(sharded.RegisterSource(source.name));
  }
  for (size_t begin = 0; begin < corpus.snippets.size();
       begin += kBatchSize) {
    const size_t end =
        std::min(begin + kBatchSize, corpus.snippets.size());
    std::vector<Snippet> batch;
    batch.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      Snippet copy = corpus.snippets[i];
      copy.id = kInvalidSnippetId;
      batch.push_back(std::move(copy));
    }
    SP_CHECK_OK(sharded.AddSnippets(std::move(batch)));
  }
  r.ingest_ms = ingest_timer.ElapsedMillis();

  WallTimer align_timer;
  SP_CHECK_OK(sharded.Align());
  r.align_ms = align_timer.ElapsedMillis();

  r.fingerprint = sharded.Fingerprint();
  r.ops = sharded.next_lsn();
  SP_CHECK_OK(sharded.Close());
  return r;
}

/// Times one cold reopen of the deployment in `dir` (full WAL replay —
/// no checkpoints were written) with the given recovery parallelism.
/// Verifies the recovered state before closing.
double RecoverMillis(const std::string& dir, size_t recovery_threads,
                     const ShardRun& expected) {
  // num_shards = 0: the manifest is authoritative on reopen.
  WallTimer timer;
  Result<std::unique_ptr<shard::ShardedEngine>> opened =
      shard::ShardedEngine::Open(dir, MakeOptions(0, recovery_threads));
  SP_CHECK_OK(opened.status());
  const double elapsed = timer.ElapsedMillis();
  shard::ShardedEngine& sharded = *opened.value();
  SP_CHECK(sharded.num_shards() == expected.shards);
  SP_CHECK(sharded.next_lsn() == expected.ops);
  SP_CHECK(sharded.Fingerprint() == expected.fingerprint);
  SP_CHECK_OK(sharded.Close());
  return elapsed;
}

void Run() {
  std::printf("== sharding: scatter-gather ingest & parallel recovery ==\n\n");
  datagen::CorpusConfig corpus_config = Fig7CorpusConfig(8000);
  corpus_config.num_sources = 8;
  datagen::Corpus corpus =
      datagen::CorpusGenerator(corpus_config).Generate();
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("corpus: %zu snippets over %d sources; batch=%zu; "
              "hardware threads=%u\n\n",
              corpus.snippets.size(), corpus_config.num_sources, kBatchSize,
              hw);

  // Plain in-memory reference: the sharded engine's contract is
  // bit-identical state for every shard count.
  StoryPivotEngine plain;
  SP_CHECK_OK(plain.ImportVocabularies(*corpus.entity_vocabulary,
                                       *corpus.keyword_vocabulary));
  for (const SourceInfo& s : corpus.sources) plain.RegisterSource(s.name);
  for (size_t begin = 0; begin < corpus.snippets.size();
       begin += kBatchSize) {
    const size_t end =
        std::min(begin + kBatchSize, corpus.snippets.size());
    std::vector<Snippet> batch;
    batch.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      Snippet copy = corpus.snippets[i];
      copy.id = kInvalidSnippetId;
      batch.push_back(std::move(copy));
    }
    SP_CHECK_OK(plain.AddSnippets(std::move(batch)));
  }
  plain.Align();
  const uint64_t reference_fingerprint = EngineStateFingerprint(plain);
  std::printf("plain engine reference fingerprint: %016llx\n\n",
              static_cast<unsigned long long>(reference_fingerprint));

  std::vector<ShardRun> runs;
  std::printf("%8s %12s %12s %16s %18s %10s\n", "shards", "ingest ms",
              "align ms", "recover(t=1) ms", "recover(t=N) ms", "speedup");
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    const std::string dir = FreshDir(StrFormat("shards_%zu", shards));
    ShardRun r = BuildDeployment(corpus, dir, shards);
    // Determinism contract: every shard count reproduces the plain
    // engine's state bit for bit.
    SP_CHECK(r.fingerprint == reference_fingerprint);
    r.recover_serial_ms = RecoverMillis(dir, /*recovery_threads=*/1, r);
    r.recover_parallel_ms = RecoverMillis(dir, shards, r);
    std::printf("%8zu %12.1f %12.1f %16.1f %18.1f %9.2fx\n", r.shards,
                r.ingest_ms, r.align_ms, r.recover_serial_ms,
                r.recover_parallel_ms,
                r.recover_serial_ms / r.recover_parallel_ms);
    runs.push_back(r);
  }

  const ShardRun& four = runs.back();
  const double speedup_at_4 =
      four.recover_serial_ms / four.recover_parallel_ms;
  if (hw >= 4) {
    // With real parallel hardware the 4-shard replay must pull its
    // weight; on fewer cores only the determinism contract above is
    // checkable (the threads time-slice one core).
    SP_CHECK(speedup_at_4 >= 2.0);
    std::printf("\n4-shard parallel recovery speedup: %.2fx (>= 2x ok)\n",
                speedup_at_4);
  } else {
    std::printf("\n4-shard parallel recovery speedup: %.2fx "
                "(< 4 hardware threads: determinism asserted, "
                "speedup not required)\n",
                speedup_at_4);
  }

  std::string json = StrFormat(
      "{\"bench\":\"shard\",\"snippets\":%zu,\"sources\":%d,"
      "\"batch_size\":%zu,\"hardware_threads\":%u,"
      "\"reference_fingerprint\":\"%016llx\",\"results\":[",
      corpus.snippets.size(), corpus_config.num_sources, kBatchSize, hw,
      static_cast<unsigned long long>(reference_fingerprint));
  for (size_t i = 0; i < runs.size(); ++i) {
    const ShardRun& r = runs[i];
    json += StrFormat(
        "%s{\"shards\":%zu,\"ingest_ms\":%.2f,\"align_ms\":%.2f,"
        "\"ops\":%llu,\"recover_serial_ms\":%.2f,"
        "\"recover_parallel_ms\":%.2f,\"recovery_speedup\":%.3f,"
        "\"fingerprint\":\"%016llx\",\"deterministic\":true}",
        i == 0 ? "" : ",", r.shards, r.ingest_ms, r.align_ms,
        static_cast<unsigned long long>(r.ops), r.recover_serial_ms,
        r.recover_parallel_ms, r.recover_serial_ms / r.recover_parallel_ms,
        static_cast<unsigned long long>(r.fingerprint));
  }
  json += "]}\n";
  SP_CHECK_OK(WriteStringToFile("BENCH_shard.json", json));
  std::printf("wrote BENCH_shard.json\n");
}

}  // namespace
}  // namespace storypivot::bench

int main() {
  storypivot::bench::Run();
  storypivot::bench::RemoveDirRecursive(storypivot::bench::kScratchRoot);
  return 0;
}
