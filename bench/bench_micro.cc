// Microbenchmarks (google-benchmark) for the hot paths under everything
// in StoryPivot: tokenization, stemming, sparse-vector similarity, MinHash
// sketching, LSH lookup and temporal-index operations.

#include <benchmark/benchmark.h>

#include "core/similarity.h"
#include "sketch/lsh_index.h"
#include "sketch/minhash.h"
#include "storage/bucketed_index.h"
#include "storage/temporal_index.h"
#include "text/porter_stemmer.h"
#include "text/term_vector.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace storypivot {
namespace {

text::TermVector RandomVector(Pcg32& rng, size_t terms, uint32_t universe) {
  std::vector<text::TermVector::Entry> entries;
  for (size_t i = 0; i < terms; ++i) {
    entries.push_back({rng.NextBounded(universe),
                       1.0 + rng.NextBounded(3)});
  }
  return text::TermVector::FromEntries(std::move(entries));
}

void BM_Tokenize(benchmark::State& state) {
  text::Tokenizer tokenizer;
  std::string input =
      "Officials leading the criminal investigation into the crash of "
      "Malaysia Airlines Flight 17 said Friday that the plane's wreckage "
      "had been tampered with, and Ukraine asked the United Nations civil "
      "aviation authority to help secure the crash site.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(input));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_Tokenize);

void BM_PorterStem(benchmark::State& state) {
  const char* words[] = {"investigation", "sanctions",  "crashed",
                         "negotiations",  "separatists", "evacuation",
                         "championship",  "relational",  "generalization"};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::PorterStem(words[i++ % std::size(words)]));
  }
}
BENCHMARK(BM_PorterStem);

void BM_TermVectorCosine(benchmark::State& state) {
  Pcg32 rng(1);
  text::TermVector a = RandomVector(rng, state.range(0), 1000);
  text::TermVector b = RandomVector(rng, state.range(0), 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Cosine(b));
  }
}
BENCHMARK(BM_TermVectorCosine)->Arg(8)->Arg(64)->Arg(512);

void BM_TermVectorWeightedJaccard(benchmark::State& state) {
  Pcg32 rng(2);
  text::TermVector a = RandomVector(rng, state.range(0), 1000);
  text::TermVector b = RandomVector(rng, state.range(0), 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.WeightedJaccard(b));
  }
}
BENCHMARK(BM_TermVectorWeightedJaccard)->Arg(8)->Arg(64)->Arg(512);

void BM_SnippetSimilarity(benchmark::State& state) {
  Pcg32 rng(3);
  text::DocumentFrequency df;
  SimilarityModel model({}, &df);
  Snippet a, b;
  a.entities = RandomVector(rng, 4, 200);
  a.keywords = RandomVector(rng, 8, 500);
  b.entities = RandomVector(rng, 4, 200);
  b.keywords = RandomVector(rng, 8, 500);
  df.AddDocument(a.keywords);
  df.AddDocument(b.keywords);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.SnippetSimilarity(a, b));
  }
}
BENCHMARK(BM_SnippetSimilarity);

void BM_MinHashFromContent(benchmark::State& state) {
  Pcg32 rng(4);
  text::TermVector entities = RandomVector(rng, 4, 200);
  text::TermVector keywords = RandomVector(rng, 8, 500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinHashSignature::FromContent(
        entities, keywords, static_cast<size_t>(state.range(0))));
  }
}
BENCHMARK(BM_MinHashFromContent)->Arg(64)->Arg(256);

void BM_MinHashEstimate(benchmark::State& state) {
  Pcg32 rng(5);
  auto a = MinHashSignature::FromContent(RandomVector(rng, 4, 200),
                                         RandomVector(rng, 8, 500), 64);
  auto b = MinHashSignature::FromContent(RandomVector(rng, 4, 200),
                                         RandomVector(rng, 8, 500), 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.EstimateJaccard(b));
  }
}
BENCHMARK(BM_MinHashEstimate);

void BM_LshQuery(benchmark::State& state) {
  Pcg32 rng(6);
  LshIndex index(16, 4);
  std::vector<MinHashSignature> sigs;
  for (int i = 0; i < state.range(0); ++i) {
    sigs.push_back(MinHashSignature::FromContent(
        RandomVector(rng, 4, 200), RandomVector(rng, 8, 500), 64));
    index.Insert(static_cast<uint64_t>(i), sigs.back());
  }
  size_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Query(sigs[probe++ % sigs.size()]));
  }
}
BENCHMARK(BM_LshQuery)->Arg(1000)->Arg(10000);

void BM_TemporalIndexInsertNearEnd(benchmark::State& state) {
  Pcg32 rng(7);
  TemporalIndex index;
  Timestamp t = 0;
  SnippetId id = 0;
  for (auto _ : state) {
    // Mostly-increasing timestamps, like real publication streams.
    t += rng.NextInRange(-50, 200);
    index.Insert(t, id++);
    if (index.size() > 100000) {
      state.PauseTiming();
      index = TemporalIndex();
      t = 0;
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_TemporalIndexInsertNearEnd);

void BM_TemporalIndexWindowScan(benchmark::State& state) {
  Pcg32 rng(8);
  TemporalIndex index;
  for (SnippetId i = 0; i < 50000; ++i) {
    index.Insert(rng.NextInRange(0, 1000000), i);
  }
  Timestamp lo = 0;
  for (auto _ : state) {
    lo = (lo + 1234) % 900000;
    benchmark::DoNotOptimize(index.CountInWindow(lo, lo + 10000));
  }
}
BENCHMARK(BM_TemporalIndexWindowScan);

void BM_TemporalIndexInsertOutOfOrder(benchmark::State& state) {
  Pcg32 rng(9);
  TemporalIndex index;
  SnippetId id = 0;
  for (auto _ : state) {
    // Fully random timestamps — the sorted vector's worst case.
    index.Insert(rng.NextInRange(0, 10000000), id++);
    if (index.size() > 50000) {
      state.PauseTiming();
      index = TemporalIndex();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_TemporalIndexInsertOutOfOrder);

void BM_BucketedIndexInsertOutOfOrder(benchmark::State& state) {
  Pcg32 rng(9);
  BucketedTemporalIndex index(kSecondsPerDay);
  SnippetId id = 0;
  for (auto _ : state) {
    index.Insert(rng.NextInRange(0, 10000000), id++);
    if (index.size() > 50000) {
      state.PauseTiming();
      index = BucketedTemporalIndex(kSecondsPerDay);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_BucketedIndexInsertOutOfOrder);

void BM_BucketedIndexWindowScan(benchmark::State& state) {
  Pcg32 rng(10);
  BucketedTemporalIndex index(kSecondsPerDay);
  for (SnippetId i = 0; i < 50000; ++i) {
    index.Insert(rng.NextInRange(0, 1000000), i);
  }
  Timestamp lo = 0;
  for (auto _ : state) {
    lo = (lo + 1234) % 900000;
    benchmark::DoNotOptimize(index.CountInWindow(lo, lo + 10000));
  }
}
BENCHMARK(BM_BucketedIndexWindowScan);

}  // namespace
}  // namespace storypivot

BENCHMARK_MAIN();
