// Fault-injection bench (DESIGN.md §12): what the failpoint framework
// costs when idle and what faults cost when they strike. Three
// experiments:
//
//   1. SP_FAILPOINT evaluation cost: the disarmed fast path (one relaxed
//      atomic load), the slow path taken while ANY site is armed, and an
//      armed-but-never-firing probability trigger on the hot site
//      itself. Built with -DSTORYPIVOT_FAILPOINTS=OFF the macro expands
//      to nothing and the same loop measures ~0 ns — the release
//      guarantee that `lint.failpoint_noop` proves at compile time.
//   2. WAL append latency under transient write faults at rates
//      {0%, 1%, 10%}: the price of retry/backoff on the ingest path. A
//      recording no-op sleep is installed so backoff is accounted, not
//      slept through.
//   3. Recovery latency after an injected mid-stream crash: a one-shot
//      permanent fault degrades the engine at a chosen op; we then time
//      Open() replaying checkpoint + WAL tail back to the acknowledged
//      prefix.
//   4. Sharded availability under faults (DESIGN.md §17): mutation
//      availability (acked/attempted) on a 2-shard engine at 0/1/10%
//      transient append-fault rates and under a single-shard PERMANENT
//      failure — once with quarantine + self-healing (the default; the
//      permanent failure is absorbed and we time quarantine-to-rejoin),
//      once with the fail-stop fallback (the pre-quarantine baseline,
//      where the same fault poisons the coordinator and every further
//      mutation bounces).
//
// Emits BENCH_faults.json next to the human-readable tables.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "persist/durable_engine.h"
#include "persist/wal.h"
#include "shard/sharded_engine.h"
#include "util/failpoint.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/retry.h"
#include "util/strings.h"
#include "util/timer.h"

namespace storypivot::bench {
namespace {

#ifdef STORYPIVOT_FAILPOINTS
constexpr bool kFailpointsCompiled = true;
#else
constexpr bool kFailpointsCompiled = false;
#endif

std::string FreshDir(const std::string& name) {
  std::string dir = "bench_faults_tmp/" + name;
  if (FileExists(dir)) {
    Result<std::vector<std::string>> names = ListDirectory(dir);
    SP_CHECK_OK(names.status());
    for (const std::string& entry : names.value()) {
      SP_CHECK_OK(RemoveFile(dir + "/" + entry));
    }
  }
  SP_CHECK_OK(CreateDirectories(dir));
  return dir;
}

void RemoveDirRecursive(const std::string& path) {
  if (!FileExists(path)) return;
  Result<std::vector<std::string>> names = ListDirectory(path);
  if (names.ok()) {  // A directory: empty it, then rmdir.
    for (const std::string& entry : names.value()) {
      RemoveDirRecursive(path + "/" + entry);
    }
    IgnoreError(RemoveDirectory(path));
    return;
  }
  IgnoreError(RemoveFile(path));
}

// Keeps the measured loop observable so the optimizer cannot delete it.
volatile uint64_t g_sink = 0;

/// One site evaluation through the production macro, exactly as fs.cc and
/// wal.cc use it.
Status EvaluateSite() {
  SP_FAILPOINT("bench.macro");
  return Status::OK();
}

double MeasureEvalNs(size_t evals) {
  uint64_t ok = 0;
  WallTimer timer;
  for (size_t i = 0; i < evals; ++i) {
    ok += EvaluateSite().ok() ? 1 : 0;
  }
  const double ms = timer.ElapsedMillis();
  g_sink = ok;
  return ms * 1e6 / static_cast<double>(evals);
}

struct MacroResult {
  std::string label;
  double ns_per_eval = 0.0;
};

std::vector<MacroResult> RunMacroBench() {
  // 8M evaluations keep each case under ~50 ms while averaging away
  // timer noise on the ~1 ns fast path.
  constexpr size_t kEvals = 8'000'000;
  failpoint::Registry& registry = failpoint::Registry::Instance();
  registry.DisarmAll();

  std::vector<MacroResult> results;
  std::printf("%28s %14s\n", "macro state", "ns/eval");

  results.push_back({"disarmed", MeasureEvalNs(kEvals)});

  // Arming a DIFFERENT site forces every evaluation down the slow path
  // (registry lookup) — the cost a disarmed hot site pays while a chaos
  // schedule is live elsewhere in the process.
  registry.Arm("bench.other", failpoint::Probability(0.0, 1));
  results.push_back({"armed-other-site", MeasureEvalNs(kEvals)});
  registry.DisarmAll();

  // Armed on the hot site itself but never firing: slow path plus the
  // per-site RNG draw.
  registry.Arm("bench.macro", failpoint::Probability(0.0, 1));
  results.push_back({"armed-zero-probability", MeasureEvalNs(kEvals)});
  registry.DisarmAll();

  for (const MacroResult& r : results) {
    std::printf("%28s %14.2f\n", r.label.c_str(), r.ns_per_eval);
  }
  if (!kFailpointsCompiled) {
    std::printf("  (STORYPIVOT_FAILPOINTS is OFF: the macro expands to "
                "nothing, so all cases measure the empty loop)\n");
  }
  std::printf("\n");
  return results;
}

struct AppendResult {
  double fault_rate = 0.0;
  size_t appends = 0;
  double mean_append_us = 0.0;
  double appends_per_s = 0.0;
  uint64_t retries = 0;
  uint64_t backoff_virtual_us = 0;
  uint64_t exhausted = 0;
};

std::vector<AppendResult> RunAppendBench() {
  constexpr size_t kAppends = 20'000;
  const std::string payload(64, 'x');
  std::vector<double> rates = {0.0};
  if (kFailpointsCompiled) {
    rates.push_back(0.01);
    rates.push_back(0.10);
  } else {
    std::printf("wal append: failpoints compiled out — measuring the "
                "fault-free baseline only\n");
  }

  std::vector<AppendResult> results;
  std::printf("%12s %10s %14s %12s %10s %14s %10s\n", "fault rate",
              "appends", "mean us/app", "appends/s", "retries",
              "backoff us*", "exhausted");
  for (double rate : rates) {
    std::string dir = FreshDir(StrFormat("append_%d",
                                         static_cast<int>(rate * 100)));
    persist::WalOptions options;
    options.fsync = persist::FsyncPolicy::kOnRotate;
    uint64_t virtual_backoff = 0;
    options.retry_sleep = [&virtual_backoff](uint64_t micros) {
      virtual_backoff += micros;
    };
    Result<std::unique_ptr<persist::WriteAheadLog>> opened =
        persist::WriteAheadLog::Open(dir, options, 0);
    SP_CHECK_OK(opened.status());
    persist::WriteAheadLog& wal = *opened.value();

    failpoint::Registry& registry = failpoint::Registry::Instance();
    registry.DisarmAll();
    if (rate > 0.0) {
      registry.Arm("fs.append.write",
                   failpoint::Probability(rate, 42, /*transient=*/true));
    }

    // At 10% with max_attempts=4 about 1 in 10^4 appends exhausts its
    // retries; the failed append withdrew the record, so the app-level
    // loop simply re-submits it at the same lsn.
    uint64_t exhausted = 0;
    WallTimer timer;
    for (size_t i = 0; i < kAppends; ++i) {
      for (;;) {
        Result<uint64_t> lsn = wal.Append(payload);
        if (lsn.ok()) break;
        ++exhausted;
      }
    }
    const double ms = timer.ElapsedMillis();
    registry.DisarmAll();

    AppendResult r;
    r.fault_rate = rate;
    r.appends = kAppends;
    r.mean_append_us = ms * 1000.0 / static_cast<double>(kAppends);
    r.appends_per_s = 1000.0 * static_cast<double>(kAppends) / ms;
    r.retries = wal.retry_stats().retries;
    r.backoff_virtual_us = virtual_backoff;
    r.exhausted = exhausted;
    SP_CHECK_OK(wal.Close());
    std::printf("%11.0f%% %10zu %14.2f %12.0f %10llu %14llu %10llu\n",
                rate * 100.0, r.appends, r.mean_append_us, r.appends_per_s,
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.backoff_virtual_us),
                static_cast<unsigned long long>(r.exhausted));
    results.push_back(r);
  }
  std::printf("  (* backoff is requested from a recording no-op sleep, "
              "not slept)\n\n");
  return results;
}

struct CrashResult {
  uint64_t crash_at_op = 0;
  uint64_t acked_ops = 0;
  double recover_ms = 0.0;
  uint64_t tail_ops = 0;
};

std::vector<CrashResult> RunCrashBench(const datagen::Corpus& corpus) {
  std::vector<CrashResult> results;
  if (!kFailpointsCompiled) {
    std::printf("crash recovery: failpoints compiled out — skipped\n\n");
    return results;
  }
  failpoint::Registry& registry = failpoint::Registry::Instance();

  std::printf("%12s %12s %14s %12s\n", "crash at op", "acked ops",
              "recover ms", "tail ops");
  // Ops 1..11 are vocabularies + sources; the rest are snippets. The
  // engine checkpoints every 500 ops, so the replayed tail length cycles
  // with the crash position.
  for (uint64_t crash_at : {150ull, 900ull, 1990ull}) {
    std::string dir = FreshDir(StrFormat("crash_%llu",
                                         static_cast<unsigned long long>(
                                             crash_at)));
    persist::DurabilityOptions options;
    options.wal.fsync = persist::FsyncPolicy::kOnRotate;
    options.wal.retry_sleep = [](uint64_t) {};
    options.checkpoint_every_ops = 500;

    registry.DisarmAll();
    registry.Arm("wal.append", failpoint::OneShot(crash_at));
    uint64_t acked = 0;
    {
      Result<std::unique_ptr<persist::DurableEngine>> opened =
          persist::DurableEngine::Open(dir, options);
      SP_CHECK_OK(opened.status());
      persist::DurableEngine& durable = *opened.value();
      Status status = durable.ImportVocabularies(
          *corpus.entity_vocabulary, *corpus.keyword_vocabulary);
      if (status.ok()) ++acked;
      for (size_t i = 0; status.ok() && i < corpus.sources.size(); ++i) {
        status = durable.RegisterSource(corpus.sources[i].name).status();
        if (status.ok()) ++acked;
      }
      for (size_t i = 0; status.ok() && i < corpus.snippets.size(); ++i) {
        Snippet copy = corpus.snippets[i];
        copy.id = kInvalidSnippetId;
        status = durable.AddSnippet(std::move(copy)).status();
        if (status.ok()) ++acked;
      }
      // The injected one-shot fault must have degraded the engine.
      SP_CHECK(status.code() == StatusCode::kDegraded);
      // Scope exit "crashes" the degraded engine; the on-disk state is
      // the acknowledged prefix.
    }
    registry.DisarmAll();

    CrashResult r;
    r.crash_at_op = crash_at;
    r.acked_ops = acked;
    WallTimer timer;
    Result<std::unique_ptr<persist::DurableEngine>> recovered =
        persist::DurableEngine::Open(dir, options);
    SP_CHECK_OK(recovered.status());
    r.recover_ms = timer.ElapsedMillis();
    // Recovery must land exactly on the acknowledged prefix.
    SP_CHECK(recovered.value()->next_lsn() == acked);
    r.tail_ops = recovered.value()->ops_since_checkpoint();
    SP_CHECK_OK(recovered.value()->Close());
    std::printf("%12llu %12llu %14.1f %12llu\n",
                static_cast<unsigned long long>(r.crash_at_op),
                static_cast<unsigned long long>(r.acked_ops), r.recover_ms,
                static_cast<unsigned long long>(r.tail_ops));
    results.push_back(r);
  }
  std::printf("\n");
  return results;
}

struct ShardedFaultResult {
  std::string mode;
  double fault_rate = 0.0;
  size_t attempted = 0;
  size_t acked = 0;
  double availability_pct = 0.0;
  double ops_per_s = 0.0;
  uint64_t quarantines = 0;
  uint64_t rejoins = 0;
  uint64_t wal_retries = 0;
  double heal_to_rejoin_ms = 0.0;  ///< quarantine modes only; else 0.
};

/// Feeds the corpus through a 2-shard engine under one fault regime and
/// reports mutation availability (acked/attempted) plus, when a shard
/// quarantines, the wall-clock from quarantine entry to rejoin.
ShardedFaultResult RunOneShardedMode(const datagen::Corpus& corpus,
                                     const std::string& mode,
                                     double transient_rate,
                                     bool permanent_fault,
                                     bool quarantine) {
  constexpr size_t kSnippets = 1'200;
  std::string dir = "bench_faults_tmp/sharded_" + mode;
  RemoveDirRecursive(dir);
  SP_CHECK_OK(CreateDirectories(dir));

  shard::ShardOptions options;
  options.num_shards = 2;
  options.durability.wal.fsync = persist::FsyncPolicy::kOnRotate;
  options.durability.wal.retry_sleep = [](uint64_t) {};
  options.quarantine = quarantine;
  options.heal_retry_sleep = [](uint64_t) {};
  Result<std::unique_ptr<shard::ShardedEngine>> opened =
      shard::ShardedEngine::Open(dir, options);
  SP_CHECK_OK(opened.status());
  shard::ShardedEngine& sharded = *opened.value();

  failpoint::Registry& registry = failpoint::Registry::Instance();
  registry.DisarmAll();
  if (transient_rate > 0.0) {
    registry.Arm("fs.append.write",
                 failpoint::Probability(transient_rate, 42,
                                        /*transient=*/true));
  }
  if (permanent_fault) {
    // Mid-run: the ~300th op's append on one shard dies for good.
    registry.Arm("wal.append", failpoint::OneShot(601, /*transient=*/false));
  }

  ShardedFaultResult r;
  r.mode = mode;
  r.fault_rate = transient_rate;
  WallTimer heal_timer;
  bool quarantine_seen = false;
  bool rejoin_seen = false;
  auto after_op = [&]() {
    if (!quarantine || rejoin_seen) return;
    bool unhealthy = false;
    bool rejoined = false;
    for (size_t s = 0; s < sharded.num_shards(); ++s) {
      const shard::ShardHealth health = sharded.shard_health(s);
      unhealthy |= health == shard::ShardHealth::kQuarantined ||
                   health == shard::ShardHealth::kHealing;
      rejoined |= health == shard::ShardHealth::kRejoined;
    }
    if (!quarantine_seen && unhealthy) {
      quarantine_seen = true;
      heal_timer = WallTimer();
    }
    if (quarantine_seen && rejoined && !unhealthy) {
      rejoin_seen = true;
      r.heal_to_rejoin_ms = heal_timer.ElapsedMillis();
    }
  };
  auto apply = [&](Status status) {
    ++r.attempted;
    if (status.ok()) ++r.acked;
    after_op();
  };

  WallTimer timer;
  apply(sharded.ImportVocabularies(*corpus.entity_vocabulary,
                                   *corpus.keyword_vocabulary));
  for (const SourceInfo& source : corpus.sources) {
    apply(sharded.RegisterSource(source.name).status());
  }
  for (size_t i = 0; i < kSnippets && i < corpus.snippets.size(); ++i) {
    Snippet copy = corpus.snippets[i];
    copy.id = kInvalidSnippetId;
    apply(sharded.AddSnippet(std::move(copy)).status());
  }
  const double ms = timer.ElapsedMillis();
  r.ops_per_s = 1000.0 * static_cast<double>(r.attempted) / ms;
  r.availability_pct =
      100.0 * static_cast<double>(r.acked) / static_cast<double>(r.attempted);

  // A heal still in flight when the stream ends: drive it to rejoin so
  // the latency row reflects a complete cycle.
  if (quarantine_seen && !rejoin_seen) {
    sharded.WaitForHealerIdle();
    IgnoreError(sharded.PollHealth());
    r.heal_to_rejoin_ms = heal_timer.ElapsedMillis();
  }
  registry.DisarmAll();

  for (const shard::ShardedEngine::ShardStats& shard :
       sharded.GetStats().shards) {
    r.quarantines += shard.quarantines;
    r.rejoins += shard.rejoins;
    r.wal_retries += shard.wal_retry.retries;
  }
  IgnoreError(sharded.Close());  // Fail-stop mode closes degraded.
  return r;
}

std::vector<ShardedFaultResult> RunShardedBench(
    const datagen::Corpus& corpus) {
  std::vector<ShardedFaultResult> results;
  std::printf("%24s %10s %8s %13s %10s %8s %8s %14s\n", "sharded mode",
              "attempted", "acked", "availability", "ops/s", "quaran",
              "rejoin", "heal-ms");
  results.push_back(RunOneShardedMode(corpus, "fault-free", 0.0,
                                      /*permanent_fault=*/false,
                                      /*quarantine=*/true));
  if (kFailpointsCompiled) {
    results.push_back(RunOneShardedMode(corpus, "transient-1pct", 0.01,
                                        false, true));
    results.push_back(RunOneShardedMode(corpus, "transient-10pct", 0.10,
                                        false, true));
    results.push_back(RunOneShardedMode(corpus, "permanent-quarantine",
                                        0.0, /*permanent_fault=*/true,
                                        /*quarantine=*/true));
    results.push_back(RunOneShardedMode(corpus, "permanent-failstop", 0.0,
                                        /*permanent_fault=*/true,
                                        /*quarantine=*/false));
  } else {
    std::printf("  (failpoints compiled out — fault-free baseline only)\n");
  }
  for (const ShardedFaultResult& r : results) {
    std::printf("%24s %10zu %8zu %12.1f%% %10.0f %8llu %8llu %14.2f\n",
                r.mode.c_str(), r.attempted, r.acked, r.availability_pct,
                r.ops_per_s, static_cast<unsigned long long>(r.quarantines),
                static_cast<unsigned long long>(r.rejoins),
                r.heal_to_rejoin_ms);
  }
  std::printf("  (availability = acked mutations / attempted; heal-ms = "
              "quarantine entry to rejoin)\n\n");
  return results;
}

void Run() {
  std::printf("== faults: failpoint cost, retry latency, crash recovery "
              "==\n\n");
  datagen::CorpusConfig corpus_config = Fig7CorpusConfig(2500);
  datagen::Corpus corpus =
      datagen::CorpusGenerator(corpus_config).Generate();

  std::vector<MacroResult> macro = RunMacroBench();
  std::vector<AppendResult> appends = RunAppendBench();
  std::vector<CrashResult> crashes = RunCrashBench(corpus);
  std::vector<ShardedFaultResult> sharded = RunShardedBench(corpus);

  std::string json = StrFormat(
      "{\"bench\":\"faults\",\"failpoints_compiled\":%s,"
      "\"macro_overhead\":[",
      kFailpointsCompiled ? "true" : "false");
  for (size_t i = 0; i < macro.size(); ++i) {
    json += StrFormat("%s{\"case\":\"%s\",\"ns_per_eval\":%.3f}",
                      i == 0 ? "" : ",", macro[i].label.c_str(),
                      macro[i].ns_per_eval);
  }
  json += "],\"wal_append\":[";
  for (size_t i = 0; i < appends.size(); ++i) {
    const AppendResult& r = appends[i];
    json += StrFormat(
        "%s{\"fault_rate\":%.2f,\"appends\":%zu,\"mean_append_us\":%.3f,"
        "\"appends_per_s\":%.1f,\"retries\":%llu,"
        "\"backoff_virtual_us\":%llu,\"exhausted\":%llu}",
        i == 0 ? "" : ",", r.fault_rate, r.appends, r.mean_append_us,
        r.appends_per_s, static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.backoff_virtual_us),
        static_cast<unsigned long long>(r.exhausted));
  }
  json += "],\"recovery\":[";
  for (size_t i = 0; i < crashes.size(); ++i) {
    const CrashResult& r = crashes[i];
    json += StrFormat(
        "%s{\"crash_at_op\":%llu,\"acked_ops\":%llu,\"recover_ms\":%.2f,"
        "\"tail_ops\":%llu}",
        i == 0 ? "" : ",",
        static_cast<unsigned long long>(r.crash_at_op),
        static_cast<unsigned long long>(r.acked_ops), r.recover_ms,
        static_cast<unsigned long long>(r.tail_ops));
  }
  json += "],\"sharded\":[";
  for (size_t i = 0; i < sharded.size(); ++i) {
    const ShardedFaultResult& r = sharded[i];
    json += StrFormat(
        "%s{\"mode\":\"%s\",\"fault_rate\":%.2f,\"attempted\":%zu,"
        "\"acked\":%zu,\"availability_pct\":%.2f,\"ops_per_s\":%.1f,"
        "\"quarantines\":%llu,\"rejoins\":%llu,\"wal_retries\":%llu,"
        "\"heal_to_rejoin_ms\":%.3f}",
        i == 0 ? "" : ",", r.mode.c_str(), r.fault_rate, r.attempted,
        r.acked, r.availability_pct, r.ops_per_s,
        static_cast<unsigned long long>(r.quarantines),
        static_cast<unsigned long long>(r.rejoins),
        static_cast<unsigned long long>(r.wal_retries),
        r.heal_to_rejoin_ms);
  }
  json += "]}\n";
  SP_CHECK_OK(WriteStringToFile("BENCH_faults.json", json));
  std::printf("wrote BENCH_faults.json\n");

  RemoveDirRecursive("bench_faults_tmp");
}

}  // namespace
}  // namespace storypivot::bench

int main() {
  storypivot::bench::Run();
  return 0;
}
