// Parallel executor bench (DESIGN.md §9): batch ingestion (AddSnippets)
// and alignment throughput as a function of the engine thread count,
// with a determinism cross-check — every thread count must reproduce the
// t=1 engine state bit for bit. A second experiment crosses the engine
// thread count with the shard count (DESIGN.md §16): the same corpus is
// ingested through a ShardedEngine for every (threads, shards) cell, and
// every cell must land on the same fingerprint as the in-memory engine.
// Emits BENCH_parallel.json next to the human-readable tables so CI and
// the experiment index can track both scaling curves.
//
// Note: speedups only materialise on multi-core hardware; the bench
// reports std::thread::hardware_concurrency() so a flat curve on a
// single-core runner is interpretable.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/snapshot.h"
#include "persist/durable_engine.h"
#include "shard/sharded_engine.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"

namespace storypivot::bench {
namespace {

constexpr size_t kBatchSize = 512;
constexpr const char kScratchRoot[] = "bench_parallel_tmp";

void RemoveDirRecursive(const std::string& path) {
  if (!FileExists(path)) return;
  Result<std::vector<std::string>> names = ListDirectory(path);
  if (names.ok()) {  // A directory: empty it, then rmdir.
    for (const std::string& entry : names.value()) {
      RemoveDirRecursive(path + "/" + entry);
    }
    IgnoreError(RemoveDirectory(path));
    return;
  }
  IgnoreError(RemoveFile(path));
}

struct ShardCell {
  size_t threads = 1;
  size_t shards = 1;
  double ingest_ms = 0.0;
  double align_ms = 0.0;
  uint64_t fingerprint = 0;
};

/// Ingests the corpus through an N-shard durable deployment with the
/// given engine thread count, aligns, and returns the timings plus the
/// final fingerprint (which must match the in-memory engine's).
ShardCell RunSharded(const datagen::Corpus& corpus, size_t threads,
                     size_t shards) {
  const std::string dir =
      StrFormat("%s/t%zu_s%zu", kScratchRoot, threads, shards);
  RemoveDirRecursive(dir);
  SP_CHECK_OK(CreateDirectories(dir));

  shard::ShardOptions options;
  options.num_shards = shards;
  options.engine_config.num_threads = threads;
  options.durability.wal.fsync = persist::FsyncPolicy::kOnRotate;
  Result<std::unique_ptr<shard::ShardedEngine>> opened =
      shard::ShardedEngine::Open(dir, options);
  SP_CHECK_OK(opened.status());
  shard::ShardedEngine& sharded = *opened.value();

  ShardCell cell;
  cell.threads = threads;
  cell.shards = shards;
  WallTimer ingest_timer;
  SP_CHECK_OK(sharded.ImportVocabularies(*corpus.entity_vocabulary,
                                         *corpus.keyword_vocabulary));
  for (const SourceInfo& source : corpus.sources) {
    SP_CHECK_OK(sharded.RegisterSource(source.name));
  }
  for (size_t begin = 0; begin < corpus.snippets.size();
       begin += kBatchSize) {
    const size_t end = std::min(begin + kBatchSize, corpus.snippets.size());
    std::vector<Snippet> batch;
    batch.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      Snippet copy = corpus.snippets[i];
      copy.id = kInvalidSnippetId;
      batch.push_back(std::move(copy));
    }
    SP_CHECK_OK(sharded.AddSnippets(std::move(batch)));
  }
  cell.ingest_ms = ingest_timer.ElapsedMillis();

  WallTimer align_timer;
  SP_CHECK_OK(sharded.Align());
  cell.align_ms = align_timer.ElapsedMillis();
  cell.fingerprint = sharded.Fingerprint();
  SP_CHECK_OK(sharded.Close());
  return cell;
}

struct RunResult {
  size_t threads = 1;
  double ingest_ms = 0.0;
  double snippets_per_s = 0.0;
  double align_ms = 0.0;
  uint64_t fingerprint = 0;
  uint64_t align_stories = 0;
};

RunResult RunOnce(const datagen::Corpus& corpus, size_t threads) {
  EngineConfig config;
  config.num_threads = threads;
  StoryPivotEngine engine(config);
  SP_CHECK_OK(engine.ImportVocabularies(*corpus.entity_vocabulary,
                                        *corpus.keyword_vocabulary));
  for (const SourceInfo& s : corpus.sources) engine.RegisterSource(s.name);

  RunResult result;
  result.threads = threads;
  WallTimer ingest_timer;
  std::vector<Snippet> batch;
  batch.reserve(kBatchSize);
  for (const Snippet& snippet : corpus.snippets) {
    batch.push_back(snippet);
    batch.back().id = kInvalidSnippetId;
    if (batch.size() == kBatchSize) {
      SP_CHECK_OK(engine.AddSnippets(std::move(batch)));
      batch.clear();
    }
  }
  if (!batch.empty()) SP_CHECK_OK(engine.AddSnippets(std::move(batch)));
  result.ingest_ms = ingest_timer.ElapsedMillis();
  result.snippets_per_s =
      corpus.snippets.size() / (result.ingest_ms / 1000.0);

  WallTimer align_timer;
  const AlignmentResult& aligned = engine.Align();
  result.align_ms = align_timer.ElapsedMillis();
  result.align_stories = aligned.stories.size();
  result.fingerprint = EngineStateFingerprint(engine);
  return result;
}

void Run() {
  std::printf("== parallel executor: ingestion & alignment vs threads ==\n\n");
  datagen::CorpusConfig corpus_config = Fig7CorpusConfig(12000);
  corpus_config.num_sources = 8;
  datagen::Corpus corpus =
      datagen::CorpusGenerator(corpus_config).Generate();
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("corpus: %zu snippets over %d sources; batch=%zu; "
              "hardware threads=%u\n\n",
              corpus.snippets.size(), corpus_config.num_sources, kBatchSize,
              hw);

  std::vector<RunResult> results;
  std::printf("%8s %12s %14s %12s %10s %12s\n", "threads", "ingest ms",
              "snippets/s", "align ms", "stories", "identical");
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    RunResult r = RunOnce(corpus, threads);
    const bool identical =
        results.empty() || r.fingerprint == results.front().fingerprint;
    SP_CHECK(identical);  // Determinism contract: bit-identical state.
    std::printf("%8zu %12.1f %14.0f %12.1f %10llu %12s\n", r.threads,
                r.ingest_ms, r.snippets_per_s, r.align_ms,
                static_cast<unsigned long long>(r.align_stories),
                identical ? "yes" : "NO");
    results.push_back(r);
  }

  const double base = results.front().snippets_per_s;
  std::printf("\ningest speedup vs 1 thread:");
  for (const RunResult& r : results) {
    std::printf("  t%zu=%.2fx", r.threads, r.snippets_per_s / base);
  }
  std::printf("\n");

  // ---- threads x shards ingest matrix (sharded durable engine).
  std::printf("\n== sharded ingest: engine threads x shard count ==\n\n");
  std::printf("%8s %8s %12s %14s %12s %12s\n", "threads", "shards",
              "ingest ms", "snippets/s", "align ms", "identical");
  std::vector<ShardCell> matrix;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
      ShardCell cell = RunSharded(corpus, threads, shards);
      const bool identical =
          cell.fingerprint == results.front().fingerprint;
      SP_CHECK(identical);  // Sharded state == in-memory state, bit for bit.
      std::printf("%8zu %8zu %12.1f %14.0f %12.1f %12s\n", cell.threads,
                  cell.shards, cell.ingest_ms,
                  corpus.snippets.size() / (cell.ingest_ms / 1000.0),
                  cell.align_ms, identical ? "yes" : "NO");
      matrix.push_back(cell);
    }
  }
  RemoveDirRecursive(kScratchRoot);

  std::string json = StrFormat(
      "{\"bench\":\"parallel\",\"snippets\":%zu,\"sources\":%d,"
      "\"batch_size\":%zu,\"hardware_threads\":%u,\"results\":[",
      corpus.snippets.size(), corpus_config.num_sources, kBatchSize, hw);
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    json += StrFormat(
        "%s{\"threads\":%zu,\"ingest_ms\":%.2f,"
        "\"ingest_snippets_per_s\":%.1f,\"align_ms\":%.2f,"
        "\"speedup_vs_serial\":%.3f,\"deterministic\":true}",
        i == 0 ? "" : ",", r.threads, r.ingest_ms, r.snippets_per_s,
        r.align_ms, r.snippets_per_s / base);
  }
  json += "],\"shard_matrix\":[";
  for (size_t i = 0; i < matrix.size(); ++i) {
    const ShardCell& cell = matrix[i];
    json += StrFormat(
        "%s{\"threads\":%zu,\"shards\":%zu,\"ingest_ms\":%.2f,"
        "\"ingest_snippets_per_s\":%.1f,\"align_ms\":%.2f,"
        "\"deterministic\":true}",
        i == 0 ? "" : ",", cell.threads, cell.shards, cell.ingest_ms,
        corpus.snippets.size() / (cell.ingest_ms / 1000.0), cell.align_ms);
  }
  json += "]}\n";
  SP_CHECK_OK(WriteStringToFile("BENCH_parallel.json", json));
  std::printf("wrote BENCH_parallel.json\n");
}

}  // namespace
}  // namespace storypivot::bench

int main() {
  storypivot::bench::Run();
  return 0;
}
