// Parallel executor bench (DESIGN.md §9): batch ingestion (AddSnippets)
// and alignment throughput as a function of the engine thread count,
// with a determinism cross-check — every thread count must reproduce the
// t=1 engine state bit for bit. Emits BENCH_parallel.json next to the
// human-readable table so CI and the experiment index can track the
// scaling curve.
//
// Note: speedups only materialise on multi-core hardware; the bench
// reports std::thread::hardware_concurrency() so a flat curve on a
// single-core runner is interpretable.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/snapshot.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"

namespace storypivot::bench {
namespace {

constexpr size_t kBatchSize = 512;

struct RunResult {
  size_t threads = 1;
  double ingest_ms = 0.0;
  double snippets_per_s = 0.0;
  double align_ms = 0.0;
  uint64_t fingerprint = 0;
  uint64_t align_stories = 0;
};

RunResult RunOnce(const datagen::Corpus& corpus, size_t threads) {
  EngineConfig config;
  config.num_threads = threads;
  StoryPivotEngine engine(config);
  SP_CHECK_OK(engine.ImportVocabularies(*corpus.entity_vocabulary,
                                        *corpus.keyword_vocabulary));
  for (const SourceInfo& s : corpus.sources) engine.RegisterSource(s.name);

  RunResult result;
  result.threads = threads;
  WallTimer ingest_timer;
  std::vector<Snippet> batch;
  batch.reserve(kBatchSize);
  for (const Snippet& snippet : corpus.snippets) {
    batch.push_back(snippet);
    batch.back().id = kInvalidSnippetId;
    if (batch.size() == kBatchSize) {
      SP_CHECK_OK(engine.AddSnippets(std::move(batch)));
      batch.clear();
    }
  }
  if (!batch.empty()) SP_CHECK_OK(engine.AddSnippets(std::move(batch)));
  result.ingest_ms = ingest_timer.ElapsedMillis();
  result.snippets_per_s =
      corpus.snippets.size() / (result.ingest_ms / 1000.0);

  WallTimer align_timer;
  const AlignmentResult& aligned = engine.Align();
  result.align_ms = align_timer.ElapsedMillis();
  result.align_stories = aligned.stories.size();
  result.fingerprint = EngineStateFingerprint(engine);
  return result;
}

void Run() {
  std::printf("== parallel executor: ingestion & alignment vs threads ==\n\n");
  datagen::CorpusConfig corpus_config = Fig7CorpusConfig(12000);
  corpus_config.num_sources = 8;
  datagen::Corpus corpus =
      datagen::CorpusGenerator(corpus_config).Generate();
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("corpus: %zu snippets over %d sources; batch=%zu; "
              "hardware threads=%u\n\n",
              corpus.snippets.size(), corpus_config.num_sources, kBatchSize,
              hw);

  std::vector<RunResult> results;
  std::printf("%8s %12s %14s %12s %10s %12s\n", "threads", "ingest ms",
              "snippets/s", "align ms", "stories", "identical");
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    RunResult r = RunOnce(corpus, threads);
    const bool identical =
        results.empty() || r.fingerprint == results.front().fingerprint;
    SP_CHECK(identical);  // Determinism contract: bit-identical state.
    std::printf("%8zu %12.1f %14.0f %12.1f %10llu %12s\n", r.threads,
                r.ingest_ms, r.snippets_per_s, r.align_ms,
                static_cast<unsigned long long>(r.align_stories),
                identical ? "yes" : "NO");
    results.push_back(r);
  }

  const double base = results.front().snippets_per_s;
  std::printf("\ningest speedup vs 1 thread:");
  for (const RunResult& r : results) {
    std::printf("  t%zu=%.2fx", r.threads, r.snippets_per_s / base);
  }
  std::printf("\n");

  std::string json = StrFormat(
      "{\"bench\":\"parallel\",\"snippets\":%zu,\"sources\":%d,"
      "\"batch_size\":%zu,\"hardware_threads\":%u,\"results\":[",
      corpus.snippets.size(), corpus_config.num_sources, kBatchSize, hw);
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    json += StrFormat(
        "%s{\"threads\":%zu,\"ingest_ms\":%.2f,"
        "\"ingest_snippets_per_s\":%.1f,\"align_ms\":%.2f,"
        "\"speedup_vs_serial\":%.3f,\"deterministic\":true}",
        i == 0 ? "" : ",", r.threads, r.ingest_ms, r.snippets_per_s,
        r.align_ms, r.snippets_per_s / base);
  }
  json += "]}\n";
  SP_CHECK_OK(WriteStringToFile("BENCH_parallel.json", json));
  std::printf("wrote BENCH_parallel.json\n");
}

}  // namespace
}  // namespace storypivot::bench

int main() {
  storypivot::bench::Run();
  return 0;
}
