// Durability bench (DESIGN.md §10): what write-ahead logging costs on the
// ingest path and what recovery costs after a crash. Three experiments:
//
//   1. Logged-ingest throughput across fsync policies (every-record,
//      every-64, on-rotate) against the plain in-memory engine baseline —
//      the price of the durability guarantee per acknowledged op.
//   2. Recovery latency as a function of WAL length when the whole state
//      must be replayed (no checkpoint).
//   3. Recovery latency for the same stream with a checkpoint near the
//      end — the case periodic checkpointing keeps us in.
//
// Emits BENCH_recovery.json next to the human-readable tables so CI and
// the experiment index can track the numbers.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/snapshot.h"
#include "persist/durable_engine.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"

namespace storypivot::bench {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = "bench_recovery_tmp/" + name;
  if (FileExists(dir)) {
    Result<std::vector<std::string>> names = ListDirectory(dir);
    SP_CHECK_OK(names.status());
    for (const std::string& entry : names.value()) {
      SP_CHECK_OK(RemoveFile(dir + "/" + entry));
    }
  }
  SP_CHECK_OK(CreateDirectories(dir));
  return dir;
}

void RemoveDirRecursive(const std::string& path) {
  if (!FileExists(path)) return;
  Result<std::vector<std::string>> names = ListDirectory(path);
  if (names.ok()) {  // A directory: empty it, then rmdir.
    for (const std::string& entry : names.value()) {
      RemoveDirRecursive(path + "/" + entry);
    }
    IgnoreError(RemoveDirectory(path));
    return;
  }
  IgnoreError(RemoveFile(path));
}

struct IngestResult {
  std::string policy;
  double ingest_ms = 0.0;
  double ops_per_s = 0.0;
  double overhead_vs_plain = 0.0;
  uint64_t wal_bytes = 0;
};

uint64_t DirBytes(const std::string& dir) {
  uint64_t total = 0;
  Result<std::vector<std::string>> names = ListDirectory(dir);
  SP_CHECK_OK(names.status());
  for (const std::string& entry : names.value()) {
    Result<uint64_t> size = FileSize(dir + "/" + entry);
    if (size.ok()) total += size.value();
  }
  return total;
}

/// Feeds the corpus through a DurableEngine under `options`; returns the
/// wall time of the whole logged ingest.
double LoggedIngestMillis(const datagen::Corpus& corpus,
                          const std::string& dir,
                          const persist::DurabilityOptions& options) {
  Result<std::unique_ptr<persist::DurableEngine>> opened =
      persist::DurableEngine::Open(dir, options);
  SP_CHECK_OK(opened.status());
  persist::DurableEngine& durable = *opened.value();
  WallTimer timer;
  SP_CHECK_OK(durable.ImportVocabularies(*corpus.entity_vocabulary,
                                         *corpus.keyword_vocabulary));
  for (const SourceInfo& source : corpus.sources) {
    SP_CHECK_OK(durable.RegisterSource(source.name));
  }
  for (const Snippet& snippet : corpus.snippets) {
    Snippet copy = snippet;
    copy.id = kInvalidSnippetId;
    SP_CHECK_OK(durable.AddSnippet(std::move(copy)));
  }
  const double elapsed = timer.ElapsedMillis();
  SP_CHECK_OK(durable.Close());
  return elapsed;
}

void Run() {
  std::printf("== durability: WAL cost and recovery latency ==\n\n");
  datagen::CorpusConfig corpus_config = Fig7CorpusConfig(6000);
  datagen::Corpus corpus =
      datagen::CorpusGenerator(corpus_config).Generate();
  const size_t total_ops =
      corpus.snippets.size() + corpus.sources.size() + 1;

  // ---- 1. Logged-ingest throughput by fsync policy.
  StoryPivotEngine plain;
  WallTimer plain_timer;
  SP_CHECK_OK(plain.ImportVocabularies(*corpus.entity_vocabulary,
                                       *corpus.keyword_vocabulary));
  for (const SourceInfo& s : corpus.sources) plain.RegisterSource(s.name);
  for (const Snippet& snippet : corpus.snippets) {
    Snippet copy = snippet;
    copy.id = kInvalidSnippetId;
    SP_CHECK_OK(plain.AddSnippet(std::move(copy)));
  }
  const double plain_ms = plain_timer.ElapsedMillis();
  std::printf("plain engine baseline: %zu ops in %.1f ms (%.0f ops/s)\n\n",
              total_ops, plain_ms, 1000.0 * total_ops / plain_ms);

  struct Policy {
    const char* name;
    persist::FsyncPolicy fsync;
  };
  const Policy policies[] = {
      {"every-record", persist::FsyncPolicy::kEveryRecord},
      {"every-64", persist::FsyncPolicy::kEveryN},
      {"on-rotate", persist::FsyncPolicy::kOnRotate},
  };
  std::vector<IngestResult> ingest;
  std::printf("%14s %12s %12s %14s %12s\n", "fsync policy", "ingest ms",
              "ops/s", "vs plain", "wal bytes");
  for (const Policy& policy : policies) {
    std::string dir = FreshDir(std::string("ingest_") + policy.name);
    persist::DurabilityOptions options;
    options.wal.fsync = policy.fsync;
    IngestResult r;
    r.policy = policy.name;
    r.ingest_ms = LoggedIngestMillis(corpus, dir, options);
    r.ops_per_s = 1000.0 * total_ops / r.ingest_ms;
    r.overhead_vs_plain = r.ingest_ms / plain_ms;
    r.wal_bytes = DirBytes(dir);
    std::printf("%14s %12.1f %12.0f %13.2fx %12llu\n", policy.name,
                r.ingest_ms, r.ops_per_s, r.overhead_vs_plain,
                static_cast<unsigned long long>(r.wal_bytes));
    ingest.push_back(r);
  }

  // ---- 2. Full-replay recovery latency vs log length.
  struct RecoveryResult {
    size_t ops = 0;
    bool checkpointed = false;
    double recover_ms = 0.0;
    double replay_ops_per_s = 0.0;
  };
  std::vector<RecoveryResult> recoveries;
  std::printf("\n%10s %14s %12s %14s\n", "log ops", "checkpoint?",
              "recover ms", "replay ops/s");
  for (size_t target : {1000u, 2000u, 4000u}) {
    std::string dir = FreshDir(StrFormat("replay_%zu", target));
    persist::DurabilityOptions options;
    options.wal.fsync = persist::FsyncPolicy::kOnRotate;
    {
      Result<std::unique_ptr<persist::DurableEngine>> opened =
          persist::DurableEngine::Open(dir, options);
      SP_CHECK_OK(opened.status());
      persist::DurableEngine& durable = *opened.value();
      SP_CHECK_OK(durable.ImportVocabularies(*corpus.entity_vocabulary,
                                             *corpus.keyword_vocabulary));
      for (const SourceInfo& s : corpus.sources) {
        SP_CHECK_OK(durable.RegisterSource(s.name));
      }
      for (size_t i = 0; i < target; ++i) {
        Snippet copy = corpus.snippets[i];
        copy.id = kInvalidSnippetId;
        SP_CHECK_OK(durable.AddSnippet(std::move(copy)));
      }
      SP_CHECK_OK(durable.Close());
    }
    RecoveryResult r;
    r.ops = target;
    WallTimer timer;
    Result<std::unique_ptr<persist::DurableEngine>> recovered =
        persist::DurableEngine::Open(dir, options);
    SP_CHECK_OK(recovered.status());
    r.recover_ms = timer.ElapsedMillis();
    r.replay_ops_per_s =
        1000.0 * static_cast<double>(recovered.value()->next_lsn()) /
        r.recover_ms;
    SP_CHECK_OK(recovered.value()->Close());
    std::printf("%10zu %14s %12.1f %14.0f\n", r.ops, "no", r.recover_ms,
                r.replay_ops_per_s);
    recoveries.push_back(r);
  }

  // ---- 3. The same stream with a checkpoint near the end: recovery is
  // snapshot load + short tail replay, independent of history length.
  {
    std::string dir = FreshDir("checkpointed");
    persist::DurabilityOptions options;
    options.wal.fsync = persist::FsyncPolicy::kOnRotate;
    {
      Result<std::unique_ptr<persist::DurableEngine>> opened =
          persist::DurableEngine::Open(dir, options);
      SP_CHECK_OK(opened.status());
      persist::DurableEngine& durable = *opened.value();
      SP_CHECK_OK(durable.ImportVocabularies(*corpus.entity_vocabulary,
                                             *corpus.keyword_vocabulary));
      for (const SourceInfo& s : corpus.sources) {
        SP_CHECK_OK(durable.RegisterSource(s.name));
      }
      for (size_t i = 0; i < 4000; ++i) {
        Snippet copy = corpus.snippets[i];
        copy.id = kInvalidSnippetId;
        SP_CHECK_OK(durable.AddSnippet(std::move(copy)));
        if (i == 3899) SP_CHECK_OK(durable.Checkpoint());
      }
      SP_CHECK_OK(durable.Close());
    }
    RecoveryResult r;
    r.ops = 4000;
    r.checkpointed = true;
    WallTimer timer;
    Result<std::unique_ptr<persist::DurableEngine>> recovered =
        persist::DurableEngine::Open(dir, options);
    SP_CHECK_OK(recovered.status());
    r.recover_ms = timer.ElapsedMillis();
    r.replay_ops_per_s =
        1000.0 *
        static_cast<double>(recovered.value()->ops_since_checkpoint()) /
        r.recover_ms;
    SP_CHECK_OK(recovered.value()->Close());
    std::printf("%10zu %14s %12.1f %14s\n", r.ops, "yes (tail 100)",
                r.recover_ms, "-");
    recoveries.push_back(r);
  }

  std::string json = StrFormat(
      "{\"bench\":\"recovery\",\"total_ops\":%zu,\"plain_ingest_ms\":%.2f,"
      "\"ingest\":[",
      total_ops, plain_ms);
  for (size_t i = 0; i < ingest.size(); ++i) {
    const IngestResult& r = ingest[i];
    json += StrFormat(
        "%s{\"fsync\":\"%s\",\"ingest_ms\":%.2f,\"ops_per_s\":%.1f,"
        "\"overhead_vs_plain\":%.3f,\"wal_bytes\":%llu}",
        i == 0 ? "" : ",", r.policy.c_str(), r.ingest_ms, r.ops_per_s,
        r.overhead_vs_plain, static_cast<unsigned long long>(r.wal_bytes));
  }
  json += "],\"recovery\":[";
  for (size_t i = 0; i < recoveries.size(); ++i) {
    const RecoveryResult& r = recoveries[i];
    json += StrFormat(
        "%s{\"log_ops\":%zu,\"checkpointed\":%s,\"recover_ms\":%.2f,"
        "\"replay_ops_per_s\":%.1f}",
        i == 0 ? "" : ",", r.ops, r.checkpointed ? "true" : "false",
        r.recover_ms, r.replay_ops_per_s);
  }
  json += "]}\n";
  SP_CHECK_OK(WriteStringToFile("BENCH_recovery.json", json));
  std::printf("\nwrote BENCH_recovery.json\n");

  RemoveDirRecursive("bench_recovery_tmp");
}

}  // namespace
}  // namespace storypivot::bench

int main() {
  storypivot::bench::Run();
  return 0;
}
