// Ablation A-sketch (§2.4): candidate-generation strategies for temporal
// story identification — full window scan, entity-inverted-index pruning,
// and MinHash/LSH sketch candidates. Reports similarity comparisons,
// ingest time and end-to-end quality for each.

#include <cstdio>

#include "bench/bench_util.h"

namespace storypivot::bench {
namespace {

void Run() {
  std::printf("== A-sketch: candidate generation for temporal SI ==\n\n");
  struct Variant {
    const char* name;
    bool prune_entities;
    bool sketches;
  };
  const Variant variants[] = {
      {"window scan (exact)", false, false},
      {"entity-index pruning", true, false},
      {"MinHash/LSH sketches", false, true},
  };

  for (int n : {4000, 12000}) {
    std::printf("-- n = %d --\n", n);
    std::vector<eval::ExperimentRow> rows;
    for (const Variant& variant : variants) {
      eval::ExperimentConfig config;
      config.corpus = Fig7CorpusConfig(n);
      config.engine.identifier.prune_with_entities = variant.prune_entities;
      config.engine.identifier.use_sketch_candidates = variant.sketches;
      config.engine.use_sketches = variant.sketches;
      config.run_refinement = false;
      config.label = variant.name;
      rows.push_back(eval::RunExperiment(config));
    }
    std::printf("%s\n", eval::FormatRows(rows).c_str());
    const eval::ExperimentRow& exact = rows[0];
    for (size_t i = 1; i < rows.size(); ++i) {
      std::printf(
          "  %-22s comparisons x%.2f, ingest x%.2f, SA-F1 delta %+.3f\n",
          rows[i].label.c_str(),
          static_cast<double>(rows[i].comparisons) /
              static_cast<double>(exact.comparisons),
          rows[i].ingest_time_ms / exact.ingest_time_ms,
          rows[i].sa_pairwise.f1 - exact.sa_pairwise.f1);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace storypivot::bench

int main() {
  storypivot::bench::Run();
  return 0;
}
