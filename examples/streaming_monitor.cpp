// Casual-reader use case (§3) under live conditions (§2.4): a monitor
// that consumes snippets in publication order (event timestamps out of
// order), periodically re-aligns, and prints a live digest — which
// stories are "hot" right now, which just emerged, and the timeline of a
// story the reader follows.
//
// With `--wal-dir DIR` the stream runs through the durability layer
// (DESIGN.md §10): every ingested snippet is write-ahead logged before it
// is acknowledged, so a crash mid-stream loses at most the unsynced tail.
// Inspect or resume the recorded state with `storypivot_cli recover DIR`.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>

#include "core/engine.h"
#include "core/query.h"
#include "core/trends.h"
#include "datagen/corpus.h"
#include "model/time.h"
#include "persist/durable_engine.h"
#include "viz/ascii.h"

int main(int argc, char** argv) {
  using namespace storypivot;

  std::string wal_dir;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--wal-dir") == 0) wal_dir = argv[i + 1];
  }

  datagen::CorpusConfig corpus_config;
  corpus_config.seed = 123;
  corpus_config.num_sources = 6;
  corpus_config.num_stories = 18;
  corpus_config.target_num_snippets = 3000;
  corpus_config.mean_report_delay_hours = 30;
  datagen::Corpus corpus =
      datagen::CorpusGenerator(corpus_config).Generate();

  std::unique_ptr<persist::DurableEngine> durable;
  std::unique_ptr<StoryPivotEngine> plain;
  if (!wal_dir.empty()) {
    persist::DurabilityOptions options;
    options.checkpoint_every_ops = 1000;
    Result<std::unique_ptr<persist::DurableEngine>> opened =
        persist::DurableEngine::Open(wal_dir, options);
    SP_CHECK_OK(opened.status());
    durable = std::move(opened.value());
    if (durable->next_lsn() != 0) {
      std::fprintf(stderr,
                   "%s already holds a recorded run — inspect it with "
                   "`storypivot_cli recover %s` or pass an empty "
                   "directory\n",
                   wal_dir.c_str(), wal_dir.c_str());
      return 1;
    }
  } else {
    plain = std::make_unique<StoryPivotEngine>();
  }
  StoryPivotEngine& engine = durable ? durable->engine() : *plain;

  // Mutations go through the durability layer when it is on; reads always
  // go straight to the engine.
  auto add_snippet = [&](const Snippet& snippet) -> Status {
    Snippet copy = snippet;
    if (durable) return durable->AddSnippet(std::move(copy)).status();
    return engine.AddSnippet(std::move(copy)).status();
  };
  auto realign = [&] {
    if (durable && !durable->degraded()) {
      SP_CHECK_OK(durable->Align());
    } else {
      // Degraded engines are read-only, so nothing further will be
      // logged and an unlogged align cannot desynchronise replay.
      engine.Align();
    }
  };

  if (durable) {
    SP_CHECK_OK(durable->ImportVocabularies(*corpus.entity_vocabulary,
                                            *corpus.keyword_vocabulary));
    for (const SourceInfo& source : corpus.sources) {
      SP_CHECK_OK(durable->RegisterSource(source.name));
    }
  } else {
    if (!engine
             .ImportVocabularies(*corpus.entity_vocabulary,
                                 *corpus.keyword_vocabulary)
             .ok()) {
      return 1;
    }
    for (const SourceInfo& source : corpus.sources) {
      engine.RegisterSource(source.name);
    }
  }

  StoryQuery query(&engine);
  std::set<StoryId> seen_stories;
  const size_t digest_every = corpus.snippets.size() / 5;

  for (size_t i = 0; i < corpus.snippets.size(); ++i) {
    Snippet copy = corpus.snippets[i];
    copy.id = kInvalidSnippetId;
    Status added = add_snippet(copy);
    if (added.code() == StatusCode::kDegraded) {
      // A permanent WAL failure dropped the durable engine into
      // read-only degraded mode (DESIGN.md §12). Surface the cause, try
      // ONE in-place recovery — Reopen() rebuilds from the
      // log-consistent state on disk — and re-ingest the rejected
      // snippet. If recovery fails too, stop the stream and fall
      // through to the final digest, which only needs reads.
      std::fprintf(
          stderr,
          "monitor: durable engine degraded at snippet %zu (%s); "
          "attempting in-place recovery\n",
          i, std::string(durable->degraded_cause().message()).c_str());
      if (durable->Reopen().ok()) added = add_snippet(copy);
    }
    if (!added.ok()) {
      std::fprintf(stderr,
                   "monitor: ingest stopped after %zu snippets: %s\n", i,
                   added.ToString().c_str());
      break;
    }

    if ((i + 1) % digest_every != 0) continue;

    // ---- Periodic digest.
    Timestamp now = corpus.arrivals[i];
    realign();
    std::printf(
        "================ digest @ %s (%zu snippets ingested) "
        "================\n",
        FormatDateTime(now).c_str(), i + 1);

    // Hot stories: most snippets with event time in the last 14 days.
    struct Hot {
      const IntegratedStory* story;
      int recent;
    };
    std::vector<Hot> hot;
    for (const IntegratedStory& story : engine.alignment().stories) {
      int recent = 0;
      for (SnippetId sid : story.merged.snippets()) {
        const Snippet* snippet = engine.store().Find(sid);
        if (snippet->timestamp >= now - 14 * kSecondsPerDay &&
            snippet->timestamp <= now) {
          ++recent;
        }
      }
      if (recent > 0) hot.push_back({&story, recent});
    }
    std::sort(hot.begin(), hot.end(), [](const Hot& a, const Hot& b) {
      return a.recent > b.recent;
    });

    std::printf("hot stories (last 14 days):\n");
    for (size_t h = 0; h < hot.size() && h < 4; ++h) {
      StoryOverview overview =
          query.Overview(hot[h].story->merged, true, 3);
      std::string entities, keywords;
      for (const auto& [term, count] : overview.top_entities) {
        if (!entities.empty()) entities += ", ";
        entities += term;
      }
      for (const auto& [term, count] : overview.top_keywords) {
        if (!keywords.empty()) keywords += " ";
        keywords += term;
      }
      bool is_new = seen_stories.insert(hot[h].story->id).second &&
                    overview.start_time >= now - 21 * kSecondsPerDay;
      std::printf("  %s [%2d recent, %3zu total, %zu sources] %s — %s\n",
                  is_new ? "NEW" : "   ", hot[h].recent,
                  overview.num_snippets, overview.source_names.size(),
                  entities.c_str(), keywords.c_str());
    }
    std::printf("\n");
  }

  // ---- Follow one story: full cross-source timeline for the biggest.
  realign();
  const IntegratedStory* followed = nullptr;
  for (const IntegratedStory& story : engine.alignment().stories) {
    if (followed == nullptr ||
        story.merged.size() > followed->merged.size()) {
      followed = &story;
    }
  }
  if (followed != nullptr) {
    std::printf("==== Following the biggest story to date ====\n%s\n",
                viz::RenderSnippetsPerStory(engine, *followed).c_str());
    std::printf("%s\n",
                viz::RenderStoryOverview(
                    query.Overview(followed->merged, true))
                    .c_str());
    // Activity sparkline: the story's temporal footprint at a glance.
    ActivitySeries series =
        BuildActivitySeries(engine, followed->merged);
    std::printf("activity: %s\n",
                viz::RenderActivitySparkline(series).c_str());
  }

  // ---- Trend detection (§1): which stories are bursting right now?
  Timestamp now = corpus.arrivals.back();
  std::vector<TrendingStory> trending = DetectTrendingStories(engine, now);
  std::printf("==== Trending at %s ====\n", FormatDate(now).c_str());
  if (trending.empty()) {
    std::printf("  (no bursting stories — the stream has wound down)\n");
  }
  size_t shown = 0;
  for (const TrendingStory& t : trending) {
    if (shown++ >= 5) break;
    for (const IntegratedStory& story : engine.alignment().stories) {
      if (story.id != t.story) continue;
      StoryOverview overview = query.Overview(story.merged, true, 3);
      std::string entities;
      for (const auto& [term, count] : overview.top_entities) {
        if (!entities.empty()) entities += ", ";
        entities += term;
      }
      std::printf("  %s burst x%-6.1f %2d recent  %s\n",
                  t.emerging ? "NEW" : "   ",
                  t.burst_ratio, t.recent_count, entities.c_str());
    }
  }
  std::printf("engine totals: %llu ingested, SI %.1f ms, %llu alignments "
              "(%.1f ms)\n",
              static_cast<unsigned long long>(
                  engine.stats().snippets_ingested),
              engine.stats().identify_time_ms,
              static_cast<unsigned long long>(engine.stats().alignments_run),
              engine.stats().align_time_ms);
  if (durable) {
    if (durable->degraded()) {
      // No checkpoint/close on a degraded engine: its WAL is the
      // log-consistent record, and the unlogged tail above was
      // display-only.
      std::fprintf(stderr,
                   "monitor: finished DEGRADED (%s); on-disk state is "
                   "the acknowledged prefix — inspect it with "
                   "`storypivot_cli recover %s`\n",
                   std::string(
                       durable->degraded_cause().message()).c_str(),
                   wal_dir.c_str());
      return 1;
    }
    const uint64_t ops = durable->next_lsn();
    SP_CHECK_OK(durable->Checkpoint());
    SP_CHECK_OK(durable->Close());
    std::printf("durable: %llu ops checkpointed under %s\n",
                static_cast<unsigned long long>(ops), wal_dir.c_str());
  }
  return 0;
}
