// storypivot_serve — the serving tier demo (DESIGN.md §14).
//
// Stands up the full serving stack (DurableEngine + SearchEngine +
// EpochManager + Server) over a TSV corpus and drives it with concurrent
// closed-loop readers WHILE the writer keeps ingesting: every acked batch
// publishes a new epoch, readers pin whichever epoch was current when
// their query dequeued, and the demo prints throughput, latency and the
// epoch/cache statistics at the end.
//
//   storypivot_serve <in.tsv> <wal-dir> "<query>" [--readers N]
//                    [--seconds S] [--topk K] [--deadline-ms D]
//                    [--threads N] [--queue N] [--batch N]
//
// The WAL directory is durable: rerunning against a non-empty one skips
// ingest and serves the recovered state (recovery + serving in one
// command). Generate a corpus with `storypivot_cli generate`.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "datagen/gdelt_export.h"
#include "serve/serving_engine.h"
#include "util/fs.h"
#include "util/strings.h"
#include "util/timer.h"

namespace {

using namespace storypivot;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  storypivot_serve <in.tsv> <wal-dir> \"<query>\" "
               "[--readers N] [--seconds S]\n"
               "                   [--topk K] [--deadline-ms D] "
               "[--threads N] [--queue N] [--batch N]\n");
  return 2;
}

bool ParseFlag(int argc, char** argv, const char* name, std::string* out) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      *out = argv[i + 1];
      return true;
    }
  }
  return false;
}

int64_t FlagInt(int argc, char** argv, const char* name, int64_t def) {
  std::string value;
  if (!ParseFlag(argc, argv, name, &value)) return def;
  int64_t out = def;
  if (!ParseInt64(value, &out)) {
    std::fprintf(stderr, "bad integer for %s: %s\n", name, value.c_str());
  }
  return out;
}

struct ReaderTally {
  uint64_t ok = 0;
  uint64_t cache_hits = 0;
  uint64_t unavailable = 0;
  uint64_t deadline = 0;
  uint64_t other = 0;
  uint64_t min_epoch = 0;
  uint64_t max_epoch = 0;
  std::vector<double> latencies_ms;
};

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  std::sort(sorted->begin(), sorted->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted->size()));
  if (idx >= sorted->size()) idx = sorted->size() - 1;
  return (*sorted)[idx];
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string tsv_path = argv[1];
  const std::string wal_dir = argv[2];
  const std::string query_text = argv[3];
  int sub_argc = argc - 4;
  char** sub_argv = argv + 4;
  const size_t readers =
      static_cast<size_t>(FlagInt(sub_argc, sub_argv, "--readers", 4));
  const double seconds = static_cast<double>(
      FlagInt(sub_argc, sub_argv, "--seconds", 5));
  const size_t batch =
      static_cast<size_t>(FlagInt(sub_argc, sub_argv, "--batch", 64));

  serve::ServerOptions server_options;
  server_options.num_threads =
      static_cast<size_t>(FlagInt(sub_argc, sub_argv, "--threads", 4));
  server_options.max_queued =
      static_cast<size_t>(FlagInt(sub_argc, sub_argv, "--queue", 64));
  server_options.default_deadline_ms = static_cast<uint64_t>(
      FlagInt(sub_argc, sub_argv, "--deadline-ms", 0));

  Result<std::string> contents = ReadFileToString(tsv_path);
  if (!contents.ok()) {
    std::fprintf(stderr, "%s\n", contents.status().ToString().c_str());
    return 1;
  }
  Result<datagen::ImportedCorpus> imported =
      datagen::ImportTsv(contents.value());
  if (!imported.ok()) {
    std::fprintf(stderr, "%s\n", imported.status().ToString().c_str());
    return 1;
  }
  const datagen::ImportedCorpus& corpus = imported.value();

  persist::DurabilityOptions durability;
  durability.checkpoint_every_ops = 2000;
  Result<std::unique_ptr<serve::ServingEngine>> opened =
      serve::ServingEngine::Open(wal_dir, server_options, durability);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
    return 1;
  }
  serve::ServingEngine& serving = *opened.value();

  // A fresh directory gets the corpus; a recorded one serves as-is.
  std::vector<Snippet> pending;
  if (serving.durable().next_lsn() == 0) {
    Status vocab = serving.durable().ImportVocabularies(
        *corpus.entity_vocabulary, *corpus.keyword_vocabulary);
    if (!vocab.ok()) {
      std::fprintf(stderr, "%s\n", vocab.ToString().c_str());
      return 1;
    }
    for (const SourceInfo& source : corpus.sources) {
      Result<SourceId> registered =
          serving.durable().RegisterSource(source.name);
      if (!registered.ok()) {
        std::fprintf(stderr, "%s\n",
                     registered.status().ToString().c_str());
        return 1;
      }
    }
    // Ingest the first half up front so readers have something to
    // query; the second half streams in batches while they run.
    size_t half = corpus.snippets.size() / 2;
    std::vector<Snippet> warmup;
    warmup.reserve(half);
    for (size_t i = 0; i < corpus.snippets.size(); ++i) {
      Snippet copy = corpus.snippets[i];
      copy.id = kInvalidSnippetId;
      (i < half ? warmup : pending).push_back(std::move(copy));
    }
    if (!warmup.empty()) {
      Result<std::vector<SnippetId>> added =
          serving.durable().AddSnippets(std::move(warmup));
      if (!added.ok()) {
        std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
        return 1;
      }
    }
    Status aligned = serving.durable().Align();
    if (!aligned.ok()) {
      std::fprintf(stderr, "%s\n", aligned.ToString().c_str());
      return 1;
    }
  } else {
    std::printf("%s already holds %llu ops — serving the recovered "
                "state without re-ingesting\n",
                wal_dir.c_str(),
                static_cast<unsigned long long>(
                    serving.durable().next_lsn()));
  }

  serve::QueryRequest request;
  request.query = query_text;
  request.options.k =
      static_cast<size_t>(FlagInt(sub_argc, sub_argv, "--topk", 10));

  // Closed-loop readers: each issues the next query the moment the
  // previous one returns, for `seconds` of wall clock.
  std::atomic<bool> stop{false};
  std::vector<ReaderTally> tallies(readers);
  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      ReaderTally& tally = tallies[r];
      while (!stop.load(std::memory_order_relaxed)) {
        WallTimer timer;
        Result<serve::QueryResponse> response = serving.Query(request);
        if (response.ok()) {
          ++tally.ok;
          tally.latencies_ms.push_back(timer.ElapsedMillis());
          if (response.value().from_cache) ++tally.cache_hits;
          uint64_t epoch = response.value().epoch;
          if (tally.min_epoch == 0 || epoch < tally.min_epoch) {
            tally.min_epoch = epoch;
          }
          tally.max_epoch = std::max(tally.max_epoch, epoch);
        } else if (response.status().code() == StatusCode::kUnavailable) {
          ++tally.unavailable;
        } else if (response.status().code() ==
                   StatusCode::kDeadlineExceeded) {
          ++tally.deadline;
        } else {
          ++tally.other;
        }
      }
    });
  }

  // The single writer: stream the held-back half in batches, each of
  // which publishes a new epoch under the readers.
  WallTimer wall;
  size_t ingested = 0;
  size_t write_batches = 0;
  while (wall.ElapsedSeconds() < seconds) {
    if (ingested < pending.size()) {
      size_t n = std::min(batch, pending.size() - ingested);
      std::vector<Snippet> chunk(pending.begin() + ingested,
                                 pending.begin() + ingested + n);
      Result<std::vector<SnippetId>> added =
          serving.durable().AddSnippets(std::move(chunk));
      if (!added.ok()) {
        std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
        break;
      }
      ingested += n;
      ++write_batches;
    } else {
      std::this_thread::yield();
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : threads) thread.join();
  double elapsed = wall.ElapsedSeconds();

  ReaderTally total;
  for (ReaderTally& tally : tallies) {
    total.ok += tally.ok;
    total.cache_hits += tally.cache_hits;
    total.unavailable += tally.unavailable;
    total.deadline += tally.deadline;
    total.other += tally.other;
    if (tally.min_epoch != 0 &&
        (total.min_epoch == 0 || tally.min_epoch < total.min_epoch)) {
      total.min_epoch = tally.min_epoch;
    }
    total.max_epoch = std::max(total.max_epoch, tally.max_epoch);
    total.latencies_ms.insert(total.latencies_ms.end(),
                              tally.latencies_ms.begin(),
                              tally.latencies_ms.end());
  }

  serve::EpochManager::Stats epochs = serving.epochs().GetStats();
  serve::Server::Stats server = serving.server().GetStats();
  std::printf("served %llu queries in %.1f s (%.0f QPS) across %zu "
              "readers; %llu from cache\n",
              static_cast<unsigned long long>(total.ok), elapsed,
              static_cast<double>(total.ok) / elapsed, readers,
              static_cast<unsigned long long>(total.cache_hits));
  std::printf("latency: p50 %.2f ms, p99 %.2f ms\n",
              Percentile(&total.latencies_ms, 0.50),
              Percentile(&total.latencies_ms, 0.99));
  std::printf("writer: %zu batches (%zu snippets) ingested "
              "concurrently\n",
              write_batches, ingested);
  std::printf("epochs: served %llu..%llu; published %llu, reclaimed "
              "%llu, retired-live %zu\n",
              static_cast<unsigned long long>(total.min_epoch),
              static_cast<unsigned long long>(total.max_epoch),
              static_cast<unsigned long long>(epochs.published),
              static_cast<unsigned long long>(epochs.reclaimed),
              epochs.retired_live);
  std::printf("capture: %llu captures, last %.3f ms, mean %.3f ms; last "
              "publish copied %llu B, shared %llu B\n",
              static_cast<unsigned long long>(epochs.captures),
              epochs.last_capture_ms,
              epochs.captures == 0
                  ? 0.0
                  : epochs.total_capture_ms /
                        static_cast<double>(epochs.captures),
              static_cast<unsigned long long>(epochs.last_bytes_copied),
              static_cast<unsigned long long>(epochs.last_bytes_shared));
  std::printf("admission: %llu admitted, %llu shed (queue full), %llu "
              "deadline-expired; cache %llu/%llu hits, evicted %llu "
              "capacity / %llu epoch\n",
              static_cast<unsigned long long>(server.admitted),
              static_cast<unsigned long long>(server.rejected_queue_full),
              static_cast<unsigned long long>(server.deadline_exceeded),
              static_cast<unsigned long long>(server.cache.hits),
              static_cast<unsigned long long>(server.cache.hits +
                                              server.cache.misses),
              static_cast<unsigned long long>(server.cache.evicted_by_capacity),
              static_cast<unsigned long long>(server.cache.evicted_by_epoch));

  // Show the final-epoch answer so the demo ends with actual results.
  Result<serve::QueryResponse> last = serving.Query(request);
  if (last.ok()) {
    std::printf("top stories at epoch %llu:\n",
                static_cast<unsigned long long>(last.value().epoch));
    int rank = 0;
    for (const search::StoryHit& hit : last.value().hits) {
      std::printf("  #%d source=%llu story=%lld score=%.4f\n", ++rank,
                  static_cast<unsigned long long>(hit.source),
                  static_cast<long long>(hit.story), hit.score);
    }
  }
  return total.other == 0 ? 0 : 1;
}
