// Expert-scientist use case (§3): contrast how differently biased sources
// cover the same stories, and use story alignment to assemble the
// complete, unbiased view. Generates a world where sources have strong
// per-domain coverage bias, then examines (a) per-source perspectives,
// (b) the integrated stories, and (c) which snippets align vs enrich.

#include <algorithm>
#include <cstdio>
#include <map>

#include "core/engine.h"
#include "core/query.h"
#include "datagen/corpus.h"
#include "datagen/word_lists.h"
#include "eval/experiment.h"
#include "viz/ascii.h"

int main() {
  using namespace storypivot;

  // Strongly biased sources: coverage multipliers vary widely per domain.
  datagen::CorpusConfig corpus_config;
  corpus_config.seed = 99;
  corpus_config.num_sources = 8;
  corpus_config.num_stories = 24;
  corpus_config.target_num_snippets = 4000;
  corpus_config.coverage_bias = 0.9;
  datagen::Corpus corpus =
      datagen::CorpusGenerator(corpus_config).Generate();

  StoryPivotEngine engine;
  Status imported = engine.ImportVocabularies(*corpus.entity_vocabulary,
                                              *corpus.keyword_vocabulary);
  if (!imported.ok()) {
    std::printf("%s\n", imported.ToString().c_str());
    return 1;
  }
  for (const SourceInfo& source : corpus.sources) {
    engine.RegisterSource(source.name);
  }
  for (const Snippet& snippet : corpus.snippets) {
    Snippet copy = snippet;
    copy.id = kInvalidSnippetId;
    SP_CHECK_OK(engine.AddSnippet(std::move(copy)));
  }
  const AlignmentResult& alignment = engine.Align();

  // --- (a) Source perspectives: how much of each big story does each
  // source actually cover? (source bias made visible, §2.3)
  std::printf("==== Source coverage of the five biggest stories ====\n\n");
  std::vector<const IntegratedStory*> biggest;
  for (const IntegratedStory& story : alignment.stories) {
    biggest.push_back(&story);
  }
  std::sort(biggest.begin(), biggest.end(),
            [](const IntegratedStory* a, const IntegratedStory* b) {
              return a->merged.size() > b->merged.size();
            });
  biggest.resize(std::min<size_t>(biggest.size(), 5));

  std::printf("%-24s", "story (top entities)");
  for (const SourceInfo& source : engine.sources()) {
    std::printf(" %9.9s", source.name.c_str());
  }
  std::printf("\n");
  StoryQuery query(&engine);
  for (const IntegratedStory* story : biggest) {
    std::map<SourceId, int> per_source;
    for (SnippetId sid : story->merged.snippets()) {
      ++per_source[engine.store().Find(sid)->source];
    }
    StoryOverview overview = query.Overview(story->merged, true, 2);
    std::string label;
    for (const auto& [term, count] : overview.top_entities) {
      if (!label.empty()) label += ",";
      label += term;
    }
    if (label.size() > 23) label.resize(23);
    std::printf("%-24s", label.c_str());
    for (const SourceInfo& source : engine.sources()) {
      std::printf(" %9d", per_source.count(source.id)
                              ? per_source[source.id]
                              : 0);
    }
    std::printf("\n");
  }
  std::printf(
      "\nUneven rows are the source bias: a single-source reader would see "
      "a\nskewed slice of each story. Alignment assembles the full row.\n\n");

  // --- (b) Aligning vs enriching content per source (§2.3).
  std::printf("==== Aligning vs enriching snippets per source ====\n\n");
  std::map<SourceId, std::pair<int, int>> roles;  // {aligning, enriching}.
  for (const auto& [sid, role] : alignment.roles) {
    const Snippet* snippet = engine.store().Find(sid);
    if (role == SnippetRole::kAligning) {
      ++roles[snippet->source].first;
    } else {
      ++roles[snippet->source].second;
    }
  }
  std::printf("%-22s %10s %10s %10s\n", "source", "aligning", "enriching",
              "% unique");
  for (const SourceInfo& source : engine.sources()) {
    auto [aligning, enriching] = roles[source.id];
    int total = aligning + enriching;
    std::printf("%-22s %10d %10d %9.1f%%\n", source.name.c_str(), aligning,
                enriching,
                total == 0 ? 0.0 : 100.0 * enriching / total);
  }
  std::printf(
      "\nEnriching snippets are reporting that exists in only one source — "
      "the\n\"special reports, background information etc.\" of §2.3.\n\n");

  // --- (c) The integrated view of the biggest story.
  std::printf("==== Integrated view of the biggest story ====\n%s\n",
              viz::RenderSnippetsPerStory(engine, *biggest[0]).c_str());

  eval::QualityScores scores = eval::ScoreEngine(engine);
  std::printf("alignment quality vs ground truth: F1=%.3f NMI=%.3f\n",
              scores.sa_pairwise.f1, scores.sa_nmi);
  return 0;
}
