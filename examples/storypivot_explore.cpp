// storypivot_explore — an interactive (stdin-driven) version of the
// demonstration's exploration interface (§4.2): load or generate a
// corpus, then browse stories per source, snippets per story, entity
// contexts, and add/remove documents live.
//
// Run it on a generated corpus:
//   ./build/examples/storypivot_cli generate /tmp/news.tsv
//   ./build/examples/storypivot_explore /tmp/news.tsv
// or with no argument to explore the embedded MH17 corpus.
//
// Commands (also printed by `help`):
//   sources                  list registered sources
//   stories [<source-id>]    story table (integrated, or one source)
//   story <id>               overview card + snippets of a story
//   entity <name>            knowledge-base context card for an entity
//   keyword <stem>           stories containing a stemmed keyword
//   search <free text>       BM25-ranked stories for a free-text query
//   diagnose                 fragmentation/contamination report
//   remove <url>             remove a document and re-align
//   stats                    engine counters
//   quit

#include <cstdio>
#include <string>

#include "core/engine.h"
#include "core/query.h"
#include "datagen/gdelt_export.h"
#include "datagen/mh17.h"
#include "eval/diagnostics.h"
#include "search/search_engine.h"
#include "text/knowledge_base.h"
#include "util/csv.h"
#include "util/strings.h"
#include "viz/ascii.h"

namespace {

using namespace storypivot;

void PrintHelp() {
  std::printf(
      "commands: sources | stories [src] | story <id> | entity <name> |\n"
      "          keyword <stem> | search <text> | diagnose | remove <url> |"
      " stats | help | quit\n");
}

void ShowStory(StoryPivotEngine& engine, StoryQuery& query, StoryId id) {
  // Search per-source stories first, then integrated ones.
  // Id lookup across a handful of partitions, not a story scan.
  for (const StorySet* partition : engine.partitions()) {  // splint: allow(full-scan)
    if (const Story* story = partition->FindStory(id)) {
      std::printf("%s", viz::RenderStoryOverview(
                            query.Overview(*story, false))
                            .c_str());
      for (const SnippetView& view : query.Snippets(*story)) {
        std::printf("  %s  %-18s %s\n",
                    FormatDateTime(view.timestamp).c_str(),
                    view.source_name.c_str(), view.description.c_str());
      }
      return;
    }
  }
  if (engine.has_alignment()) {
    for (const IntegratedStory& integrated : engine.alignment().stories) {
      if (integrated.id != id) continue;
      std::printf("%s", viz::RenderSnippetsPerStory(engine, integrated)
                            .c_str());
      std::printf("%s", viz::RenderStoryOverview(
                            query.Overview(integrated.merged, true))
                            .c_str());
      return;
    }
  }
  std::printf("no story with id %llu\n",
              static_cast<unsigned long long>(id));
}

}  // namespace

int main(int argc, char** argv) {
  StoryPivotEngine* engine = nullptr;
  std::unique_ptr<StoryPivotEngine> owned;

  if (argc > 1) {
    // TSV corpus path.
    Result<std::string> contents = ReadFileToString(argv[1]);
    if (!contents.ok()) {
      std::fprintf(stderr, "%s\n", contents.status().ToString().c_str());
      return 1;
    }
    Result<datagen::ImportedCorpus> imported =
        datagen::ImportTsv(contents.value());
    if (!imported.ok()) {
      std::fprintf(stderr, "%s\n", imported.status().ToString().c_str());
      return 1;
    }
    owned = std::make_unique<StoryPivotEngine>();
    SP_CHECK_OK(owned->ImportVocabularies(*imported.value().entity_vocabulary,
                              *imported.value().keyword_vocabulary));
    for (const SourceInfo& s : imported.value().sources) {
      owned->RegisterSource(s.name);
    }
    for (const Snippet& snippet : imported.value().snippets) {
      Snippet copy = snippet;
      copy.id = kInvalidSnippetId;
      SP_CHECK_OK(owned->AddSnippet(std::move(copy)));
    }
  } else {
    // Embedded MH17 corpus through the raw-text pipeline.
    datagen::Mh17Corpus corpus = datagen::MakeMh17Corpus();
    owned = std::make_unique<StoryPivotEngine>(NewsProseEngineConfig());
    for (const SourceInfo& s : corpus.sources) owned->RegisterSource(s.name);
    datagen::PopulateMh17Gazetteer(corpus, owned->gazetteer());
    for (const Document& doc : corpus.documents) {
      SP_CHECK_OK(owned->AddDocument(doc));
    }
  }
  engine = owned.get();
  engine->Align();
  search::SearchEngine searcher(engine);

  text::KnowledgeBase kb = text::KnowledgeBase::WithEmbeddedWorldFacts();
  StoryQuery query(engine);
  query.set_knowledge_base(&kb);

  std::printf("StoryPivot explorer — %zu snippets, %zu sources, %zu "
              "integrated stories. Type 'help'.\n",
              engine->store().size(), engine->sources().size(),
              engine->alignment().stories.size());

  char line[512];
  std::printf("> ");
  std::fflush(stdout);
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    std::string input(Trim(line));
    std::vector<std::string_view> args = Split(input, ' ');
    std::string command = args.empty() ? "" : std::string(args[0]);

    if (command == "quit" || command == "exit") break;
    if (command == "help" || command.empty()) {
      PrintHelp();
    } else if (command == "sources") {
      for (const SourceInfo& source : engine->sources()) {
        const StorySet* partition = engine->partition(source.id);
        std::printf("  %2u  %-24s %zu snippets, %zu stories\n", source.id,
                    source.name.c_str(), partition->num_snippets(),
                    partition->stories().size());
      }
    } else if (command == "stories") {
      if (args.size() > 1) {
        int64_t source = 0;
        if (ParseInt64(args[1], &source)) {
          std::printf("%s", viz::RenderStoriesPerSource(
                                *engine, static_cast<SourceId>(source))
                                .c_str());
        }
      } else {
        std::vector<StoryOverview> integrated = query.IntegratedStories();
        if (integrated.size() > 20) integrated.resize(20);
        std::printf("%s", viz::RenderStoryTable(integrated).c_str());
      }
    } else if (command == "story" && args.size() > 1) {
      int64_t id = 0;
      if (ParseInt64(args[1], &id)) {
        ShowStory(*engine, query, static_cast<StoryId>(id));
      }
    } else if (command == "entity" && args.size() > 1) {
      std::string name(input.substr(command.size() + 1));
      std::printf("%s", viz::RenderEntityContext(query.Context(name))
                            .c_str());
    } else if (command == "keyword" && args.size() > 1) {
      for (const StoryOverview& story :
           query.FindByKeyword(args[1])) {
        std::printf("  c%-5llu %s..%s %zu snippets\n",
                    static_cast<unsigned long long>(story.id),
                    FormatDate(story.start_time).c_str(),
                    FormatDate(story.end_time).c_str(),
                    story.num_snippets);
      }
    } else if (command == "search" && args.size() > 1) {
      std::string text(input.substr(command.size() + 1));
      search::ParsedQuery parsed = searcher.Parse(text);
      for (const std::string& word : parsed.unmatched) {
        std::printf("  ignored: %s\n", word.c_str());
      }
      std::vector<search::StoryHit> hits = searcher.Search(parsed);
      if (hits.empty()) std::printf("  no matching stories\n");
      for (const search::StoryHit& hit : hits) {
        const Story* story =
            engine->partition(hit.source)->FindStory(hit.story);
        std::printf("  c%-5llu score=%.3f %-18s %s..%s %zu snippets\n",
                    static_cast<unsigned long long>(hit.story), hit.score,
                    engine->SourceName(hit.source).c_str(),
                    FormatDate(story->start_time()).c_str(),
                    FormatDate(story->end_time()).c_str(), story->size());
      }
    } else if (command == "diagnose") {
      std::printf("%s", eval::DiagnoseAlignment(*engine).ToString().c_str());
    } else if (command == "remove" && args.size() > 1) {
      Status removed = engine->RemoveDocument(std::string(args[1]));
      std::printf("%s\n", removed.ToString().c_str());
      engine->Align();
    } else if (command == "stats") {
      const EngineStats& stats = engine->stats();
      std::printf("  ingested %llu, removed %llu, SI %.1f ms, "
                  "%llu aligns (%.1f ms), %llu refines\n",
                  static_cast<unsigned long long>(stats.snippets_ingested),
                  static_cast<unsigned long long>(stats.snippets_removed),
                  stats.identify_time_ms,
                  static_cast<unsigned long long>(stats.alignments_run),
                  stats.align_time_ms,
                  static_cast<unsigned long long>(stats.refinements_run));
    } else {
      PrintHelp();
    }
    std::printf("> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
