// The paper's running example as an interactive walk-through: the July
// 2014 downing of flight MH17 over Ukraine, reported by the New York
// Times and the Wall Street Journal, next to the side stories visible in
// the demo screenshots (a UN war-crimes inquiry, a Google/Yelp antitrust
// complaint, a doctors-shortage report).
//
// Mirrors the demonstration's modules (Figs. 3-6):
//   1. document selection table,
//   2. story overview after identification + alignment,
//   3. "Stories per Source",
//   4. "Snippets per Story",
//   5. dynamic document removal and its effect on the stories.

#include <cstdio>

#include "core/engine.h"
#include "core/query.h"
#include "datagen/mh17.h"
#include "text/knowledge_base.h"
#include "util/logging.h"
#include "viz/ascii.h"

int main() {
  using namespace storypivot;

  datagen::Mh17Corpus corpus = datagen::MakeMh17Corpus();

  // Raw news prose needs the prose-tuned thresholds (see DESIGN.md §4).
  StoryPivotEngine engine(NewsProseEngineConfig());
  for (const SourceInfo& source : corpus.sources) {
    engine.RegisterSource(source.name);
  }
  datagen::PopulateMh17Gazetteer(corpus, engine.gazetteer());

  // --- Module 1: document selection (Fig. 3).
  std::printf("==== Document selection ====\n%s\n",
              viz::RenderDocumentTable(corpus.documents, engine).c_str());

  for (const Document& doc : corpus.documents) {
    Result<std::vector<SnippetId>> added = engine.AddDocument(doc);
    if (!added.ok()) {
      std::printf("ingest failed: %s\n", added.status().ToString().c_str());
      return 1;
    }
  }
  engine.Align();
  engine.Refine();

  // --- Module 2: story overview (Fig. 4).
  StoryQuery query(&engine);
  std::printf("==== Story overview (aligned across sources) ====\n%s\n",
              viz::RenderStoryTable(query.IntegratedStories()).c_str());

  // --- Module 3: stories per source (Fig. 5).
  for (const SourceInfo& source : engine.sources()) {
    std::printf("%s\n",
                viz::RenderStoriesPerSource(engine, source.id).c_str());
  }

  // --- Module 4: snippets per story (Fig. 6) for the crash story.
  std::vector<SnippetId> crash =
      engine.store().FindByDocument("online.wsj.com/doc3.html");
  const AlignmentResult& alignment = engine.alignment();
  size_t crash_cluster = alignment.integrated_of.at(crash[0]);
  std::printf("==== Snippets per story: the MH17 downing ====\n%s\n",
              viz::RenderSnippetsPerStory(
                  engine, alignment.stories[crash_cluster])
                  .c_str());
  std::printf("Story information card:\n%s\n",
              viz::RenderStoryOverview(
                  query.Overview(alignment.stories[crash_cluster].merged,
                                 /*integrated=*/true))
                  .c_str());

  // --- Entity queries with knowledge-base context ("enquiries about
  // specified real-world events or entities", §4.2; DBpedia hook, §3).
  text::KnowledgeBase kb = text::KnowledgeBase::WithEmbeddedWorldFacts();
  query.set_knowledge_base(&kb);
  for (const char* entity : {"Malaysia Airlines", "Google", "Israel"}) {
    std::printf("%s\n",
                viz::RenderEntityContext(query.Context(entity)).c_str());
  }

  // --- Module 5: dynamic removal (the demo lets users remove documents
  // and watch stories change).
  std::printf("\n==== Removing the Dutch-report documents ====\n");
  for (const char* url :
       {"nytimes.com/doc7.html", "online.wsj.com/doc8.html"}) {
    SP_CHECK_OK(engine.RemoveDocument(url));
  }
  engine.Align();
  std::printf("stories after removal:\n%s\n",
              viz::RenderStoryTable(query.IntegratedStories()).c_str());
  std::printf(
      "The September report snippets are gone; the crash story now ends "
      "earlier,\nexactly as the interactive demo illustrates with missing "
      "information.\n");
  return 0;
}
