// Quickstart: generate a small multi-source news corpus, run StoryPivot's
// two-phase story detection (identification within each source, alignment
// across sources), and explore the result.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "core/query.h"
#include "datagen/corpus.h"
#include "eval/experiment.h"
#include "model/time.h"
#include "viz/ascii.h"

int main() {
  using namespace storypivot;

  // --- 1. Generate a synthetic corpus with ground truth: 6 sources
  // reporting ~1200 snippets about 15 evolving stories.
  datagen::CorpusConfig corpus_config;
  corpus_config.seed = 1;
  corpus_config.num_sources = 6;
  corpus_config.num_stories = 15;
  corpus_config.target_num_snippets = 1200;
  datagen::Corpus corpus =
      datagen::CorpusGenerator(corpus_config).Generate();
  std::printf("corpus: %zu snippets, %zu sources, %zu true stories\n",
              corpus.snippets.size(), corpus.sources.size(),
              corpus.num_truth_stories());

  // --- 2. Configure the engine: temporal story identification with a
  // 7-day sliding window (Fig. 2b in the paper).
  EngineConfig config;
  config.mode = IdentificationMode::kTemporal;
  config.identifier.window = 7 * kSecondsPerDay;
  StoryPivotEngine engine(config);
  // Share the corpus vocabularies so pre-annotated TermIds stay valid.
  Status imported = engine.ImportVocabularies(*corpus.entity_vocabulary,
                                              *corpus.keyword_vocabulary);
  if (!imported.ok()) {
    std::printf("vocabulary import failed: %s\n",
                imported.ToString().c_str());
    return 1;
  }
  for (const SourceInfo& source : corpus.sources) {
    engine.RegisterSource(source.name);
  }

  // --- 3. Ingest snippets in publication order (the streaming order —
  // note that event timestamps arrive out of order).
  for (const Snippet& snippet : corpus.snippets) {
    Snippet copy = snippet;
    copy.id = kInvalidSnippetId;
    Result<SnippetId> added = engine.AddSnippet(std::move(copy));
    if (!added.ok()) {
      std::printf("ingest failed: %s\n", added.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("identified %zu per-source stories (%.1f ms)\n",
              engine.TotalStories(), engine.stats().identify_time_ms);

  // --- 4. Align stories across sources and refine mis-assignments.
  const AlignmentResult& alignment = engine.Align();
  std::printf("aligned into %zu integrated stories (%.1f ms)\n",
              alignment.stories.size(), engine.stats().align_time_ms);
  RefinementStats refinement = engine.Refine();
  std::printf("refinement moved %d snippets, split %d stories\n",
              refinement.snippets_moved, refinement.stories_split);

  // --- 5. Score against ground truth.
  eval::QualityScores scores = eval::ScoreEngine(engine);
  std::printf(
      "quality: SI pairwise F1 = %.3f, SA pairwise F1 = %.3f, NMI = %.3f\n",
      scores.si_pairwise.f1, scores.sa_pairwise.f1, scores.sa_nmi);

  // --- 6. Explore: biggest integrated stories and one source's stories.
  StoryQuery query(&engine);
  std::printf("\n== Story overview (top integrated stories) ==\n%s\n",
              viz::RenderStoryTable(query.IntegratedStories()).c_str());
  std::printf("%s\n",
              viz::RenderStoriesPerSource(engine, /*source=*/0).c_str());
  if (!engine.alignment().stories.empty()) {
    // Show the largest integrated story's cross-source snippet timeline.
    const IntegratedStory* biggest = &engine.alignment().stories[0];
    for (const IntegratedStory& s : engine.alignment().stories) {
      if (s.merged.size() > biggest->merged.size()) biggest = &s;
    }
    std::printf("%s\n",
                viz::RenderSnippetsPerStory(engine, *biggest).c_str());
  }
  return 0;
}
