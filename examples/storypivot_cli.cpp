// storypivot_cli — command-line front end over the StoryPivot library.
//
// Subcommands:
//   generate <out.tsv> [--snippets N] [--sources N] [--stories N] [--seed S]
//       Generate a synthetic multi-source corpus (GDELT-style TSV).
//   detect <in.tsv> [--mode temporal|complete] [--window-days W]
//          [--refine] [--diagnose] [--snapshot out.sp] [--json out.json]
//          [--wal-dir DIR] [--shards N] [--strict]
//       Run story identification + alignment over a TSV corpus; print the
//       integrated story table and quality (when truth labels exist).
//       Malformed input rows are QUARANTINED by default — skipped,
//       counted and reported with line numbers; --strict fails the run
//       on the first bad row instead. With --wal-dir, every mutation is
//       write-ahead logged to DIR and the final state checkpointed, so
//       the run is crash-recoverable. --shards N (requires --wal-dir)
//       runs the sharded engine instead: N shards under DIR, each with
//       its own WAL, producing byte-identical stories to the unsharded
//       run (DESIGN.md §16). Sharded runs also print the per-shard
//       health dump (quarantine/heal state, catch-up journal backlog,
//       WAL retry counters — DESIGN.md §17).
//   recover <wal-dir> [--checkpoint] [--shards N]
//       Recover the engine state from a durability directory (newest
//       checkpoint + WAL tail) and print its stories. A sharded directory
//       (one holding a shard manifest) recovers all shards in parallel;
//       --shards N additionally cross-checks the manifest's count.
//       --checkpoint also compacts the directory afterwards. A missing
//       or unreadable directory exits non-zero with a one-line
//       diagnostic that classifies the failure (transient vs.
//       corruption).
//   load <snapshot.sp>
//       Load a previously saved engine snapshot and print its stories.
//   query <in.tsv> <entity>
//       Detect stories, then show the context card for an entity.
//   search <in.tsv> "<query>" [--topk N] [--from T] [--to T]
//          [--mode and|or] [--scan]
//       Detect stories, then rank them against a free-text query with
//       BM25 over the inverted index (--scan forces the index-free
//       reference path; --from/--to bound snippet timestamps
//       inclusively, as YYYY-MM-DD or epoch seconds).
//
// Examples:
//   storypivot_cli generate /tmp/news.tsv --snippets 5000
//   storypivot_cli detect /tmp/news.tsv --refine --snapshot /tmp/run.sp
//   storypivot_cli detect /tmp/news.tsv --wal-dir /tmp/news.wal
//   storypivot_cli recover /tmp/news.wal
//   storypivot_cli load /tmp/run.sp
//   storypivot_cli query /tmp/news.tsv Ukraine
//   storypivot_cli search /tmp/news.tsv "MH17 crash" --topk 5

#include <cstdio>
#include <cstring>
#include <limits>
#include <string>

#include "core/engine.h"
#include "core/query.h"
#include "core/snapshot.h"
#include "datagen/corpus.h"
#include "datagen/gdelt_export.h"
#include "eval/experiment.h"
#include "persist/durable_engine.h"
#include "search/search_engine.h"
#include "shard/manifest.h"
#include "shard/sharded_engine.h"
#include "text/knowledge_base.h"
#include "util/csv.h"
#include "util/retry.h"
#include "util/strings.h"
#include "eval/diagnostics.h"
#include "viz/ascii.h"
#include "viz/json_export.h"

namespace {

using namespace storypivot;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  storypivot_cli generate <out.tsv> [--snippets N] "
               "[--sources N] [--stories N] [--seed S]\n"
               "  storypivot_cli detect <in.tsv> [--mode temporal|complete]"
               " [--window-days W] [--refine] [--diagnose]\n"
               "                 [--snapshot out.sp] [--json out.json]"
               " [--wal-dir DIR] [--shards N] [--strict]\n"
               "  storypivot_cli recover <wal-dir> [--checkpoint]"
               " [--shards N]\n"
               "  storypivot_cli load <snapshot.sp>\n"
               "  storypivot_cli query <in.tsv> <entity>\n"
               "  storypivot_cli search <in.tsv> \"<query>\" [--topk N]"
               " [--from T] [--to T] [--mode and|or] [--scan]\n");
  return 2;
}

bool ParseFlag(int argc, char** argv, const char* name, std::string* out) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      *out = argv[i + 1];
      return true;
    }
  }
  return false;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

int64_t FlagInt(int argc, char** argv, const char* name, int64_t def) {
  std::string value;
  if (!ParseFlag(argc, argv, name, &value)) return def;
  int64_t out = def;
  if (!ParseInt64(value, &out)) {
    std::fprintf(stderr, "bad integer for %s: %s\n", name, value.c_str());
  }
  return out;
}

// Time bounds for `search --from/--to`: either a raw Timestamp (epoch
// seconds) or a YYYY-MM-DD date.
Timestamp FlagTime(int argc, char** argv, const char* name, Timestamp def) {
  std::string value;
  if (!ParseFlag(argc, argv, name, &value)) return def;
  int year = 0, month = 0, day = 0;
  if (std::sscanf(value.c_str(), "%d-%d-%d", &year, &month, &day) == 3) {
    return MakeTimestamp(year, month, day);
  }
  int64_t out = 0;
  if (ParseInt64(value, &out)) return static_cast<Timestamp>(out);
  std::fprintf(stderr, "bad time for %s: %s (want YYYY-MM-DD or epoch)\n",
               name, value.c_str());
  return def;
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 1) return Usage();
  std::string out_path = argv[0];
  datagen::CorpusConfig config;
  config.target_num_snippets =
      static_cast<int>(FlagInt(argc, argv, "--snippets", 5000));
  config.num_sources =
      static_cast<int>(FlagInt(argc, argv, "--sources", 10));
  config.num_stories =
      static_cast<int>(FlagInt(argc, argv, "--stories", 40));
  config.seed = static_cast<uint64_t>(FlagInt(argc, argv, "--seed", 42));
  datagen::Corpus corpus = datagen::CorpusGenerator(config).Generate();
  Status status = datagen::ExportTsvToFile(corpus, out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu snippets from %zu sources (%zu true stories) to "
              "%s\n",
              corpus.snippets.size(), corpus.sources.size(),
              corpus.num_truth_stories(), out_path.c_str());
  return 0;
}

/// Loads the TSV corpus at `path`. Permissive by default: malformed rows
/// are quarantined and summarised on stderr (line numbers + reasons, the
/// first few in full), keeping partial feeds ingestable; `strict` fails
/// on the first bad row instead.
Result<datagen::ImportedCorpus> LoadCorpus(const std::string& path,
                                           bool strict) {
  Result<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  if (strict) return datagen::ImportTsv(contents.value());

  datagen::ImportReport report;
  Result<datagen::ImportedCorpus> imported =
      datagen::ImportTsvPermissive(contents.value(), &report);
  if (!imported.ok()) return imported.status();
  if (!report.skipped.empty()) {
    constexpr size_t kShown = 8;
    for (size_t i = 0; i < report.skipped.size() && i < kShown; ++i) {
      std::fprintf(stderr, "%s: line %zu: %s (row quarantined)\n",
                   path.c_str(), report.skipped[i].line,
                   report.skipped[i].reason.c_str());
    }
    if (report.skipped.size() > kShown) {
      std::fprintf(stderr, "%s: ... %zu more quarantined rows\n",
                   path.c_str(), report.skipped.size() - kShown);
    }
    std::fprintf(stderr,
                 "%s: quarantined %zu of %zu rows, imported %zu "
                 "(use --strict to fail on the first bad row)\n",
                 path.c_str(), report.skipped.size(), report.rows_seen,
                 report.rows_imported);
  }
  return imported;
}

/// One-line diagnostic for a failed durability-directory open, with a
/// non-zero exit for scripting. Classifies the failure: TRANSIENT (a
/// retry may succeed), CORRUPTION (bytes on disk changed after they
/// were acknowledged — the message carries segment and byte offset), or
/// plain permanent error (e.g. the directory does not exist).
int WalOpenFailed(const char* verb, const std::string& dir,
                  const Status& status) {
  const char* kind = "error";
  if (IsTransient(status)) {
    kind = "transient";
  } else if (std::string(status.message()).find("corruption") !=
             std::string::npos) {
    kind = "corruption";
  }
  std::fprintf(stderr, "%s: %s: [%s] %s\n", verb, dir.c_str(), kind,
               std::string(status.message()).c_str());
  return 1;
}

Result<std::unique_ptr<StoryPivotEngine>> DetectFromCorpus(
    const datagen::ImportedCorpus& corpus, const EngineConfig& config) {
  auto engine = std::make_unique<StoryPivotEngine>(config);
  Status vocab = engine->ImportVocabularies(*corpus.entity_vocabulary,
                                            *corpus.keyword_vocabulary);
  if (!vocab.ok()) return vocab;
  for (const SourceInfo& source : corpus.sources) {
    engine->RegisterSource(source.name);
  }
  for (const Snippet& snippet : corpus.snippets) {
    Snippet copy = snippet;
    copy.id = kInvalidSnippetId;
    Result<SnippetId> added = engine->AddSnippet(std::move(copy));
    if (!added.ok()) return added.status();
  }
  return engine;
}

/// Ingests the TSV corpus through a DurableEngine so every mutation lands
/// in the write-ahead log under `wal_dir` before it is acknowledged.
Result<std::unique_ptr<persist::DurableEngine>> DetectDurable(
    const datagen::ImportedCorpus& corpus, const EngineConfig& config,
    const std::string& wal_dir) {
  persist::DurabilityOptions options;
  options.checkpoint_every_ops = 2000;
  Result<std::unique_ptr<persist::DurableEngine>> opened =
      persist::DurableEngine::Open(wal_dir, options, config);
  if (!opened.ok()) return opened.status();
  std::unique_ptr<persist::DurableEngine> durable =
      std::move(opened.value());
  if (durable->next_lsn() != 0) {
    return Status::FailedPrecondition(StrFormat(
        "%s already holds a recorded run (%llu ops) — inspect it with "
        "`storypivot_cli recover %s` or point --wal-dir at an empty "
        "directory",
        wal_dir.c_str(),
        static_cast<unsigned long long>(durable->next_lsn()),
        wal_dir.c_str()));
  }
  Status vocab = durable->ImportVocabularies(*corpus.entity_vocabulary,
                                             *corpus.keyword_vocabulary);
  if (!vocab.ok()) return vocab;
  for (const SourceInfo& source : corpus.sources) {
    Result<SourceId> registered = durable->RegisterSource(source.name);
    if (!registered.ok()) return registered.status();
  }
  for (const Snippet& snippet : corpus.snippets) {
    Snippet copy = snippet;
    copy.id = kInvalidSnippetId;
    Result<SnippetId> added = durable->AddSnippet(std::move(copy));
    if (!added.ok()) return added.status();
  }
  return durable;
}

/// Ingests the TSV corpus through a ShardedEngine: N durable shards under
/// `dir`, one WAL each, byte-identical results to the unsharded run.
Result<std::unique_ptr<shard::ShardedEngine>> DetectSharded(
    const datagen::ImportedCorpus& corpus, const EngineConfig& config,
    const std::string& dir, size_t num_shards) {
  shard::ShardOptions options;
  options.num_shards = num_shards;
  options.engine_config = config;
  Result<std::unique_ptr<shard::ShardedEngine>> opened =
      shard::ShardedEngine::Open(dir, options);
  if (!opened.ok()) return opened.status();
  std::unique_ptr<shard::ShardedEngine> sharded =
      std::move(opened.value());
  if (sharded->next_lsn() != 0) {
    return Status::FailedPrecondition(StrFormat(
        "%s already holds a recorded run (%llu ops) — inspect it with "
        "`storypivot_cli recover %s` or point --wal-dir at an empty "
        "directory",
        dir.c_str(), static_cast<unsigned long long>(sharded->next_lsn()),
        dir.c_str()));
  }
  Status vocab = sharded->ImportVocabularies(*corpus.entity_vocabulary,
                                             *corpus.keyword_vocabulary);
  if (!vocab.ok()) return vocab;
  for (const SourceInfo& source : corpus.sources) {
    Result<SourceId> registered = sharded->RegisterSource(source.name);
    if (!registered.ok()) return registered.status();
  }
  for (const Snippet& snippet : corpus.snippets) {
    Snippet copy = snippet;
    copy.id = kInvalidSnippetId;
    Result<SnippetId> added = sharded->AddSnippet(std::move(copy));
    if (!added.ok()) return added.status();
  }
  return sharded;
}

/// Sharded counterpart of PrintEngineSummary: aligns (through the log)
/// and prints totals, the per-shard layout, and the per-shard health
/// diagnostics (quarantine/heal state, journal backlog, retry stats —
/// DESIGN.md §17).
int PrintShardedSummary(shard::ShardedEngine& sharded) {
  if (!sharded.has_alignment()) {
    Status aligned = sharded.Align();
    if (!aligned.ok()) {
      std::fprintf(stderr, "%s\n", aligned.ToString().c_str());
      return 1;
    }
  }
  size_t snippets = 0;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    const StoryPivotEngine& engine = sharded.shard(s).engine();
    std::printf("shard %03zu: %zu snippets, %zu stories\n", s,
                engine.store().size(), engine.TotalStories());
    snippets += engine.store().size();
  }
  std::printf("%zu snippets, %zu per-source stories, %zu integrated "
              "stories across %zu shards (fingerprint %016llx)\n",
              snippets, sharded.TotalStories(),
              sharded.alignment().stories.size(), sharded.num_shards(),
              static_cast<unsigned long long>(sharded.Fingerprint()));
  std::printf("%s", sharded.GetStats().ToString().c_str());
  return 0;
}

void PrintEngineSummary(StoryPivotEngine& engine) {
  // Skip the realign when the caller already holds a current alignment —
  // on a durable engine that alignment came from the logged Align().
  if (!engine.has_alignment()) engine.Align();
  StoryQuery query(&engine);
  std::vector<StoryOverview> integrated = query.IntegratedStories();
  size_t shown = std::min<size_t>(integrated.size(), 15);
  integrated.resize(shown);
  std::printf("%s", viz::RenderStoryTable(integrated).c_str());
  std::printf("\n%zu snippets, %zu per-source stories, %zu integrated "
              "stories; SI %.1f ms, align %.1f ms\n",
              engine.store().size(), engine.TotalStories(),
              engine.alignment().stories.size(),
              engine.stats().identify_time_ms,
              engine.stats().align_time_ms);
  // Quality, when the corpus carried ground truth.
  bool has_truth = false;
  engine.store().ForEach([&](const Snippet& snippet) {
    has_truth |= snippet.truth_story >= 0;
  });
  if (has_truth) {
    eval::QualityScores scores = eval::ScoreEngine(engine);
    std::printf("quality vs ground truth: SI-F1=%.3f SA-F1=%.3f NMI=%.3f\n",
                scores.si_pairwise.f1, scores.sa_pairwise.f1,
                scores.sa_nmi);
  }
}

int CmdDetect(int argc, char** argv) {
  if (argc < 1) return Usage();
  EngineConfig config;
  std::string mode;
  if (ParseFlag(argc, argv, "--mode", &mode) && mode == "complete") {
    config.mode = IdentificationMode::kComplete;
  }
  config.identifier.window =
      FlagInt(argc, argv, "--window-days", 7) * kSecondsPerDay;

  Result<datagen::ImportedCorpus> imported =
      LoadCorpus(argv[0], HasFlag(argc, argv, "--strict"));
  if (!imported.ok()) {
    std::fprintf(stderr, "%s\n", imported.status().ToString().c_str());
    return 1;
  }

  // With --shards N, the whole run goes through the sharded coordinator
  // (which subsumes the durability layer: one DurableEngine per shard).
  const int64_t num_shards = FlagInt(argc, argv, "--shards", 0);
  if (num_shards > 0) {
    std::string shard_dir;
    if (!ParseFlag(argc, argv, "--wal-dir", &shard_dir)) {
      std::fprintf(stderr, "detect: --shards requires --wal-dir DIR\n");
      return 2;
    }
    Result<std::unique_ptr<shard::ShardedEngine>> opened = DetectSharded(
        imported.value(), config, shard_dir,
        static_cast<size_t>(num_shards));
    if (!opened.ok()) {
      return WalOpenFailed("detect --shards", shard_dir, opened.status());
    }
    shard::ShardedEngine& sharded = *opened.value();
    if (HasFlag(argc, argv, "--refine")) {
      Result<RefinementStats> refined = sharded.Refine();
      if (!refined.ok()) {
        std::fprintf(stderr, "%s\n", refined.status().ToString().c_str());
        return 1;
      }
      std::printf("refinement: moved %d snippets, split %d stories\n",
                  refined.value().snippets_moved,
                  refined.value().stories_split);
    }
    if (int failed = PrintShardedSummary(sharded); failed != 0) {
      return failed;
    }
    const uint64_t ops = sharded.next_lsn();
    Status finished = sharded.Checkpoint();
    if (finished.ok()) finished = sharded.Close();
    if (!finished.ok()) {
      // A refused checkpoint usually means a quarantined shard whose
      // durability still lags — the per-shard dump says which and why.
      std::fprintf(stderr, "%s\n%s", finished.ToString().c_str(),
                   sharded.GetStats().ToString().c_str());
      return 1;
    }
    std::printf("durable: %llu ops logged and checkpointed across %zu "
                "shards under %s (recover with `storypivot_cli recover "
                "%s`)\n",
                static_cast<unsigned long long>(ops), sharded.num_shards(),
                shard_dir.c_str(), shard_dir.c_str());
    return 0;
  }

  // With --wal-dir, ingestion runs through the durability layer; without
  // it, through a plain in-memory engine. Either way `engine` points at
  // the engine to summarise.
  std::unique_ptr<persist::DurableEngine> durable;
  std::unique_ptr<StoryPivotEngine> plain;
  std::string wal_dir;
  if (ParseFlag(argc, argv, "--wal-dir", &wal_dir)) {
    Result<std::unique_ptr<persist::DurableEngine>> opened =
        DetectDurable(imported.value(), config, wal_dir);
    if (!opened.ok()) {
      return WalOpenFailed("detect --wal-dir", wal_dir, opened.status());
    }
    durable = std::move(opened.value());
  } else {
    Result<std::unique_ptr<StoryPivotEngine>> detected =
        DetectFromCorpus(imported.value(), config);
    if (!detected.ok()) {
      std::fprintf(stderr, "%s\n", detected.status().ToString().c_str());
      return 1;
    }
    plain = std::move(detected.value());
  }
  StoryPivotEngine* engine = durable ? &durable->engine() : plain.get();

  if (HasFlag(argc, argv, "--refine")) {
    RefinementStats stats;
    if (durable) {
      Result<RefinementStats> refined = durable->Refine();
      if (!refined.ok()) {
        std::fprintf(stderr, "%s\n", refined.status().ToString().c_str());
        return 1;
      }
      stats = refined.value();
    } else {
      stats = engine->Refine();
    }
    std::printf("refinement: moved %d snippets, split %d stories\n",
                stats.snippets_moved, stats.stories_split);
  }
  if (durable) {
    // Alignment moves the integrated-story-id cursor, so on a durable
    // engine it must go through the log.
    Status aligned = durable->Align();
    if (!aligned.ok()) {
      std::fprintf(stderr, "%s\n", aligned.ToString().c_str());
      return 1;
    }
  }
  PrintEngineSummary(*engine);
  if (HasFlag(argc, argv, "--diagnose")) {
    std::printf("\n%s",
                eval::DiagnoseAlignment(*engine).ToString().c_str());
  }
  std::string json_path;
  if (ParseFlag(argc, argv, "--json", &json_path)) {
    Status written = WriteStringToFile(
        json_path, viz::ExportEngineJson(*engine));
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("JSON payload written to %s\n", json_path.c_str());
  }

  std::string snapshot_path;
  if (ParseFlag(argc, argv, "--snapshot", &snapshot_path)) {
    Status saved = SaveSnapshotToFile(*engine, snapshot_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("snapshot saved to %s\n", snapshot_path.c_str());
  }

  if (durable) {
    const uint64_t ops = durable->next_lsn();
    Status finished = durable->Checkpoint();
    if (finished.ok()) finished = durable->Close();
    if (!finished.ok()) {
      std::fprintf(stderr, "%s\n", finished.ToString().c_str());
      return 1;
    }
    std::printf("durable: %llu ops logged and checkpointed under %s "
                "(recover with `storypivot_cli recover %s`)\n",
                static_cast<unsigned long long>(ops), wal_dir.c_str(),
                wal_dir.c_str());
  }
  return 0;
}

int CmdRecover(int argc, char** argv) {
  if (argc < 1) return Usage();
  const std::string dir = argv[0];
  // Open() creates missing directories (that is right for `detect`,
  // which starts new runs), so a recover of a nonexistent path must be
  // caught here or it would "recover" an empty engine.
  if (!FileExists(dir)) {
    std::fprintf(stderr,
                 "recover: %s: [error] no durability directory here — "
                 "nothing to recover\n",
                 dir.c_str());
    return 1;
  }
  // A shard manifest marks a sharded directory: recover every shard in
  // parallel through the coordinator. --shards N cross-checks the count
  // (0 / absent defers to the manifest).
  if (FileExists(shard::ManifestPath(dir))) {
    shard::ShardOptions options;
    options.num_shards =
        static_cast<size_t>(FlagInt(argc, argv, "--shards", 0));
    Result<std::unique_ptr<shard::ShardedEngine>> sharded =
        shard::ShardedEngine::Open(dir, options);
    if (!sharded.ok()) {
      return WalOpenFailed("recover", dir, sharded.status());
    }
    std::printf("recovered %llu ops from %s (%zu shards, parallel "
                "replay)\n",
                static_cast<unsigned long long>(
                    sharded.value()->next_lsn()),
                dir.c_str(), sharded.value()->num_shards());
    if (int failed = PrintShardedSummary(*sharded.value()); failed != 0) {
      return failed;
    }
    if (HasFlag(argc, argv, "--checkpoint")) {
      Status compacted = sharded.value()->Checkpoint();
      if (!compacted.ok()) {
        std::fprintf(stderr, "%s\n%s", compacted.ToString().c_str(),
                     sharded.value()->GetStats().ToString().c_str());
        return 1;
      }
      std::printf("checkpointed; covered WAL segments dropped\n");
    }
    Status closed = sharded.value()->Close();
    if (!closed.ok()) {
      std::fprintf(stderr, "%s\n", closed.ToString().c_str());
      return 1;
    }
    return 0;
  }

  Result<std::unique_ptr<persist::DurableEngine>> opened =
      persist::DurableEngine::Open(dir);
  if (!opened.ok()) {
    return WalOpenFailed("recover", dir, opened.status());
  }
  persist::DurableEngine& durable = *opened.value();
  std::printf("recovered %llu ops from %s (%llu replayed from the WAL "
              "tail)\n",
              static_cast<unsigned long long>(durable.next_lsn()),
              durable.dir().c_str(),
              static_cast<unsigned long long>(
                  durable.ops_since_checkpoint()));
  Status aligned = durable.Align();
  if (!aligned.ok()) {
    std::fprintf(stderr, "%s\n", aligned.ToString().c_str());
    return 1;
  }
  PrintEngineSummary(durable.engine());
  if (HasFlag(argc, argv, "--checkpoint")) {
    Status compacted = durable.Checkpoint();
    if (!compacted.ok()) {
      std::fprintf(stderr, "%s\n", compacted.ToString().c_str());
      return 1;
    }
    std::printf("checkpointed; covered WAL segments dropped\n");
  }
  Status closed = durable.Close();
  if (!closed.ok()) {
    std::fprintf(stderr, "%s\n", closed.ToString().c_str());
    return 1;
  }
  return 0;
}

int CmdLoad(int argc, char** argv) {
  if (argc < 1) return Usage();
  Result<std::unique_ptr<StoryPivotEngine>> engine =
      LoadSnapshotFromFile(argv[0]);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded snapshot %s\n", argv[0]);
  PrintEngineSummary(*engine.value());
  return 0;
}

Result<std::unique_ptr<StoryPivotEngine>> DetectFromTsv(int argc,
                                                        char** argv) {
  Result<datagen::ImportedCorpus> imported =
      LoadCorpus(argv[0], HasFlag(argc, argv, "--strict"));
  if (!imported.ok()) return imported.status();
  return DetectFromCorpus(imported.value(), EngineConfig{});
}

int CmdQuery(int argc, char** argv) {
  if (argc < 2) return Usage();
  Result<std::unique_ptr<StoryPivotEngine>> engine =
      DetectFromTsv(argc, argv);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  engine.value()->Align();
  text::KnowledgeBase kb = text::KnowledgeBase::WithEmbeddedWorldFacts();
  StoryQuery query(engine.value().get());
  query.set_knowledge_base(&kb);
  std::printf("%s",
              viz::RenderEntityContext(query.Context(argv[1])).c_str());
  return 0;
}

int CmdSearch(int argc, char** argv) {
  if (argc < 2) return Usage();
  Result<std::unique_ptr<StoryPivotEngine>> engine =
      DetectFromTsv(argc, argv);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  engine.value()->Align();
  search::SearchEngine searcher(engine.value().get());

  search::SearchOptions options;
  options.k = static_cast<size_t>(FlagInt(argc, argv, "--topk", 10));
  std::string mode;
  if (ParseFlag(argc, argv, "--mode", &mode) && mode == "and") {
    options.mode = search::MatchMode::kAll;
  }
  std::string bound;
  if (ParseFlag(argc, argv, "--from", &bound) ||
      ParseFlag(argc, argv, "--to", &bound)) {
    options.filter_time = true;
    options.from = FlagTime(argc, argv, "--from", 0);
    options.to = FlagTime(argc, argv, "--to",
                          std::numeric_limits<Timestamp>::max());
  }
  // An inverted --from/--to window is a typed error, not an empty
  // result (DESIGN.md §11 — silence is indistinguishable from "no
  // stories in range").
  if (Status valid = search::ValidateSearchOptions(options); !valid.ok()) {
    std::fprintf(stderr, "%s\n", valid.ToString().c_str());
    return 1;
  }

  search::ParsedQuery parsed = searcher.Parse(argv[1]);
  for (const search::QueryTerm& term : parsed.terms) {
    const char* kind = term.field == search::Field::kEntity ? "entity"
                       : term.field == search::Field::kKeyword
                           ? "keyword"
                           : "event-type";
    std::printf("term: %s (%s)\n", term.surface.c_str(), kind);
  }
  for (const std::string& word : parsed.unmatched) {
    std::printf("ignored: %s\n", word.c_str());
  }
  if (parsed.empty()) {
    std::printf("no recognized query terms\n");
    return 0;
  }

  std::vector<search::StoryHit> hits =
      HasFlag(argc, argv, "--scan") ? searcher.SearchScan(parsed, options)
                                    : searcher.Search(parsed, options);
  if (hits.empty()) {
    std::printf("no matching stories\n");
    return 0;
  }
  StoryQuery query(engine.value().get());
  int rank = 0;
  for (const search::StoryHit& hit : hits) {
    const Story* story =
        engine.value()->partition(hit.source)->FindStory(hit.story);
    std::printf("#%d  score=%.4f  matched=%u/%zu  source=%s\n", ++rank,
                hit.score, hit.matched_terms, parsed.terms.size(),
                engine.value()->SourceName(hit.source).c_str());
    std::printf("%s",
                viz::RenderStoryOverview(query.Overview(*story, false))
                    .c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  int sub_argc = argc - 2;
  char** sub_argv = argv + 2;
  if (command == "generate") return CmdGenerate(sub_argc, sub_argv);
  if (command == "detect") return CmdDetect(sub_argc, sub_argv);
  if (command == "recover") return CmdRecover(sub_argc, sub_argv);
  if (command == "load") return CmdLoad(sub_argc, sub_argv);
  if (command == "query") return CmdQuery(sub_argc, sub_argv);
  if (command == "search") return CmdSearch(sub_argc, sub_argv);
  return Usage();
}
